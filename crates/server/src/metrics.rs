//! Per-node serving metrics.
//!
//! Each server node owns its own [`Registry`] (so a primary and a
//! replica running in one process — as in `examples/serve_demo.rs` —
//! do not mix counters), with the hot-path handles resolved once at
//! startup. `GET /metrics` renders this registry *plus* the process
//! [`global`] registry, which is where `Oracle::commit` and the
//! facade query paths record.

use batchhl_common::metrics::{global, Counter, Histogram, Registry};
use std::sync::Arc;

/// Cached handles into one node's registry.
pub struct ServerMetrics {
    registry: Arc<Registry>,
    /// Point queries answered (coalesced or direct).
    pub queries: Arc<Counter>,
    /// Edit batches committed through the server.
    pub commits: Arc<Counter>,
    /// Requests refused by admission control.
    pub sheds: Arc<Counter>,
    /// Lines that failed to parse or validate.
    pub bad_requests: Arc<Counter>,
    /// Connections accepted / closed.
    pub conns_opened: Arc<Counter>,
    pub conns_closed: Arc<Counter>,
    /// WAL records shipped to tailing replicas.
    pub tail_records: Arc<Counter>,
    /// Requests answered `deadline_exceeded` instead of executed (the
    /// client's `deadline_ms` budget ran out while queued).
    pub deadlines: Arc<Counter>,
    /// Commits answered from the txn dedup table (idempotent retries
    /// of an already-applied batch).
    pub dedup_commits: Arc<Counter>,
    /// Connections closed by the idle sweep (no complete request
    /// within the configured idle window — slow-loris containment).
    pub idle_closed: Arc<Counter>,
    /// Tail-stream reconnect attempts by this node's replica tailer
    /// (wire-level retries: dropped streams, watchdog trips, resyncs).
    pub tail_reconnects: Arc<Counter>,
    /// End-to-end request latency (receipt to response write).
    pub request_latency: Arc<Histogram>,
    /// Occupancy of each drained coalescer batch.
    pub coalesce_batch: Arc<Histogram>,
}

impl ServerMetrics {
    /// Build a fresh registry with every serving metric registered.
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        ServerMetrics {
            queries: registry.counter("batchhl_server_queries_total"),
            commits: registry.counter("batchhl_server_commits_total"),
            sheds: registry.counter("batchhl_server_sheds_total"),
            bad_requests: registry.counter("batchhl_server_bad_requests_total"),
            conns_opened: registry.counter("batchhl_server_connections_opened_total"),
            conns_closed: registry.counter("batchhl_server_connections_closed_total"),
            tail_records: registry.counter("batchhl_server_tail_records_total"),
            deadlines: registry.counter("batchhl_server_deadline_exceeded_total"),
            dedup_commits: registry.counter("batchhl_server_commit_dedup_total"),
            idle_closed: registry.counter("batchhl_server_idle_closed_total"),
            tail_reconnects: registry.counter("batchhl_server_tail_reconnects_total"),
            request_latency: registry.histogram("batchhl_server_request_latency_us"),
            coalesce_batch: registry.histogram("batchhl_server_coalesce_batch_size"),
            registry,
        }
    }

    /// This node's registry (for tests and custom exposition).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Prometheus text exposition: this node's registry followed by the
    /// process-global one (oracle commit/query instrumentation).
    pub fn render(&self) -> String {
        let mut out = self.registry.render();
        out.push_str(&global().render());
        out
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_do_not_share_counters() {
        let a = ServerMetrics::new();
        let b = ServerMetrics::new();
        a.queries.add(5);
        assert_eq!(a.queries.get(), 5);
        assert_eq!(b.queries.get(), 0);
        let text = a.render();
        assert!(text.contains("batchhl_server_queries_total 5"));
        // The global (oracle-side) registry rides along.
        global().counter("batchhl_server_metrics_test_total").inc();
        assert!(a.render().contains("batchhl_server_metrics_test_total"));
    }
}
