//! WAL-shipping read replicas.
//!
//! A [`Replica`] is a read-only serving node that stays current by
//! tailing a primary's write-ahead log over the wire:
//!
//! 1. **Bootstrap** — open the primary's checkpoint directory with
//!    [`DistanceOracle::open_detached`] (read-only: the checkpoint is
//!    loaded and the WAL replayed without truncating or locking the
//!    primary's files).
//! 2. **Tail** — connect to the primary, send
//!    `{"op":"tail","from_seq":N}`, and apply every streamed batch
//!    through the ordinary commit path (in memory — the replica never
//!    writes a log of its own). Applied batches advance the replica's
//!    committed cursor, so its readers serve snapshot-consistent
//!    answers that are byte-identical to the primary's for every
//!    replicated prefix.
//! 3. **Heal** — a dropped connection reconnects with doubling
//!    backoff; a `resync` message (the replica's position predates the
//!    primary's retained WAL after a checkpoint rotation) or a
//!    sequence gap reloads a fresh checkpoint and re-tails from there.
//!
//! The primary ships only *committed* batches (never an in-flight or
//! aborted one), and the line framing drops a partial line at EOF, so
//! a primary killed mid-write leaves the replica at a clean batch
//! prefix — never half a batch.

use crate::handlers::{LineReader, ReadOutcome, Server, ServerConfig};
use crate::metrics::ServerMetrics;
use crate::protocol::TailMsg;
use batchhl::common::rng::SplitMix64;
use batchhl::DistanceOracle;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a replica finds its primary and serves.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// The primary's JSON-lines address (for the `tail` stream).
    pub primary_addr: String,
    /// The primary's durability directory: checkpoint + WAL. The
    /// replica reads it for bootstrap and re-sync, never writes it.
    pub checkpoint_dir: PathBuf,
    /// How the replica itself serves; `read_only` is forced on.
    pub serve: ServerConfig,
    /// First reconnect delay; doubles per failure up to `max_backoff`,
    /// with each actual sleep jittered into `[delay/2, delay]` so a
    /// fleet of replicas cut off by one primary restart does not
    /// reconnect in lockstep.
    pub initial_backoff: Duration,
    pub max_backoff: Duration,
    /// Watchdog: force a reconnect after this long with *nothing* on
    /// the tail stream. A live primary heartbeats every ~250ms even
    /// when caught up, so silence this long means the connection is
    /// dead in a way TCP has not noticed (half-open after a partition).
    pub heartbeat_timeout: Duration,
}

impl ReplicaConfig {
    /// A replica of `primary_addr`, bootstrapping from
    /// `checkpoint_dir`, with default serving settings.
    pub fn new(primary_addr: impl Into<String>, checkpoint_dir: impl Into<PathBuf>) -> Self {
        ReplicaConfig {
            primary_addr: primary_addr.into(),
            checkpoint_dir: checkpoint_dir.into(),
            serve: ServerConfig {
                node: "replica".to_string(),
                ..ServerConfig::default()
            },
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            heartbeat_timeout: Duration::from_secs(3),
        }
    }
}

/// A running replica: a read-only [`Server`] plus the tailer thread
/// keeping it current.
pub struct Replica {
    server: Server,
    tailer: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl Replica {
    /// Bootstrap from the checkpoint directory and start tailing.
    pub fn start(config: ReplicaConfig) -> io::Result<Replica> {
        let oracle = DistanceOracle::open_detached(&config.checkpoint_dir)
            .map_err(|e| io::Error::other(format!("replica bootstrap failed: {e:?}")))?;
        let serve = ServerConfig {
            read_only: true,
            ..config.serve.clone()
        };
        let server = Server::start(oracle, serve)?;
        let stop = Arc::new(AtomicBool::new(false));
        let tailer = {
            let core = Arc::clone(server.core());
            let stop = Arc::clone(&stop);
            let config = config.clone();
            std::thread::Builder::new()
                .name("replica-tailer".to_string())
                .spawn(move || tail_loop(&core, &stop, &config))?
        };
        Ok(Replica {
            server,
            tailer: Some(tailer),
            stop,
        })
    }

    /// The replica's own serving address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Batches applied so far (the replica's committed cursor).
    pub fn applied_seq(&self) -> u64 {
        self.server.committed_seq()
    }

    /// This node's metrics.
    pub fn metrics(&self) -> &ServerMetrics {
        self.server.metrics()
    }

    /// Block until the replica has applied at least `seq` batches.
    /// Returns `false` on timeout.
    pub fn wait_for_seq(&self, seq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.applied_seq() < seq {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        true
    }

    /// Stop the tailer and the serving threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.tailer.take() {
            let _ = handle.join();
        }
        self.server.shutdown();
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Why one tailing session ended.
enum SessionEnd {
    /// Connection lost / stream ended — reconnect and continue.
    Reconnect,
    /// Position diverged or was pruned — reload from the checkpoint.
    Resync,
    /// Shutdown requested.
    Stop,
}

fn tail_loop(core: &Arc<crate::handlers::Core>, stop: &AtomicBool, config: &ReplicaConfig) {
    let mut backoff = config.initial_backoff;
    // Deterministic per-node jitter stream: the schedule is a pure
    // function of (node name, primary address), so a test can predict
    // it while two replicas of one primary still de-synchronize.
    let mut rng = SplitMix64::new(jitter_seed(config));
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match tail_session(core, stop, config) {
            SessionEnd::Stop => return,
            SessionEnd::Resync => {
                core.metrics.tail_reconnects.inc();
                match DistanceOracle::open_detached(&config.checkpoint_dir) {
                    Ok(fresh) => {
                        core.install_oracle(fresh);
                        backoff = config.initial_backoff;
                    }
                    // Checkpoint mid-rotation or unreadable: back off
                    // and retry the whole cycle.
                    Err(_) => sleep_with_stop(stop, &mut backoff, config.max_backoff, &mut rng),
                }
            }
            SessionEnd::Reconnect => {
                core.metrics.tail_reconnects.inc();
                sleep_with_stop(stop, &mut backoff, config.max_backoff, &mut rng);
            }
        }
    }
}

fn jitter_seed(config: &ReplicaConfig) -> u64 {
    let mut h = DefaultHasher::new();
    config.serve.node.hash(&mut h);
    config.primary_addr.hash(&mut h);
    h.finish()
}

/// One reconnect delay: `backoff` jittered uniformly into
/// `[backoff/2, backoff]`. Never zero for a non-zero backoff, never
/// above the un-jittered schedule (so `max_backoff` stays a true cap).
fn jittered_delay(backoff: Duration, rng: &mut SplitMix64) -> Duration {
    let nanos = backoff.as_nanos() as u64;
    let half = nanos / 2;
    Duration::from_nanos(half + rng.below(nanos - half + 1))
}

fn sleep_with_stop(stop: &AtomicBool, backoff: &mut Duration, max: Duration, rng: &mut SplitMix64) {
    let delay = jittered_delay(*backoff, rng);
    let deadline = Instant::now() + delay;
    while Instant::now() < deadline && !stop.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(10).min(delay));
    }
    *backoff = (*backoff * 2).min(max);
}

/// One connected tailing session: subscribe at the current cursor and
/// apply batches until the stream ends.
fn tail_session(
    core: &Arc<crate::handlers::Core>,
    stop: &AtomicBool,
    config: &ReplicaConfig,
) -> SessionEnd {
    let mut stream = match TcpStream::connect(&config.primary_addr) {
        Ok(s) => s,
        Err(_) => return SessionEnd::Reconnect,
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let from_seq = core.committed_seq();
    let subscribe = format!("{{\"op\":\"tail\",\"from_seq\":{from_seq}}}\n");
    if stream.write_all(subscribe.as_bytes()).is_err() {
        return SessionEnd::Reconnect;
    }
    let mut reader = LineReader::new(stream);
    loop {
        if stop.load(Ordering::Acquire) {
            return SessionEnd::Stop;
        }
        let line = match reader.read_line_idle(stop, Some(config.heartbeat_timeout)) {
            ReadOutcome::Line(line) => line,
            // EOF, error, or stop; a partial trailing line (primary
            // killed mid-write) is dropped by the reader, leaving the
            // replica at the last complete batch.
            ReadOutcome::Closed | ReadOutcome::TooLong => {
                return if stop.load(Ordering::Acquire) {
                    SessionEnd::Stop
                } else {
                    SessionEnd::Reconnect
                };
            }
            // Watchdog trip: a healthy primary heartbeats every ~250ms,
            // so a silent heartbeat_timeout means a half-open
            // connection. Tear it down and dial again.
            ReadOutcome::Idle => return SessionEnd::Reconnect,
        };
        match TailMsg::parse(&line) {
            Ok(TailMsg::Batch { seq, edits }) => {
                if core.apply_remote_batch(seq, &edits).is_err() {
                    // Sequence gap or refused batch: state diverged.
                    return SessionEnd::Resync;
                }
            }
            Ok(TailMsg::Heartbeat { .. }) => {}
            Ok(TailMsg::Resync { .. }) => return SessionEnd::Resync,
            // The primary answered with an error object (or garbage):
            // treat like a dropped stream.
            Err(_) => return SessionEnd::Reconnect,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jittered_delays_stay_inside_the_half_open_band() {
        let mut rng = SplitMix64::new(42);
        for ms in [1u64, 50, 137, 2000] {
            let backoff = Duration::from_millis(ms);
            for _ in 0..200 {
                let d = jittered_delay(backoff, &mut rng);
                assert!(
                    d >= backoff / 2,
                    "{d:?} under half of {backoff:?}: a jittered sleep must never \
                     collapse below half the schedule"
                );
                assert!(
                    d <= backoff,
                    "{d:?} over {backoff:?}: jitter must never exceed the \
                     un-jittered schedule (max_backoff is a hard cap)"
                );
            }
        }
    }

    #[test]
    fn jitter_schedule_is_deterministic_per_seed() {
        let seq = |seed: u64| -> Vec<Duration> {
            let mut rng = SplitMix64::new(seed);
            (0..32)
                .map(|_| jittered_delay(Duration::from_millis(400), &mut rng))
                .collect()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }

    #[test]
    fn jitter_actually_varies() {
        let mut rng = SplitMix64::new(1);
        let delays: Vec<Duration> = (0..64)
            .map(|_| jittered_delay(Duration::from_secs(1), &mut rng))
            .collect();
        let distinct: std::collections::HashSet<_> = delays.iter().collect();
        assert!(
            distinct.len() > 32,
            "jitter produced only {} distinct delays out of 64",
            distinct.len()
        );
    }
}
