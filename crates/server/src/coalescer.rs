//! Request coalescing: microbatching point queries.
//!
//! Point queries are tiny relative to the fixed costs around them — a
//! worker wakeup, a generation pin, a per-response `write(2)`. The
//! coalescer holds arriving `query` requests for a bounded window
//! (`max_wait_us`, or until `max_batch` accumulate, whichever is
//! first) and drains the whole batch as **one** job through the
//! oracle's batched entry points (`query_many` groups by source and
//! reuses one `SourcePlan` per group), writing one flush per
//! connection per batch. Latency is bounded by the window; throughput
//! under concurrency goes up because the fixed costs amortize over the
//! batch — this is the mechanism behind `BENCH_server.json`.
//!
//! The stage is generic over the queued item so it can be tested
//! without sockets; the serving tier queues `PendingQuery` values and
//! drains them on the worker pool.

use std::mem;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Microbatching window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceConfig {
    /// Longest a query may wait for co-travellers, in microseconds.
    pub max_wait_us: u64,
    /// Drain as soon as this many queries are pending.
    pub max_batch: usize,
    /// Admission bound: pending queries beyond this are shed back to
    /// the caller.
    pub max_pending: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            max_wait_us: 200,
            max_batch: 64,
            max_pending: 64 * 32,
        }
    }
}

struct CoalesceShared<T> {
    queue: Mutex<Vec<T>>,
    cv: Condvar,
    config: CoalesceConfig,
    shutdown: AtomicBool,
    drain: Box<dyn Fn(Vec<T>) + Send + Sync>,
}

/// The microbatching stage: submit items, a drainer thread groups them
/// into bounded batches and hands each batch to the drain callback.
pub struct Coalescer<T: Send + 'static> {
    shared: Arc<CoalesceShared<T>>,
    drainer: Mutex<Option<JoinHandle<()>>>,
}

impl<T: Send + 'static> Coalescer<T> {
    /// Start the drainer thread. `drain` receives every batch (never
    /// empty, never longer than `max_batch`).
    pub fn start(config: CoalesceConfig, drain: impl Fn(Vec<T>) + Send + Sync + 'static) -> Self {
        let shared = Arc::new(CoalesceShared {
            queue: Mutex::new(Vec::new()),
            cv: Condvar::new(),
            config,
            shutdown: AtomicBool::new(false),
            drain: Box::new(drain),
        });
        let drainer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("coalescer-drain".to_string())
                .spawn(move || drainer_loop(&shared))
                .expect("spawn coalescer thread")
        };
        Coalescer {
            shared,
            drainer: Mutex::new(Some(drainer)),
        }
    }

    /// Queue an item. Returns the item back (`Err`) when the pending
    /// bound is hit — the caller sheds it with a typed response.
    pub fn submit(&self, item: T) -> Result<(), T> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(item);
        }
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= self.shared.config.max_pending {
            return Err(item);
        }
        queue.push(item);
        drop(queue);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Items currently waiting for a window to close.
    pub fn pending(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Stop the drainer. A batch already being gathered is drained one
    /// final time so nothing admitted is silently dropped. Idempotent,
    /// and safe to call through a shared handle.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        let handle = self
            .drainer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl<T: Send + 'static> Drop for Coalescer<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn drainer_loop<T: Send + 'static>(shared: &CoalesceShared<T>) {
    let window = Duration::from_micros(shared.config.max_wait_us);
    let max_batch = shared.config.max_batch.max(1);
    loop {
        let batch = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Sleep until the first query of the next window arrives.
            while queue.is_empty() {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.cv.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
            // Hold the window open for co-travellers.
            let deadline = Instant::now() + window;
            while queue.len() < max_batch && !shared.shutdown.load(Ordering::Acquire) {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (q, timeout) = shared
                    .cv
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
                if timeout.timed_out() {
                    break;
                }
            }
            if queue.len() > max_batch {
                queue.drain(..max_batch).collect()
            } else {
                mem::take(&mut *queue)
            }
        };
        if !batch.is_empty() {
            (shared.drain)(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn collect_batches(config: CoalesceConfig) -> (Coalescer<u32>, mpsc::Receiver<Vec<u32>>) {
        let (tx, rx) = mpsc::channel();
        let c = Coalescer::start(config, move |batch| {
            tx.send(batch).unwrap();
        });
        (c, rx)
    }

    #[test]
    fn items_drain_within_the_window() {
        let (c, rx) = collect_batches(CoalesceConfig {
            max_wait_us: 500,
            max_batch: 64,
            max_pending: 1024,
        });
        for i in 0..5 {
            c.submit(i).unwrap();
        }
        let mut got: Vec<u32> = Vec::new();
        while got.len() < 5 {
            got.extend(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_batches_drain_without_waiting_out_the_window() {
        let (c, rx) = collect_batches(CoalesceConfig {
            // A window so long the test would time out if the drain
            // waited for it.
            max_wait_us: 30_000_000,
            max_batch: 4,
            max_pending: 1024,
        });
        for i in 0..4 {
            c.submit(i).unwrap();
        }
        let batch = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(batch.len(), 4);
    }

    #[test]
    fn over_admission_sheds_the_item_back() {
        let (tx, rx) = mpsc::channel();
        // A drain that blocks until released, so the queue backs up.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let c = {
            let gate = Arc::clone(&gate);
            Coalescer::start(
                CoalesceConfig {
                    max_wait_us: 1,
                    max_batch: 1,
                    max_pending: 2,
                },
                move |batch: Vec<u32>| {
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                    tx.send(batch).unwrap();
                },
            )
        };
        // The drainer takes the first item into a (blocked) drain call;
        // two more fill the queue to max_pending.
        c.submit(0).unwrap();
        while c.pending() > 0 {
            std::thread::yield_now();
        }
        c.submit(1).unwrap();
        c.submit(2).unwrap();
        assert_eq!(c.submit(3), Err(3));
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
        let mut got = 0;
        while got < 3 {
            got += rx.recv_timeout(Duration::from_secs(5)).unwrap().len();
        }
    }
}
