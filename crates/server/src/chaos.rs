//! A deterministic network chaos proxy.
//!
//! [`FaultProxy`] is a TCP interposer for tests: it listens on its own
//! port, and for every accepted connection dials the real upstream and
//! relays bytes both ways — after applying one scripted [`Fault`] from
//! a deterministic schedule. Put it between a [`crate::Client`] and a
//! [`crate::Server`] (or between a replica and its primary) and the
//! wire misbehaves *on a schedule you wrote down*, so a failing chaos
//! test replays exactly.
//!
//! Fault model (one fault per proxied connection, drawn from the
//! schedule in accept order):
//!
//! - [`Fault::None`] — relay faithfully (the control arm).
//! - [`Fault::Delay`] — hold every client→upstream chunk for a fixed
//!   time before forwarding (latency injection; responses flow
//!   normally, so deadlines expire server-side).
//! - [`Fault::DropAfter`] — forward exactly N client→upstream bytes,
//!   then sever both directions (connection dies mid-request; with N
//!   chosen mid-line the server sees a torn frame and drops it).
//! - [`Fault::TruncateFrame`] — forward the client's bytes up to (and
//!   excluding) the first newline, then sever: the canonical
//!   half-a-request torn write.
//! - [`Fault::Blackhole`] — accept the client but never dial upstream
//!   and never answer for the hold period, then sever: a routing
//!   black hole / half-open connection. The client's only defense is
//!   its deadline.
//! - [`Fault::Duplicate`] — deliver every client→upstream chunk twice.
//!   A duplicated commit line is the wire-level retry storm; the txn
//!   dedup table must make the second delivery a no-op.
//!
//! Schedules are either scripted ([`FaultProxy::start`] takes the
//! exact per-connection list, repeating the last entry forever) or
//! seeded ([`FaultProxy::start_seeded`] draws from a [`SplitMix64`]),
//! both fully deterministic. [`FaultProxy::sever`] cuts every live
//! relay at a moment of the test's choosing (partition injection);
//! new connections still proxy, so "partition heals" is just the next
//! reconnect.

use batchhl::common::rng::SplitMix64;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One connection's misbehavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Faithful relay.
    None,
    /// Hold each client→upstream chunk for `ms` before forwarding.
    Delay { ms: u64 },
    /// Forward exactly `bytes` client→upstream bytes, then sever.
    DropAfter { bytes: u64 },
    /// Forward up to (excluding) the first `\n`, then sever.
    TruncateFrame,
    /// Never dial upstream; hold the client in silence for `ms`, then
    /// sever.
    Blackhole { ms: u64 },
    /// Deliver every client→upstream chunk twice.
    Duplicate,
}

impl Fault {
    /// Every fault kind, with small deterministic parameters — the
    /// palette seeded schedules draw from.
    pub const PALETTE: [Fault; 6] = [
        Fault::None,
        Fault::Delay { ms: 30 },
        Fault::DropAfter { bytes: 9 },
        Fault::TruncateFrame,
        Fault::Blackhole { ms: 150 },
        Fault::Duplicate,
    ];
}

struct Shared {
    /// Remaining scripted faults (front = next connection); when
    /// empty, `last` repeats forever.
    script: Mutex<ScheduleState>,
    upstream: SocketAddr,
    shutdown: AtomicBool,
    /// Generation counter: bumping it (via `sever`) tells every live
    /// relay to cut its connection.
    generation: AtomicU64,
    /// Connections accepted so far.
    accepted: AtomicU64,
    /// Faults actually injected (anything but `Fault::None`).
    injected: AtomicU64,
}

enum ScheduleState {
    Scripted { queue: Vec<Fault>, next: usize },
    Seeded(SplitMix64),
}

impl Shared {
    fn next_fault(&self) -> Fault {
        let mut state = self.script.lock().unwrap_or_else(|e| e.into_inner());
        match &mut *state {
            ScheduleState::Scripted { queue, next } => {
                let fault = queue[(*next).min(queue.len() - 1)];
                *next += 1;
                fault
            }
            ScheduleState::Seeded(rng) => {
                Fault::PALETTE[rng.below(Fault::PALETTE.len() as u64) as usize]
            }
        }
    }
}

/// A running chaos proxy. Dropping it stops the acceptor and severs
/// every live relay.
pub struct FaultProxy {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    relays: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl FaultProxy {
    /// Proxy to `upstream`, applying `script` one fault per accepted
    /// connection in order; the last entry repeats for every later
    /// connection. `script` must be non-empty.
    pub fn start(upstream: SocketAddr, script: Vec<Fault>) -> io::Result<FaultProxy> {
        assert!(!script.is_empty(), "fault script must be non-empty");
        Self::start_with(
            upstream,
            ScheduleState::Scripted {
                queue: script,
                next: 0,
            },
        )
    }

    /// Proxy to `upstream`, drawing each connection's fault from
    /// [`Fault::PALETTE`] with a seeded deterministic stream.
    pub fn start_seeded(upstream: SocketAddr, seed: u64) -> io::Result<FaultProxy> {
        Self::start_with(upstream, ScheduleState::Seeded(SplitMix64::new(seed)))
    }

    fn start_with(upstream: SocketAddr, schedule: ScheduleState) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            script: Mutex::new(schedule),
            upstream,
            shutdown: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        });
        let relays: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let relays = Arc::clone(&relays);
            std::thread::Builder::new()
                .name("fault-proxy".to_string())
                .spawn(move || accept_loop(&listener, &shared, &relays))?
        };
        Ok(FaultProxy {
            shared,
            addr,
            acceptor: Some(acceptor),
            relays,
        })
    }

    /// The address clients (or replicas) should dial instead of the
    /// upstream's.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Cut every live relay *now* (both directions), without stopping
    /// the proxy: the deterministic "partition starts here" trigger.
    /// Connections made afterwards proxy normally.
    pub fn sever(&self) {
        self.shared.generation.fetch_add(1, Ordering::AcqRel);
        // Relay threads poll the generation every read-timeout tick;
        // joining finished threads here keeps the handle list bounded.
        let mut relays = self.relays.lock().unwrap_or_else(|e| e.into_inner());
        let done: Vec<_> = relays
            .iter()
            .enumerate()
            .filter(|(_, h)| h.is_finished())
            .map(|(i, _)| i)
            .rev()
            .collect();
        for i in done {
            let _ = relays.swap_remove(i).join();
        }
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Acquire)
    }

    /// Faults injected so far (accepted connections whose fault was
    /// not [`Fault::None`]).
    pub fn injected(&self) -> u64 {
        self.shared.injected.load(Ordering::Acquire)
    }

    /// Stop accepting and sever every live relay. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.generation.fetch_add(1, Ordering::AcqRel);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let relays: Vec<_> = self
            .relays
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for handle in relays {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    relays: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut n = 0u64;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((client, _)) => {
                shared.accepted.fetch_add(1, Ordering::AcqRel);
                let fault = shared.next_fault();
                if fault != Fault::None {
                    shared.injected.fetch_add(1, Ordering::AcqRel);
                }
                let relay_shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name(format!("fault-relay-{n}"))
                    .spawn(move || run_relay(&relay_shared, client, fault));
                n += 1;
                if let Ok(handle) = handle {
                    relays
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Relay one proxied connection under `fault` until either side
/// closes, the proxy shuts down, or the generation is bumped
/// ([`FaultProxy::sever`]).
fn run_relay(shared: &Arc<Shared>, client: TcpStream, fault: Fault) {
    let born = shared.generation.load(Ordering::Acquire);
    if let Fault::Blackhole { ms } = fault {
        // Hold the client in silence (no upstream at all), then sever.
        let deadline = Instant::now() + Duration::from_millis(ms);
        while Instant::now() < deadline && !cut(shared, born) {
            std::thread::sleep(Duration::from_millis(5));
        }
        let _ = client.shutdown(Shutdown::Both);
        return;
    }
    let upstream = match TcpStream::connect(shared.upstream) {
        Ok(s) => s,
        Err(_) => {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);
    // client → upstream carries the fault; upstream → client is a
    // faithful relay on a second thread (answers must flow so the
    // client can *observe* commit receipts — the faults under test are
    // request-path faults plus full severs).
    let back = {
        let up = match upstream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                let _ = client.shutdown(Shutdown::Both);
                return;
            }
        };
        let down = match client.try_clone() {
            Ok(s) => s,
            Err(_) => {
                let _ = client.shutdown(Shutdown::Both);
                return;
            }
        };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || pump(&shared, born, up, down, Fault::None))
    };
    pump(shared, born, client, upstream, fault);
    let _ = back.join();
}

/// Has this relay been severed (generation bump or shutdown)?
fn cut(shared: &Shared, born: u64) -> bool {
    shared.shutdown.load(Ordering::Acquire) || shared.generation.load(Ordering::Acquire) != born
}

/// Copy `src` → `dst` applying `fault`, until EOF, error, or sever.
/// Severing shuts *both* streams down so the peer threads unwedge.
fn pump(shared: &Shared, born: u64, src: TcpStream, dst: TcpStream, fault: Fault) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(20)));
    let mut src = src;
    let mut dst = dst;
    let mut forwarded = 0u64;
    let mut chunk = [0u8; 4096];
    loop {
        if cut(shared, born) {
            break;
        }
        let n = match src.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let bytes = &chunk[..n];
        match fault {
            Fault::None => {
                if dst.write_all(bytes).is_err() {
                    break;
                }
            }
            Fault::Delay { ms } => {
                let deadline = Instant::now() + Duration::from_millis(ms);
                while Instant::now() < deadline && !cut(shared, born) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                if cut(shared, born) || dst.write_all(bytes).is_err() {
                    break;
                }
            }
            Fault::DropAfter { bytes: budget } => {
                let left = budget.saturating_sub(forwarded) as usize;
                let take = left.min(bytes.len());
                if take > 0 && dst.write_all(&bytes[..take]).is_err() {
                    break;
                }
                forwarded += take as u64;
                if forwarded >= budget {
                    break; // budget exhausted: sever below
                }
                continue;
            }
            Fault::TruncateFrame => {
                let cut_at = bytes
                    .iter()
                    .position(|&b| b == b'\n')
                    .unwrap_or(bytes.len());
                if cut_at > 0 && dst.write_all(&bytes[..cut_at]).is_err() {
                    break;
                }
                if cut_at < bytes.len() {
                    break; // newline reached: sever mid-frame
                }
            }
            Fault::Duplicate => {
                if dst.write_all(bytes).is_err() || dst.write_all(bytes).is_err() {
                    break;
                }
            }
            Fault::Blackhole { .. } => unreachable!("blackhole never reaches the pump"),
        }
        forwarded += n as u64;
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedules_are_deterministic() {
        let draw = |seed: u64| -> Vec<Fault> {
            let mut rng = SplitMix64::new(seed);
            (0..32)
                .map(|_| Fault::PALETTE[rng.below(Fault::PALETTE.len() as u64) as usize])
                .collect()
        };
        assert_eq!(draw(99), draw(99));
        assert_ne!(draw(99), draw(100));
    }

    #[test]
    fn scripted_schedule_repeats_its_last_entry() {
        let shared = Shared {
            script: Mutex::new(ScheduleState::Scripted {
                queue: vec![Fault::Duplicate, Fault::None],
                next: 0,
            }),
            upstream: "127.0.0.1:1".parse().unwrap(),
            shutdown: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        };
        assert_eq!(shared.next_fault(), Fault::Duplicate);
        assert_eq!(shared.next_fault(), Fault::None);
        assert_eq!(shared.next_fault(), Fault::None);
        assert_eq!(shared.next_fault(), Fault::None);
    }
}
