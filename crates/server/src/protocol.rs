//! The line-delimited JSON wire protocol.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Requests may carry an `id`, which the
//! server echoes verbatim on the matching response so clients can
//! pipeline. Errors are typed: `{"error":"<code>","message":"..."}`
//! with a small closed set of codes (below) a client can branch on.
//!
//! ```text
//! {"op":"query","s":3,"t":77,"id":1}
//!   -> {"id":1,"dist":2}
//! {"op":"commit","edits":[["insert",3,99],["remove",4,5]],"txn":[81,4],"id":2}
//!   -> {"id":2,"committed":true,"applied":2,"seq":7}
//! {"op":"tail","from_seq":0}
//!   -> {"kind":"batch","seq":0,"edits":[...]}   (stream; see [`TailMsg`])
//! ```
//!
//! Any request may carry `"deadline_ms":N` — the client's remaining
//! latency budget. The server checks it when the request is dequeued
//! and again before executing, answering `deadline_exceeded` instead
//! of burning a worker on an answer the client has stopped waiting
//! for. Commits may carry `"txn":[session,counter]`, a client
//! idempotency key: a retried commit with the same key returns the
//! original result (`"deduped":true`) instead of double-applying.
//!
//! Error codes: `bad_request` (malformed line), `shed` (admission
//! control refused — retry later), `deadline_exceeded` (the request's
//! `deadline_ms` budget ran out before execution), `read_only` (writes
//! sent to a replica), `unhealthy` (oracle health gate refused the
//! write), `commit_failed` (batch rejected by validation or the commit
//! path), `not_primary` (tail requested from a node without a WAL),
//! and `internal`.

use crate::json::{parse, Json};
use batchhl::{Edit, TxnId, Vertex, WalRecord};

/// Hard cap on one request line (bytes) — hostile clients cannot make
/// the server buffer unbounded input.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A decoded request plus its optional client-chosen correlation id
/// and latency budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    pub id: Option<u64>,
    /// Milliseconds (from arrival) the client will keep waiting for
    /// the answer; past it the server sheds the request with a typed
    /// `deadline_exceeded` instead of executing it.
    pub deadline_ms: Option<u64>,
    pub request: Request,
}

/// Every operation the serving tier understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Point distance query — the coalescible fast path.
    Query { s: Vertex, t: Vertex },
    /// Batched point queries, answered positionally.
    QueryMany { pairs: Vec<(Vertex, Vertex)> },
    /// One-source fan-out to an explicit target list.
    DistancesFrom { s: Vertex, targets: Vec<Vertex> },
    /// The `k` nearest vertices to `s`.
    TopKClosest { s: Vertex, k: usize },
    /// Apply an edit batch through an [`batchhl::UpdateSession`],
    /// optionally stamped with a client idempotency key.
    Commit {
        edits: Vec<Edit>,
        txn: Option<TxnId>,
    },
    /// Answer `pairs` as if `edits` had been committed, without
    /// committing them — a speculative what-if overlay on the current
    /// generation. Read-only: works on replicas, never touches the WAL.
    WhatIf {
        edits: Vec<Edit>,
        pairs: Vec<(Vertex, Vertex)>,
    },
    /// Re-open from the checkpoint + WAL (crash-recovery drill).
    Recover,
    /// Run the oracle's integrity verification.
    Verify,
    /// Liveness + health summary.
    Health,
    /// Server counters (queue depth, WAL position, ...).
    Stats,
    /// Switch this connection into WAL-shipping mode, streaming
    /// committed batches with `seq >= from_seq`.
    Tail { from_seq: u64 },
}

/// Parse one request line. The error string is a human-readable reason
/// suitable for a `bad_request` response.
pub fn parse_request(line: &str) -> Result<Envelope, String> {
    let v = parse(line).map_err(|e| e.to_string())?;
    let id = v.get("id").and_then(Json::as_u64);
    let deadline_ms = v.get("deadline_ms").and_then(Json::as_u64);
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field \"op\"")?;
    let field = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing integer field {name:?}"))
    };
    let vertex = |name: &str| -> Result<Vertex, String> {
        let x = field(name)?;
        Vertex::try_from(x).map_err(|_| format!("field {name:?} out of vertex range"))
    };
    let request = match op {
        "query" => Request::Query {
            s: vertex("s")?,
            t: vertex("t")?,
        },
        "query_many" => {
            let pairs = v
                .get("pairs")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"pairs\"")?
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr().filter(|p| p.len() == 2);
                    match pair {
                        Some([s, t]) => match (vertex_of(s), vertex_of(t)) {
                            (Some(s), Some(t)) => Ok((s, t)),
                            _ => Err("pair members must be vertex ids".to_string()),
                        },
                        _ => Err("each pair must be [s, t]".to_string()),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            Request::QueryMany { pairs }
        }
        "distances_from" => {
            let targets = v
                .get("targets")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"targets\"")?
                .iter()
                .map(|t| vertex_of(t).ok_or("targets must be vertex ids".to_string()))
                .collect::<Result<Vec<_>, _>>()?;
            Request::DistancesFrom {
                s: vertex("s")?,
                targets,
            }
        }
        "top_k_closest" => Request::TopKClosest {
            s: vertex("s")?,
            k: field("k")? as usize,
        },
        "commit" => {
            let edits = v
                .get("edits")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"edits\"")?
                .iter()
                .map(decode_edit)
                .collect::<Result<Vec<_>, _>>()?;
            let txn = match v.get("txn") {
                None | Some(Json::Null) => None,
                Some(t) => {
                    let parts = t.as_arr().filter(|p| p.len() == 2);
                    match parts {
                        Some([s, c]) => match (s.as_u64(), c.as_u64()) {
                            (Some(session), Some(counter)) => Some(TxnId { session, counter }),
                            _ => return Err("txn members must be integers".to_string()),
                        },
                        _ => return Err("txn must be [session, counter]".to_string()),
                    }
                }
            };
            Request::Commit { edits, txn }
        }
        "what_if" => {
            let edits = v
                .get("edits")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"edits\"")?
                .iter()
                .map(decode_edit)
                .collect::<Result<Vec<_>, _>>()?;
            let pairs = v
                .get("pairs")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"pairs\"")?
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr().filter(|p| p.len() == 2);
                    match pair {
                        Some([s, t]) => match (vertex_of(s), vertex_of(t)) {
                            (Some(s), Some(t)) => Ok((s, t)),
                            _ => Err("pair members must be vertex ids".to_string()),
                        },
                        _ => Err("each pair must be [s, t]".to_string()),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            Request::WhatIf { edits, pairs }
        }
        "recover" => Request::Recover,
        "verify" => Request::Verify,
        "health" => Request::Health,
        "stats" => Request::Stats,
        "tail" => Request::Tail {
            from_seq: field("from_seq")?,
        },
        other => return Err(format!("unknown op {other:?}")),
    };
    Ok(Envelope {
        id,
        deadline_ms,
        request,
    })
}

fn vertex_of(v: &Json) -> Option<Vertex> {
    v.as_u64().and_then(|x| Vertex::try_from(x).ok())
}

/// Decode one wire edit: `["insert",a,b]`, `["insertw",a,b,w]`,
/// `["remove",a,b]` or `["setw",a,b,w]`.
pub fn decode_edit(v: &Json) -> Result<Edit, String> {
    let items = v.as_arr().ok_or("each edit must be an array")?;
    let tag = items
        .first()
        .and_then(Json::as_str)
        .ok_or("edit tag must be a string")?;
    let arg = |i: usize| -> Result<Vertex, String> {
        items
            .get(i)
            .and_then(vertex_of)
            .ok_or_else(|| format!("edit {tag:?} needs a vertex id at position {i}"))
    };
    match (tag, items.len()) {
        ("insert", 3) => Ok(Edit::Insert(arg(1)?, arg(2)?)),
        ("insertw", 4) => Ok(Edit::InsertWeighted(arg(1)?, arg(2)?, arg(3)?)),
        ("remove", 3) => Ok(Edit::Remove(arg(1)?, arg(2)?)),
        ("setw", 4) => Ok(Edit::SetWeight(arg(1)?, arg(2)?, arg(3)?)),
        _ => Err(format!("unknown or malformed edit {tag:?}")),
    }
}

/// Encode one edit in the wire shape accepted by [`decode_edit`].
pub fn encode_edit(edit: &Edit) -> Json {
    match *edit {
        Edit::Insert(a, b) => Json::Arr(vec![
            Json::str("insert"),
            Json::u64(a as u64),
            Json::u64(b as u64),
        ]),
        Edit::InsertWeighted(a, b, w) => Json::Arr(vec![
            Json::str("insertw"),
            Json::u64(a as u64),
            Json::u64(b as u64),
            Json::u64(w as u64),
        ]),
        Edit::Remove(a, b) => Json::Arr(vec![
            Json::str("remove"),
            Json::u64(a as u64),
            Json::u64(b as u64),
        ]),
        Edit::SetWeight(a, b, w) => Json::Arr(vec![
            Json::str("setw"),
            Json::u64(a as u64),
            Json::u64(b as u64),
            Json::u64(w as u64),
        ]),
    }
}

/// A distance as wire JSON: unreachable (`None`) is `null`.
pub fn dist_json(d: Option<batchhl::Dist>) -> Json {
    match d {
        Some(d) => Json::u64(d as u64),
        None => Json::Null,
    }
}

fn with_id(id: Option<u64>, mut fields: Vec<(String, Json)>) -> String {
    if let Some(id) = id {
        fields.insert(0, ("id".to_string(), Json::u64(id)));
    }
    Json::Obj(fields).render()
}

/// `{"id":..,"dist":..}` for a point query.
pub fn resp_dist(id: Option<u64>, d: Option<batchhl::Dist>) -> String {
    with_id(id, vec![("dist".to_string(), dist_json(d))])
}

/// `{"id":..,"dists":[..]}` — positional answers for `query_many` /
/// `distances_from`.
pub fn resp_dists(id: Option<u64>, ds: &[Option<batchhl::Dist>]) -> String {
    let arr = Json::Arr(ds.iter().map(|d| dist_json(*d)).collect());
    with_id(id, vec![("dists".to_string(), arr)])
}

/// `{"id":..,"closest":[[v,d],..]}` for `top_k_closest`.
pub fn resp_top_k(id: Option<u64>, closest: &[(Vertex, batchhl::Dist)]) -> String {
    let arr = Json::Arr(
        closest
            .iter()
            .map(|&(v, d)| Json::Arr(vec![Json::u64(v as u64), Json::u64(d as u64)]))
            .collect(),
    );
    with_id(id, vec![("closest".to_string(), arr)])
}

/// `{"id":..,"version":V,"dists":[..]}` for a `what_if` — positional
/// answers under the hypothetical edits, plus the version of the
/// pinned generation they were computed over (which the request,
/// being speculative, did not change).
pub fn resp_what_if(id: Option<u64>, version: u64, ds: &[Option<batchhl::Dist>]) -> String {
    let arr = Json::Arr(ds.iter().map(|d| dist_json(*d)).collect());
    with_id(
        id,
        vec![
            ("version".to_string(), Json::u64(version)),
            ("dists".to_string(), arr),
        ],
    )
}

/// `{"id":..,"committed":true,"applied":N,"seq":S}` after a commit;
/// `"deduped":true` is appended when the commit's txn id matched an
/// already-applied batch and the original result was returned.
pub fn resp_committed(id: Option<u64>, applied: usize, seq: u64, deduped: bool) -> String {
    let mut fields = vec![
        ("committed".to_string(), Json::Bool(true)),
        ("applied".to_string(), Json::u64(applied as u64)),
        ("seq".to_string(), Json::u64(seq)),
    ];
    if deduped {
        fields.push(("deduped".to_string(), Json::Bool(true)));
    }
    with_id(id, fields)
}

/// `{"id":..,"ok":true}` plus extra fields, for recover/verify/health.
pub fn resp_ok(id: Option<u64>, extra: Vec<(String, Json)>) -> String {
    let mut fields = vec![("ok".to_string(), Json::Bool(true))];
    fields.extend(extra);
    with_id(id, fields)
}

/// `{"id":..,"error":code,"message":..}`.
pub fn resp_error(id: Option<u64>, code: &str, message: &str) -> String {
    with_id(
        id,
        vec![
            ("error".to_string(), Json::str(code)),
            ("message".to_string(), Json::str(message)),
        ],
    )
}

/// One line of a `tail` stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TailMsg {
    /// A committed, non-aborted batch.
    Batch { seq: u64, edits: Vec<Edit> },
    /// Caught up; `next` is the sequence the next batch will carry.
    Heartbeat { next: u64 },
    /// The requested position predates the primary's retained WAL
    /// (rotation/checkpoint pruned it): the replica must re-sync from a
    /// fresh checkpoint. The primary closes the stream after this.
    Resync { floor: u64, next: u64 },
}

impl TailMsg {
    /// Serialize to one stream line.
    pub fn render(&self) -> String {
        match self {
            TailMsg::Batch { seq, edits } => Json::Obj(vec![
                ("kind".to_string(), Json::str("batch")),
                ("seq".to_string(), Json::u64(*seq)),
                (
                    "edits".to_string(),
                    Json::Arr(edits.iter().map(encode_edit).collect()),
                ),
            ])
            .render(),
            TailMsg::Heartbeat { next } => Json::Obj(vec![
                ("kind".to_string(), Json::str("hb")),
                ("next".to_string(), Json::u64(*next)),
            ])
            .render(),
            TailMsg::Resync { floor, next } => Json::Obj(vec![
                ("kind".to_string(), Json::str("resync")),
                ("floor".to_string(), Json::u64(*floor)),
                ("next".to_string(), Json::u64(*next)),
            ])
            .render(),
        }
    }

    /// Parse one stream line (the replica side).
    pub fn parse(line: &str) -> Result<TailMsg, String> {
        let v = parse(line).map_err(|e| e.to_string())?;
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing stream field \"kind\"")?;
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer field {name:?}"))
        };
        match kind {
            "batch" => {
                let edits = v
                    .get("edits")
                    .and_then(Json::as_arr)
                    .ok_or("missing array field \"edits\"")?
                    .iter()
                    .map(decode_edit)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(TailMsg::Batch {
                    seq: field("seq")?,
                    edits,
                })
            }
            "hb" => Ok(TailMsg::Heartbeat {
                next: field("next")?,
            }),
            "resync" => Ok(TailMsg::Resync {
                floor: field("floor")?,
                next: field("next")?,
            }),
            other => Err(format!("unknown stream kind {other:?}")),
        }
    }

    /// Build the batch message for a recovered WAL record.
    pub fn from_record(record: &WalRecord) -> TailMsg {
        TailMsg::Batch {
            seq: record.seq,
            edits: record.edits.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let env = parse_request(r#"{"op":"query","s":3,"t":77,"id":9}"#).unwrap();
        assert_eq!(env.id, Some(9));
        assert_eq!(env.request, Request::Query { s: 3, t: 77 });

        let env = parse_request(r#"{"op":"query_many","pairs":[[1,2],[3,4]]}"#).unwrap();
        assert_eq!(
            env.request,
            Request::QueryMany {
                pairs: vec![(1, 2), (3, 4)]
            }
        );

        let env = parse_request(
            r#"{"op":"commit","edits":[["insert",1,2],["insertw",3,4,9],["remove",5,6],["setw",7,8,2]]}"#,
        )
        .unwrap();
        assert_eq!(
            env.request,
            Request::Commit {
                edits: vec![
                    Edit::Insert(1, 2),
                    Edit::InsertWeighted(3, 4, 9),
                    Edit::Remove(5, 6),
                    Edit::SetWeight(7, 8, 2),
                ],
                txn: None,
            }
        );
        assert_eq!(env.deadline_ms, None);

        let env = parse_request(
            r#"{"op":"commit","edits":[["insert",1,2]],"txn":[81,4],"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(env.deadline_ms, Some(250));
        assert_eq!(
            env.request,
            Request::Commit {
                edits: vec![Edit::Insert(1, 2)],
                txn: Some(TxnId {
                    session: 81,
                    counter: 4
                }),
            }
        );

        let env = parse_request(r#"{"op":"tail","from_seq":12}"#).unwrap();
        assert_eq!(env.request, Request::Tail { from_seq: 12 });

        let env = parse_request(
            r#"{"op":"what_if","edits":[["remove",1,2]],"pairs":[[0,3],[1,2]],"id":7}"#,
        )
        .unwrap();
        assert_eq!(env.id, Some(7));
        assert_eq!(
            env.request,
            Request::WhatIf {
                edits: vec![Edit::Remove(1, 2)],
                pairs: vec![(0, 3), (1, 2)],
            }
        );
    }

    #[test]
    fn malformed_requests_are_typed() {
        for bad in [
            "not json",
            r#"{"s":1,"t":2}"#,
            r#"{"op":"query","s":1}"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"query","s":-1,"t":2}"#,
            r#"{"op":"commit","edits":[["teleport",1,2]]}"#,
            r#"{"op":"commit","edits":[["insert",1]]}"#,
            r#"{"op":"query_many","pairs":[[1]]}"#,
            r#"{"op":"what_if","edits":[["remove",1,2]]}"#,
            r#"{"op":"what_if","pairs":[[1,2]]}"#,
            r#"{"op":"commit","edits":[],"txn":[1]}"#,
            r#"{"op":"commit","edits":[],"txn":["a",2]}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn responses_render_stably() {
        assert_eq!(resp_dist(Some(4), Some(7)), r#"{"id":4,"dist":7}"#);
        assert_eq!(resp_dist(None, None), r#"{"dist":null}"#);
        assert_eq!(resp_dists(None, &[Some(1), None]), r#"{"dists":[1,null]}"#);
        assert_eq!(
            resp_error(Some(1), "shed", "queue full"),
            r#"{"id":1,"error":"shed","message":"queue full"}"#
        );
        assert_eq!(
            resp_committed(Some(2), 3, 7, false),
            r#"{"id":2,"committed":true,"applied":3,"seq":7}"#
        );
        assert_eq!(
            resp_committed(Some(2), 3, 7, true),
            r#"{"id":2,"committed":true,"applied":3,"seq":7,"deduped":true}"#
        );
    }

    #[test]
    fn tail_messages_roundtrip() {
        for msg in [
            TailMsg::Batch {
                seq: 5,
                edits: vec![Edit::Insert(1, 2), Edit::SetWeight(3, 4, 9)],
            },
            TailMsg::Heartbeat { next: 6 },
            TailMsg::Resync { floor: 4, next: 9 },
        ] {
            assert_eq!(TailMsg::parse(&msg.render()).unwrap(), msg);
        }
        assert!(TailMsg::parse(r#"{"kind":"??"}"#).is_err());
    }
}
