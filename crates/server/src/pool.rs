//! A fixed worker pool draining a bounded job queue.
//!
//! The serving tier is built on `std::net`/`std::thread` (the
//! workspace is offline — no async runtime): connection threads do the
//! socket I/O and *submission*, and every piece of oracle work — point
//! queries, coalesced batches, commits — runs on one of these workers.
//! The queue bound is the server's admission-control backstop: when
//! producers outrun the workers, [`WorkerPool::submit`] refuses with
//! [`SubmitError::Full`] and the caller sheds the request with a typed
//! response instead of queueing unbounded latency.
//!
//! Jobs run under a panic boundary: a panicking job is counted and the
//! worker keeps serving (the serving tier must never lose a worker to
//! one bad request).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a job was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — shed the request.
    Full {
        /// Queue depth observed at refusal.
        depth: usize,
    },
    /// The pool is shutting down.
    ShuttingDown,
}

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
    panics: AtomicU64,
}

/// Fixed-size worker pool over a bounded mpsc-style job queue.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (at least one) behind a queue that sheds
    /// beyond `capacity` pending jobs.
    pub fn new(name: &str, workers: usize, capacity: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            shutdown: AtomicBool::new(false),
            panics: AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{name}-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Submit a job, shedding with [`SubmitError::Full`] when the queue
    /// is at capacity.
    pub fn submit(&self, job: Job) -> Result<(), SubmitError> {
        self.push(job, true)
    }

    /// Submit bypassing the capacity bound — for internal work that has
    /// already passed admission (e.g. a coalesced batch whose member
    /// queries were each admitted individually) and must not be dropped
    /// after the fact.
    pub fn submit_unbounded(&self, job: Job) -> Result<(), SubmitError> {
        self.push(job, false)
    }

    fn push(&self, job: Job, bounded: bool) -> Result<(), SubmitError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if bounded && queue.len() >= self.shared.capacity {
            return Err(SubmitError::Full { depth: queue.len() });
        }
        queue.push_back(job);
        drop(queue);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Jobs currently waiting (not counting jobs being executed).
    pub fn depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Jobs that panicked (and were contained) so far.
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Stop the workers: pending jobs are dropped, running jobs finish,
    /// and every worker thread is joined. Idempotent, and safe to call
    /// through a shared handle.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.shared.cv.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.cv.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn jobs_run_and_pool_drains() {
        let pool = WorkerPool::new("t", 3, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            }))
            .unwrap();
        }
        for _ in 0..50 {
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn full_queue_sheds_typed() {
        let pool = WorkerPool::new("t", 1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Block the single worker so the queue backs up.
        {
            let gate = Arc::clone(&gate);
            pool.submit(Box::new(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }))
            .unwrap();
        }
        // Wait until the worker has picked the blocker up.
        while pool.depth() > 0 {
            std::thread::yield_now();
        }
        pool.submit(Box::new(|| {})).unwrap();
        pool.submit(Box::new(|| {})).unwrap();
        assert!(matches!(
            pool.submit(Box::new(|| {})),
            Err(SubmitError::Full { depth: 2 })
        ));
        // Internal submissions bypass the bound.
        pool.submit_unbounded(Box::new(|| {})).unwrap();
        // Release and shut down cleanly.
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
        pool.shutdown();
        assert!(matches!(
            pool.submit(Box::new(|| {})),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn panicking_jobs_are_contained() {
        let pool = WorkerPool::new("t", 1, 8);
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(|| panic!("bad job"))).unwrap();
        pool.submit(Box::new(move || tx.send(()).unwrap())).unwrap();
        rx.recv_timeout(std::time::Duration::from_secs(5))
            .expect("worker survived the panic");
        assert_eq!(pool.panics(), 1);
    }
}
