//! A minimal JSON value, parser and writer.
//!
//! The workspace is offline (no `serde`), and the wire protocol only
//! needs flat objects of numbers, strings and small arrays, so this is
//! a deliberately small recursive-descent implementation: strict on
//! structure (typed errors, bounded nesting depth so hostile input
//! cannot blow the stack), permissive on nothing. Numbers are held as
//! `f64`; every integer the protocol carries (vertex ids, sequence
//! numbers, distances) fits losslessly below 2^53.

use std::fmt;

/// Nesting depth bound for hostile input ("[[[[…").
const MAX_DEPTH: usize = 32;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs (duplicate keys: first wins on
    /// lookup).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9e15 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Lossless integer constructor (panics above 2^53 — protocol
    /// integers are vertex ids and sequence numbers, far below it).
    pub fn u64(x: u64) -> Json {
        assert!(
            x <= 9e15 as u64,
            "integer {x} does not fit losslessly in f64"
        );
        Json::Num(x as f64)
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serialize to a single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() <= 9e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why parsing failed (byte offset + reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after the value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte {:?}", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` carrying the low half.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                            // hex4 advanced past the digits; undo the
                            // generic advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_protocol_shapes() {
        let line = r#"{"op":"query","s":3,"t":77,"id":9}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("query"));
        assert_eq!(v.get("s").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("id").unwrap().as_u64(), Some(9));
        assert_eq!(parse(&v.render()).unwrap(), v);

        let v = parse(r#"{"dists":[1,null,3],"ok":true}"#).unwrap();
        let dists = v.get("dists").unwrap().as_arr().unwrap();
        assert_eq!(dists[1], Json::Null);
        assert_eq!(dists[2].as_u64(), Some(3));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::str("a\"b\\c\nd\te\u{1}é");
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        assert_eq!(
            parse(r#""\u00e9 \ud83d\ude00""#).unwrap(),
            Json::str("é 😀")
        );
    }

    #[test]
    fn hostile_input_is_typed_not_fatal() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "\"unterminated",
            "01x",
            "{\"a\":1}trailing",
            "\"\\ud800\"",
            "\"\\udc00 lone low\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
        // Deep nesting is refused, not a stack overflow.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_render_as_integers_when_exact() {
        assert_eq!(Json::u64(12345678).render(), "12345678");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }
}
