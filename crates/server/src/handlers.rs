//! The serving front end: accept loop, connection threads, dispatch.
//!
//! One [`Server`] owns a [`DistanceOracle`] and serves it over TCP:
//!
//! - **JSON lines** (the protocol in [`crate::protocol`]): each
//!   connection gets a thread that parses request lines and dispatches
//!   them — coalescible point queries into the [`Coalescer`],
//!   everything else as jobs on the [`WorkerPool`]. Responses carry the
//!   request's `id`, so clients may pipeline.
//! - **HTTP/1.1 shim**: a connection whose first line is an HTTP
//!   request gets `GET /health` or `GET /metrics` answered and the
//!   connection closed — enough for probes and scrapes, not a web
//!   server.
//!
//! Admission control: writes are refused (`unhealthy`) unless the
//! oracle reports [`OracleHealth::Healthy`], refused (`read_only`) on
//! replicas, and *all* work is shed with a typed `shed` response when
//! the job queue or coalescer is at capacity — an overloaded server
//! degrades into fast refusals, never into unbounded queueing.

use crate::coalescer::{CoalesceConfig, Coalescer};
use crate::json::Json;
use crate::metrics::ServerMetrics;
use crate::pool::{SubmitError, WorkerPool};
use crate::protocol::{
    parse_request, resp_committed, resp_dist, resp_dists, resp_error, resp_ok, resp_top_k,
    resp_what_if, Request, TailMsg, MAX_LINE_BYTES,
};
use batchhl::{DistanceOracle, Edit, OracleHealth, OracleReader, TxnId, Vertex};
use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a [`Server`] listens and schedules.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads executing oracle jobs.
    pub workers: usize,
    /// Job-queue bound; submissions beyond it are shed.
    pub max_queue: usize,
    /// Microbatching window for point queries; `None` dispatches each
    /// query as its own job (the baseline mode in the coalescer bench).
    pub coalesce: Option<CoalesceConfig>,
    /// Refuse `commit`/`recover` with a `read_only` error (replicas).
    pub read_only: bool,
    /// Node name reported by `health`/`stats` and the demo logs.
    pub node: String,
    /// Close a connection that produces no complete request line for
    /// this long (slow-loris containment: a half-sent line does *not*
    /// reset the clock). `None` disables the sweep. Tail streams are
    /// exempt — a caught-up replica legitimately sends nothing.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_queue: 1024,
            coalesce: Some(CoalesceConfig::default()),
            read_only: false,
            node: "primary".to_string(),
            idle_timeout: Some(Duration::from_secs(60)),
        }
    }
}

/// The write half of a connection, shared between the connection
/// thread and coalescer drain jobs. One lock + one flush per batch of
/// lines is the syscall amortization the coalescer exists for.
pub struct Conn {
    writer: Mutex<BufWriter<TcpStream>>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            writer: Mutex::new(BufWriter::new(stream)),
        }
    }

    /// Write one response line (newline appended) and flush.
    pub fn write_line(&self, line: &str) -> io::Result<()> {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        w.flush()
    }

    /// Write many response lines under one lock with one flush.
    pub fn write_lines(&self, lines: &[String]) -> io::Result<()> {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        for line in lines {
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
        }
        w.flush()
    }
}

/// A point query parked in the coalescer.
pub struct PendingQuery {
    pub s: Vertex,
    pub t: Vertex,
    pub id: Option<u64>,
    pub conn: Arc<Conn>,
    pub start: Instant,
    /// The request's latency budget; members already past it when the
    /// batch drains are answered `deadline_exceeded`, not queried.
    pub deadline_ms: Option<u64>,
}

/// Has the request's `deadline_ms` budget (measured from `start`, its
/// arrival) run out?
fn expired(start: Instant, deadline_ms: Option<u64>) -> bool {
    match deadline_ms {
        Some(ms) => start.elapsed() >= Duration::from_millis(ms),
        None => false,
    }
}

/// Answer a dead request with the typed `deadline_exceeded` refusal.
fn refuse_expired(core: &Core, conn: &Conn, id: Option<u64>, deadline_ms: u64) {
    core.metrics.deadlines.inc();
    let _ = conn.write_line(&resp_error(
        id,
        "deadline_exceeded",
        &format!("deadline of {deadline_ms}ms passed before execution"),
    ));
}

/// Everything connection threads and jobs share.
pub(crate) struct Core {
    oracle: Mutex<DistanceOracle>,
    reader: RwLock<OracleReader>,
    /// Batches committed (mirrors `oracle.batches_committed()` so tail
    /// streams can wait on it without holding the oracle lock).
    committed: Mutex<u64>,
    commit_cv: Condvar,
    pub(crate) metrics: ServerMetrics,
    pub(crate) pool: WorkerPool,
    shutdown: AtomicBool,
    config: ServerConfig,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl Core {
    pub(crate) fn committed_seq(&self) -> u64 {
        *self.committed.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn publish_committed(&self, seq: u64) {
        *self.committed.lock().unwrap_or_else(|e| e.into_inner()) = seq;
        self.commit_cv.notify_all();
    }

    /// Apply a replicated batch (replica side). The batch must be the
    /// next in sequence; a gap means the stream diverged and the
    /// caller re-syncs from a checkpoint.
    pub(crate) fn apply_remote_batch(&self, seq: u64, edits: &[Edit]) -> Result<(), String> {
        let mut oracle = self.oracle.lock().unwrap_or_else(|e| e.into_inner());
        let have = oracle.batches_committed();
        if seq != have {
            return Err(format!(
                "sequence gap: batch {seq} arrived at cursor {have}"
            ));
        }
        let mut session = oracle.update();
        for &edit in edits {
            session = session.push(edit);
        }
        session
            .commit()
            .map_err(|e| format!("replicated batch {seq} refused: {e:?}"))?;
        let now = oracle.batches_committed();
        drop(oracle);
        self.metrics.commits.inc();
        self.publish_committed(now);
        Ok(())
    }

    /// Swap in a freshly re-synced oracle (replica re-sync path).
    pub(crate) fn install_oracle(&self, new_oracle: DistanceOracle) {
        let reader = new_oracle.reader();
        let seq = new_oracle.batches_committed();
        *self.oracle.lock().unwrap_or_else(|e| e.into_inner()) = new_oracle;
        *self.reader.write().unwrap_or_else(|e| e.into_inner()) = reader;
        self.publish_committed(seq);
    }

    fn health_summary(&self) -> (String, Option<String>) {
        let oracle = self.oracle.lock().unwrap_or_else(|e| e.into_inner());
        match oracle.health() {
            OracleHealth::Healthy => ("healthy".to_string(), None),
            OracleHealth::Degraded { reason } => ("degraded".to_string(), Some(reason.clone())),
            OracleHealth::WritesPoisoned { reason, .. } => {
                ("writes_poisoned".to_string(), Some(reason.clone()))
            }
        }
    }
}

/// A running serving node. Dropping it (or calling
/// [`shutdown`](Server::shutdown)) stops the acceptor, the workers,
/// the coalescer and every connection thread.
pub struct Server {
    core: Arc<Core>,
    coalescer: Option<Arc<Coalescer<PendingQuery>>>,
    acceptor: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl Server {
    /// Take ownership of an oracle and serve it on `config.addr`.
    pub fn start(oracle: DistanceOracle, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let reader = oracle.reader();
        let committed = oracle.batches_committed();
        let pool = WorkerPool::new(&config.node, config.workers, config.max_queue);
        let core = Arc::new(Core {
            oracle: Mutex::new(oracle),
            reader: RwLock::new(reader),
            committed: Mutex::new(committed),
            commit_cv: Condvar::new(),
            metrics: ServerMetrics::new(),
            pool,
            shutdown: AtomicBool::new(false),
            config: config.clone(),
            conns: Mutex::new(Vec::new()),
        });
        let coalescer = config.coalesce.map(|cfg| {
            let drain_core = Arc::clone(&core);
            Arc::new(Coalescer::start(cfg, move |batch: Vec<PendingQuery>| {
                let job_core = Arc::clone(&drain_core);
                let job = Box::new(move || execute_coalesced(&job_core, batch));
                // Members were admitted individually; never drop them.
                let _ = drain_core.pool.submit_unbounded(job);
            }))
        });
        let acceptor = {
            let core = Arc::clone(&core);
            let coalescer = coalescer.clone();
            std::thread::Builder::new()
                .name(format!("{}-acceptor", core.config.node))
                .spawn(move || accept_loop(&listener, &core, coalescer.as_ref()))?
        };
        Ok(Server {
            core,
            coalescer,
            acceptor: Some(acceptor),
            addr,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This node's metrics (also served at `GET /metrics`).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.core.metrics
    }

    /// Batches this node has committed/applied.
    pub fn committed_seq(&self) -> u64 {
        self.core.committed_seq()
    }

    pub(crate) fn core(&self) -> &Arc<Core> {
        &self.core
    }

    /// Stop accepting, drain the coalescer, stop the workers and join
    /// every connection thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.core.shutdown.store(true, Ordering::Release);
        self.core.commit_cv.notify_all();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        if let Some(coalescer) = &self.coalescer {
            coalescer.shutdown();
        }
        self.core.pool.shutdown();
        let conns: Vec<_> = self
            .core
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for handle in conns {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    core: &Arc<Core>,
    coalescer: Option<&Arc<Coalescer<PendingQuery>>>,
) {
    let mut next_conn = 0u64;
    loop {
        if core.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                core.metrics.conns_opened.inc();
                let conn_core = Arc::clone(core);
                let conn_coalescer = coalescer.map(Arc::clone);
                let handle = std::thread::Builder::new()
                    .name(format!("{}-conn-{next_conn}", core.config.node))
                    .spawn(move || {
                        serve_connection(&conn_core, conn_coalescer.as_deref(), stream);
                        conn_core.metrics.conns_closed.inc();
                    });
                next_conn += 1;
                match handle {
                    Ok(handle) => core
                        .conns
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(handle),
                    Err(_) => core.metrics.conns_closed.inc(),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Buffered line reader over a read-timeout socket: timeouts poll the
/// shutdown flag, partial lines survive across reads, and a line
/// longer than [`MAX_LINE_BYTES`] is an error (hostile input must not
/// grow the buffer unboundedly). A partial line at EOF is dropped,
/// never surfaced — a peer killed mid-write leaves a clean prefix.
pub(crate) struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

pub(crate) enum ReadOutcome {
    Line(String),
    Closed,
    TooLong,
    /// No complete line arrived within the caller's idle window
    /// (partial bytes do NOT reset the clock — a slow-loris drip is
    /// exactly what the window exists to bound).
    Idle,
}

impl LineReader {
    pub(crate) fn new(stream: TcpStream) -> LineReader {
        LineReader {
            stream,
            buf: Vec::new(),
        }
    }

    pub(crate) fn read_line(&mut self, shutdown: &AtomicBool) -> ReadOutcome {
        self.read_line_idle(shutdown, None)
    }

    /// [`read_line`](Self::read_line), bounded by an idle window: give
    /// up with [`ReadOutcome::Idle`] when no *complete* line has been
    /// produced within `idle` of entering the call.
    pub(crate) fn read_line_idle(
        &mut self,
        shutdown: &AtomicBool,
        idle: Option<Duration>,
    ) -> ReadOutcome {
        let entered = Instant::now();
        let mut scanned = 0;
        loop {
            if let Some(nl) = self.buf[scanned..].iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..scanned + nl + 1).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return match String::from_utf8(line) {
                    Ok(s) => ReadOutcome::Line(s),
                    Err(_) => ReadOutcome::TooLong, // handled as bad input
                };
            }
            scanned = self.buf.len();
            if scanned > MAX_LINE_BYTES {
                return ReadOutcome::TooLong;
            }
            if let Some(window) = idle {
                if entered.elapsed() >= window {
                    return ReadOutcome::Idle;
                }
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Closed,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if shutdown.load(Ordering::Acquire) {
                        return ReadOutcome::Closed;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Closed,
            }
        }
    }
}

fn serve_connection(
    core: &Arc<Core>,
    coalescer: Option<&Coalescer<PendingQuery>>,
    stream: TcpStream,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let conn = Arc::new(Conn::new(write_half));
    let mut reader = LineReader::new(stream);
    loop {
        if core.shutdown.load(Ordering::Acquire) {
            return;
        }
        let line = match reader.read_line_idle(&core.shutdown, core.config.idle_timeout) {
            ReadOutcome::Line(line) => line,
            ReadOutcome::Closed => return,
            ReadOutcome::TooLong => {
                core.metrics.bad_requests.inc();
                let _ = conn.write_line(&resp_error(
                    None,
                    "bad_request",
                    "request line too long or not valid UTF-8",
                ));
                return;
            }
            ReadOutcome::Idle => {
                core.metrics.idle_closed.inc();
                let _ = conn.write_line(&resp_error(
                    None,
                    "idle_timeout",
                    "no complete request within the idle window; closing",
                ));
                return;
            }
        };
        if line.is_empty() {
            continue;
        }
        // HTTP shim: probes and scrapes speak HTTP on the same port.
        if line.starts_with("GET ") || line.starts_with("HEAD ") || line.starts_with("POST ") {
            serve_http(core, &mut reader, &conn, &line);
            return;
        }
        if !dispatch(core, coalescer, &conn, &line) {
            return;
        }
    }
}

/// Handle one request line. Returns `false` when the connection should
/// close (tail streams end their connection).
fn dispatch(
    core: &Arc<Core>,
    coalescer: Option<&Coalescer<PendingQuery>>,
    conn: &Arc<Conn>,
    line: &str,
) -> bool {
    let start = Instant::now();
    let envelope = match parse_request(line) {
        Ok(envelope) => envelope,
        Err(reason) => {
            core.metrics.bad_requests.inc();
            let _ = conn.write_line(&resp_error(None, "bad_request", &reason));
            return true;
        }
    };
    let id = envelope.id;
    let deadline_ms = envelope.deadline_ms;
    match envelope.request {
        Request::Query { s, t } => {
            if let Some(coalescer) = coalescer {
                let pending = PendingQuery {
                    s,
                    t,
                    id,
                    conn: Arc::clone(conn),
                    start,
                    deadline_ms,
                };
                if coalescer.submit(pending).is_err() {
                    shed(core, conn, id, "coalescer at capacity");
                }
            } else {
                submit_or_shed(core, conn, id, {
                    let core = Arc::clone(core);
                    let conn = Arc::clone(conn);
                    Box::new(move || {
                        if expired(start, deadline_ms) {
                            refuse_expired(&core, &conn, id, deadline_ms.unwrap_or(0));
                            return;
                        }
                        let d = core
                            .reader
                            .read()
                            .unwrap_or_else(|e| e.into_inner())
                            .query(s, t);
                        core.metrics.queries.inc();
                        core.metrics.request_latency.observe(start.elapsed());
                        let _ = conn.write_line(&resp_dist(id, d));
                    })
                });
            }
        }
        Request::QueryMany { pairs } => submit_or_shed(core, conn, id, {
            let core = Arc::clone(core);
            let conn = Arc::clone(conn);
            Box::new(move || {
                if expired(start, deadline_ms) {
                    refuse_expired(&core, &conn, id, deadline_ms.unwrap_or(0));
                    return;
                }
                let ds = core
                    .reader
                    .read()
                    .unwrap_or_else(|e| e.into_inner())
                    .query_many(&pairs);
                core.metrics.queries.add(pairs.len() as u64);
                core.metrics.request_latency.observe(start.elapsed());
                let _ = conn.write_line(&resp_dists(id, &ds));
            })
        }),
        Request::DistancesFrom { s, targets } => submit_or_shed(core, conn, id, {
            let core = Arc::clone(core);
            let conn = Arc::clone(conn);
            Box::new(move || {
                if expired(start, deadline_ms) {
                    refuse_expired(&core, &conn, id, deadline_ms.unwrap_or(0));
                    return;
                }
                let ds = core
                    .reader
                    .read()
                    .unwrap_or_else(|e| e.into_inner())
                    .distances_from(s, &targets);
                core.metrics.queries.add(targets.len() as u64);
                core.metrics.request_latency.observe(start.elapsed());
                let _ = conn.write_line(&resp_dists(id, &ds));
            })
        }),
        Request::TopKClosest { s, k } => submit_or_shed(core, conn, id, {
            let core = Arc::clone(core);
            let conn = Arc::clone(conn);
            Box::new(move || {
                if expired(start, deadline_ms) {
                    refuse_expired(&core, &conn, id, deadline_ms.unwrap_or(0));
                    return;
                }
                let closest = core
                    .reader
                    .read()
                    .unwrap_or_else(|e| e.into_inner())
                    .top_k_closest(s, k);
                core.metrics.queries.inc();
                core.metrics.request_latency.observe(start.elapsed());
                let _ = conn.write_line(&resp_top_k(id, &closest));
            })
        }),
        Request::Commit { edits, txn } => {
            if core.config.read_only {
                let _ = conn.write_line(&resp_error(
                    id,
                    "read_only",
                    "this node is a replica; commit on the primary",
                ));
                return true;
            }
            submit_or_shed(core, conn, id, {
                let core = Arc::clone(core);
                let conn = Arc::clone(conn);
                Box::new(move || run_commit(&core, &conn, id, &edits, txn, start, deadline_ms))
            });
        }
        Request::WhatIf { edits, pairs } => submit_or_shed(core, conn, id, {
            // Read-only speculation: allowed on replicas, no health
            // gate — the published generation is never touched.
            let core = Arc::clone(core);
            let conn = Arc::clone(conn);
            Box::new(move || {
                if expired(start, deadline_ms) {
                    refuse_expired(&core, &conn, id, deadline_ms.unwrap_or(0));
                    return;
                }
                let session = core
                    .reader
                    .read()
                    .unwrap_or_else(|e| e.into_inner())
                    .what_if(&edits);
                match session {
                    Ok(mut session) => {
                        let ds = session.query_many(&pairs);
                        core.metrics.queries.add(pairs.len() as u64);
                        core.metrics.request_latency.observe(start.elapsed());
                        let _ = conn.write_line(&resp_what_if(id, session.version(), &ds));
                    }
                    Err(e) => {
                        let _ = conn.write_line(&resp_error(id, "bad_request", &format!("{e:?}")));
                    }
                }
            })
        }),
        Request::Recover => {
            if core.config.read_only {
                let _ = conn.write_line(&resp_error(
                    id,
                    "read_only",
                    "this node is a replica; recover on the primary",
                ));
                return true;
            }
            submit_or_shed(core, conn, id, {
                let core = Arc::clone(core);
                let conn = Arc::clone(conn);
                Box::new(move || run_recover(&core, &conn, id))
            });
        }
        Request::Verify => submit_or_shed(core, conn, id, {
            let core = Arc::clone(core);
            let conn = Arc::clone(conn);
            Box::new(move || {
                let result = core
                    .oracle
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .verify_integrity();
                let _ = match result {
                    Ok(()) => conn.write_line(&resp_ok(id, vec![])),
                    Err(e) => conn.write_line(&resp_error(id, "internal", &format!("{e:?}"))),
                };
            })
        }),
        Request::Health => {
            let (health, reason) = core.health_summary();
            let mut extra = vec![
                ("health".to_string(), Json::str(health)),
                ("node".to_string(), Json::str(core.config.node.clone())),
            ];
            if let Some(reason) = reason {
                extra.push(("reason".to_string(), Json::str(reason)));
            }
            let _ = conn.write_line(&resp_ok(id, extra));
        }
        Request::Stats => {
            let position = core
                .oracle
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .wal_position();
            let extra = vec![
                ("node".to_string(), Json::str(core.config.node.clone())),
                ("committed".to_string(), Json::u64(core.committed_seq())),
                (
                    "queue_depth".to_string(),
                    Json::u64(core.pool.depth() as u64),
                ),
                ("queries".to_string(), Json::u64(core.metrics.queries.get())),
                ("sheds".to_string(), Json::u64(core.metrics.sheds.get())),
                ("next_seq".to_string(), Json::u64(position.next_seq)),
                (
                    "wal_bytes".to_string(),
                    position.wal_bytes.map_or(Json::Null, Json::u64),
                ),
            ];
            let _ = conn.write_line(&resp_ok(id, extra));
        }
        Request::Tail { from_seq } => {
            serve_tail(core, conn, id, from_seq);
            return false;
        }
    }
    true
}

fn shed(core: &Core, conn: &Conn, id: Option<u64>, what: &str) {
    core.metrics.sheds.inc();
    let _ = conn.write_line(&resp_error(
        id,
        "shed",
        &format!("overloaded ({what}); retry later"),
    ));
}

fn submit_or_shed(core: &Arc<Core>, conn: &Arc<Conn>, id: Option<u64>, job: crate::pool::Job) {
    match core.pool.submit(job) {
        Ok(()) => {}
        Err(SubmitError::Full { depth }) => {
            shed(core, conn, id, &format!("queue depth {depth}"));
        }
        Err(SubmitError::ShuttingDown) => {
            let _ = conn.write_line(&resp_error(id, "shed", "server shutting down"));
        }
    }
}

fn run_commit(
    core: &Core,
    conn: &Conn,
    id: Option<u64>,
    edits: &[Edit],
    txn: Option<TxnId>,
    start: Instant,
    deadline_ms: Option<u64>,
) {
    let mut oracle = core.oracle.lock().unwrap_or_else(|e| e.into_inner());
    // Re-check the deadline after the (possibly long) lock wait: a
    // commit the client has given up on must not be applied — the
    // retry it already sent carries the same txn id and will land.
    if expired(start, deadline_ms) {
        drop(oracle);
        refuse_expired(core, conn, id, deadline_ms.unwrap_or(0));
        return;
    }
    // Dedup BEFORE the health gate: a retry of an already-applied
    // commit is a read of history and must answer even when writes
    // are poisoned — the work it asks about already happened.
    if let Some(txn) = txn {
        if let Some(receipt) = oracle.txn_receipt(txn) {
            drop(oracle);
            core.metrics.dedup_commits.inc();
            let _ = conn.write_line(&resp_committed(
                id,
                receipt.stats.applied,
                receipt.seq,
                true,
            ));
            return;
        }
    }
    if let Some(reason) = health_refusal(&oracle) {
        drop(oracle);
        let _ = conn.write_line(&resp_error(id, "unhealthy", &reason));
        return;
    }
    let mut session = oracle.update();
    for &edit in edits {
        session = session.push(edit);
    }
    if let Some(txn) = txn {
        session = session.txn(txn);
    }
    match session.commit_with_receipt() {
        Ok(receipt) => {
            let now = oracle.batches_committed();
            drop(oracle);
            core.metrics.commits.inc();
            if receipt.deduplicated {
                core.metrics.dedup_commits.inc();
            }
            core.publish_committed(now);
            let _ = conn.write_line(&resp_committed(
                id,
                receipt.stats.applied,
                receipt.seq,
                receipt.deduplicated,
            ));
        }
        Err(e) => {
            drop(oracle);
            let _ = conn.write_line(&resp_error(id, "commit_failed", &format!("{e:?}")));
        }
    }
}

fn health_refusal(oracle: &DistanceOracle) -> Option<String> {
    match oracle.health() {
        OracleHealth::Healthy => None,
        OracleHealth::Degraded { reason } => {
            Some(format!("oracle degraded: {reason}; run recover"))
        }
        OracleHealth::WritesPoisoned { reason, .. } => {
            Some(format!("writes poisoned: {reason}; run recover"))
        }
    }
}

fn run_recover(core: &Core, conn: &Conn, id: Option<u64>) {
    let mut oracle = core.oracle.lock().unwrap_or_else(|e| e.into_inner());
    match oracle.recover() {
        Ok(()) => {
            // Readers do NOT re-pin across recover(): publish a fresh
            // handle for every query path.
            let reader = oracle.reader();
            let seq = oracle.batches_committed();
            drop(oracle);
            *core.reader.write().unwrap_or_else(|e| e.into_inner()) = reader;
            core.publish_committed(seq);
            let _ = conn.write_line(&resp_ok(
                id,
                vec![("committed".to_string(), Json::u64(seq))],
            ));
        }
        Err(e) => {
            drop(oracle);
            let _ = conn.write_line(&resp_error(id, "internal", &format!("{e:?}")));
        }
    }
}

/// Answer one coalesced batch: one `query_many` (grouped by source
/// inside the oracle), one write + flush per distinct connection.
fn execute_coalesced(core: &Core, batch: Vec<PendingQuery>) {
    core.metrics.coalesce_batch.observe_us(batch.len() as u64);
    // Members whose budget ran out while parked are answered
    // `deadline_exceeded`, not queried — spending oracle time on an
    // answer the client already abandoned is pure waste.
    let (dead, live): (Vec<&PendingQuery>, Vec<&PendingQuery>) =
        batch.iter().partition(|q| expired(q.start, q.deadline_ms));
    for q in &dead {
        refuse_expired(core, &q.conn, q.id, q.deadline_ms.unwrap_or(0));
    }
    let pairs: Vec<(Vertex, Vertex)> = live.iter().map(|q| (q.s, q.t)).collect();
    let dists = core
        .reader
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .query_many(&pairs);
    core.metrics.queries.add(live.len() as u64);
    let mut groups: Vec<(Arc<Conn>, Vec<String>)> = Vec::new();
    for (q, d) in live.iter().zip(&dists) {
        let line = resp_dist(q.id, *d);
        match groups.iter_mut().find(|(c, _)| Arc::ptr_eq(c, &q.conn)) {
            Some((_, lines)) => lines.push(line),
            None => groups.push((Arc::clone(&q.conn), vec![line])),
        }
    }
    for (conn, lines) in &groups {
        let _ = conn.write_lines(lines);
    }
    for q in &live {
        core.metrics.request_latency.observe(q.start.elapsed());
    }
}

/// Stream committed WAL batches to a tailing replica. Runs on the
/// connection's own thread; the connection closes when the stream ends.
fn serve_tail(core: &Arc<Core>, conn: &Arc<Conn>, id: Option<u64>, from_seq: u64) {
    {
        let oracle = core.oracle.lock().unwrap_or_else(|e| e.into_inner());
        if oracle.durability_dir().is_none() {
            drop(oracle);
            let _ = conn.write_line(&resp_error(
                id,
                "not_primary",
                "this node has no write-ahead log to ship",
            ));
            return;
        }
    }
    let mut next = from_seq;
    loop {
        if core.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Read the committed cursor BEFORE scanning the WAL: a record
        // with `seq >= committed` may be an in-flight batch that is
        // about to be aborted, and must never be shipped.
        let committed = core.committed_seq();
        let tail = {
            let oracle = core.oracle.lock().unwrap_or_else(|e| e.into_inner());
            oracle.wal_tail(next)
        };
        let tail = match tail {
            Ok(tail) => tail,
            Err(e) => {
                let _ = conn.write_line(&resp_error(id, "internal", &format!("{e:?}")));
                return;
            }
        };
        // The retained log starts after the requested position: the
        // records in between were pruned by a checkpoint rotation and
        // the replica must re-sync from a fresh checkpoint.
        let pruned = match tail.floor {
            Some(floor) => next < floor,
            None => next < committed,
        };
        if pruned {
            let msg = TailMsg::Resync {
                floor: tail.floor.unwrap_or(committed),
                next: committed,
            };
            let _ = conn.write_line(&msg.render());
            return;
        }
        let mut shipped = false;
        for record in &tail.records {
            if record.seq >= next && record.seq < committed {
                if conn
                    .write_line(&TailMsg::from_record(record).render())
                    .is_err()
                {
                    return;
                }
                core.metrics.tail_records.inc();
                next = record.seq + 1;
                shipped = true;
            }
        }
        if !shipped {
            if conn
                .write_line(&TailMsg::Heartbeat { next }.render())
                .is_err()
            {
                return;
            }
            // Park until another batch commits (or shutdown).
            let guard = core.committed.lock().unwrap_or_else(|e| e.into_inner());
            if *guard <= next && !core.shutdown.load(Ordering::Acquire) {
                let _ = core
                    .commit_cv
                    .wait_timeout(guard, Duration::from_millis(250));
            }
        }
    }
}

/// Serve the HTTP shim: `GET /health`, `GET /metrics`, 404 otherwise.
/// Reads (and discards) the header block, answers, closes.
fn serve_http(core: &Core, reader: &mut LineReader, conn: &Conn, request_line: &str) {
    // Drain headers until the blank line (ignore errors: the response
    // below is best-effort either way).
    loop {
        match reader.read_line(&core.shutdown) {
            ReadOutcome::Line(line) if line.is_empty() => break,
            ReadOutcome::Line(_) => {}
            _ => break,
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/health" => {
            let (health, reason) = core.health_summary();
            let mut fields = vec![
                ("ok".to_string(), Json::Bool(health == "healthy")),
                ("health".to_string(), Json::str(health)),
                ("node".to_string(), Json::str(core.config.node.clone())),
                ("committed".to_string(), Json::u64(core.committed_seq())),
            ];
            if let Some(reason) = reason {
                fields.push(("reason".to_string(), Json::str(reason)));
            }
            ("200 OK", "application/json", Json::Obj(fields).render())
        }
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", core.metrics.render()),
        _ => (
            "404 Not Found",
            "text/plain",
            format!("no such endpoint: {path}\n"),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let mut w = conn.writer.lock().unwrap_or_else(|e| e.into_inner());
    let _ = w.write_all(response.as_bytes());
    let _ = w.flush();
}
