//! A blocking JSON-lines client.
//!
//! Small by design: it exists so the integration tests, the demo and
//! the coalescer bench talk to the server through the same code path a
//! real client would. Every request carries an `id` and responses are
//! matched by `id`, so requests may be pipelined (see
//! [`Client::send_query`] / [`Client::recv_dist`] — the bench uses a
//! window of outstanding queries per connection).

use crate::json::{parse, Json};
use crate::protocol::encode_edit;
use batchhl::{Dist, Edit, Vertex};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or timed out.
    Io(io::Error),
    /// The server sent something the client cannot interpret.
    Protocol(String),
    /// The server refused the request with a typed error.
    Server { code: String, message: String },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(reason) => write!(f, "protocol error: {reason}"),
            ClientError::Server { code, message } => {
                write!(f, "server refused ({code}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server's error code, when the failure is a typed refusal.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }
}

/// One blocking connection to a serving node.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
    /// Responses read while waiting for a different id (pipelining).
    pending: HashMap<u64, Json>,
}

impl Client {
    /// Connect with a 10 s read timeout — a wedged server surfaces as
    /// an error, never as a hang.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            next_id: 1,
            pending: HashMap::new(),
        })
    }

    fn send(&mut self, mut fields: Vec<(String, Json)>) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        fields.insert(0, ("id".to_string(), Json::u64(id)));
        let mut line = Json::Obj(fields).render();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(id)
    }

    fn read_response(&mut self) -> Result<(u64, Json), ClientError> {
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Protocol("server closed the stream".into()));
            }
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let v = parse(line).map_err(|e| ClientError::Protocol(e.to_string()))?;
            match v.get("id").and_then(Json::as_u64) {
                Some(id) => return Ok((id, v)),
                // Responses without an id (bad_request for an unparsable
                // line) cannot be matched; surface them immediately.
                None => return Err(server_error_of(&v)),
            }
        }
    }

    fn wait_for(&mut self, id: u64) -> Result<Json, ClientError> {
        if let Some(v) = self.pending.remove(&id) {
            return checked(v);
        }
        loop {
            let (rid, v) = self.read_response()?;
            if rid == id {
                return checked(v);
            }
            self.pending.insert(rid, v);
        }
    }

    fn call(&mut self, fields: Vec<(String, Json)>) -> Result<Json, ClientError> {
        let id = self.send(fields)?;
        self.wait_for(id)
    }

    /// Point distance query.
    pub fn query(&mut self, s: Vertex, t: Vertex) -> Result<Option<Dist>, ClientError> {
        let v = self.call(vec![
            ("op".to_string(), Json::str("query")),
            ("s".to_string(), Json::u64(s as u64)),
            ("t".to_string(), Json::u64(t as u64)),
        ])?;
        dist_field(&v, "dist")
    }

    /// Send a point query without waiting (windowed pipelining).
    pub fn send_query(&mut self, s: Vertex, t: Vertex) -> Result<u64, ClientError> {
        self.send(vec![
            ("op".to_string(), Json::str("query")),
            ("s".to_string(), Json::u64(s as u64)),
            ("t".to_string(), Json::u64(t as u64)),
        ])
    }

    /// Receive the next pipelined answer: `(id, distance)`.
    pub fn recv_dist(&mut self) -> Result<(u64, Option<Dist>), ClientError> {
        let (id, v) = self.read_response()?;
        let v = checked(v)?;
        Ok((id, dist_field(&v, "dist")?))
    }

    /// Batched point queries, answered positionally.
    pub fn query_many(
        &mut self,
        pairs: &[(Vertex, Vertex)],
    ) -> Result<Vec<Option<Dist>>, ClientError> {
        let wire = Json::Arr(
            pairs
                .iter()
                .map(|&(s, t)| Json::Arr(vec![Json::u64(s as u64), Json::u64(t as u64)]))
                .collect(),
        );
        let v = self.call(vec![
            ("op".to_string(), Json::str("query_many")),
            ("pairs".to_string(), wire),
        ])?;
        dists_field(&v)
    }

    /// One-source fan-out.
    pub fn distances_from(
        &mut self,
        s: Vertex,
        targets: &[Vertex],
    ) -> Result<Vec<Option<Dist>>, ClientError> {
        let wire = Json::Arr(targets.iter().map(|&t| Json::u64(t as u64)).collect());
        let v = self.call(vec![
            ("op".to_string(), Json::str("distances_from")),
            ("s".to_string(), Json::u64(s as u64)),
            ("targets".to_string(), wire),
        ])?;
        dists_field(&v)
    }

    /// The `k` nearest vertices to `s`.
    pub fn top_k_closest(
        &mut self,
        s: Vertex,
        k: usize,
    ) -> Result<Vec<(Vertex, Dist)>, ClientError> {
        let v = self.call(vec![
            ("op".to_string(), Json::str("top_k_closest")),
            ("s".to_string(), Json::u64(s as u64)),
            ("k".to_string(), Json::u64(k as u64)),
        ])?;
        let arr = v
            .get("closest")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Protocol("missing \"closest\"".into()))?;
        arr.iter()
            .map(|pair| {
                let pair = pair.as_arr().filter(|p| p.len() == 2);
                match pair {
                    Some([v, d]) => match (v.as_u64(), d.as_u64()) {
                        (Some(v), Some(d)) => Ok((v as Vertex, d as Dist)),
                        _ => Err(ClientError::Protocol("malformed closest pair".into())),
                    },
                    _ => Err(ClientError::Protocol("malformed closest pair".into())),
                }
            })
            .collect()
    }

    /// Answer `pairs` as if `edits` had been committed, without
    /// committing them. Returns `(version, dists)` — the version of
    /// the generation the speculation ran over (unchanged by the
    /// call), and positional answers under the hypothetical.
    pub fn what_if(
        &mut self,
        edits: &[Edit],
        pairs: &[(Vertex, Vertex)],
    ) -> Result<(u64, Vec<Option<Dist>>), ClientError> {
        let wire_edits = Json::Arr(edits.iter().map(encode_edit).collect());
        let wire_pairs = Json::Arr(
            pairs
                .iter()
                .map(|&(s, t)| Json::Arr(vec![Json::u64(s as u64), Json::u64(t as u64)]))
                .collect(),
        );
        let v = self.call(vec![
            ("op".to_string(), Json::str("what_if")),
            ("edits".to_string(), wire_edits),
            ("pairs".to_string(), wire_pairs),
        ])?;
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("missing \"version\"".into()))?;
        Ok((version, dists_field(&v)?))
    }

    /// Commit an edit batch. Returns `(applied, seq)`.
    pub fn commit(&mut self, edits: &[Edit]) -> Result<(usize, u64), ClientError> {
        let wire = Json::Arr(edits.iter().map(encode_edit).collect());
        let v = self.call(vec![
            ("op".to_string(), Json::str("commit")),
            ("edits".to_string(), wire),
        ])?;
        let applied = v
            .get("applied")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("missing \"applied\"".into()))?;
        let seq = v
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("missing \"seq\"".into()))?;
        Ok((applied as usize, seq))
    }

    /// The node's health string (`healthy` / `degraded` /
    /// `writes_poisoned`).
    pub fn health(&mut self) -> Result<String, ClientError> {
        let v = self.call(vec![("op".to_string(), Json::str("health"))])?;
        v.get("health")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("missing \"health\"".into()))
    }

    /// The node's counters, as raw JSON.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call(vec![("op".to_string(), Json::str("stats"))])
    }

    /// Ask the node to recover (checkpoint + WAL reload). Returns the
    /// committed cursor after recovery.
    pub fn recover(&mut self) -> Result<u64, ClientError> {
        let v = self.call(vec![("op".to_string(), Json::str("recover"))])?;
        v.get("committed")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("missing \"committed\"".into()))
    }

    /// Run the oracle's integrity verification on the node.
    pub fn verify(&mut self) -> Result<(), ClientError> {
        self.call(vec![("op".to_string(), Json::str("verify"))])
            .map(|_| ())
    }
}

fn checked(v: Json) -> Result<Json, ClientError> {
    if v.get("error").is_some() {
        Err(server_error_of(&v))
    } else {
        Ok(v)
    }
}

fn server_error_of(v: &Json) -> ClientError {
    match v.get("error").and_then(Json::as_str) {
        Some(code) => ClientError::Server {
            code: code.to_string(),
            message: v
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        },
        None => ClientError::Protocol(format!("unintelligible response: {}", v.render())),
    }
}

fn dist_field(v: &Json, name: &str) -> Result<Option<Dist>, ClientError> {
    match v.get(name) {
        Some(Json::Null) => Ok(None),
        Some(d) => d
            .as_u64()
            .map(|d| Some(d as Dist))
            .ok_or_else(|| ClientError::Protocol(format!("malformed {name:?}"))),
        None => Err(ClientError::Protocol(format!("missing {name:?}"))),
    }
}

fn dists_field(v: &Json) -> Result<Vec<Option<Dist>>, ClientError> {
    let arr = v
        .get("dists")
        .and_then(Json::as_arr)
        .ok_or_else(|| ClientError::Protocol("missing \"dists\"".into()))?;
    arr.iter()
        .map(|d| match d {
            Json::Null => Ok(None),
            d => d
                .as_u64()
                .map(|d| Some(d as Dist))
                .ok_or_else(|| ClientError::Protocol("malformed distance".into())),
        })
        .collect()
}

/// Minimal HTTP GET against the server's shim: returns `(status,
/// body)`. Supports exactly what the shim emits (`Connection: close`
/// with a `Content-Length`).
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: batchhl\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let mut lines = response.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::other(format!("malformed status line {status_line:?}")))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    Ok((status, body))
}
