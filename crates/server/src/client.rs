//! A blocking JSON-lines client.
//!
//! Small by design: it exists so the integration tests, the demo and
//! the coalescer bench talk to the server through the same code path a
//! real client would. Every request carries an `id` and responses are
//! matched by `id`, so requests may be pipelined (see
//! [`Client::send_query`] / [`Client::recv_dist`] — the bench uses a
//! window of outstanding queries per connection).
//!
//! # Fault tolerance
//!
//! With a [`RetryPolicy`] attached ([`Client::with_retry`]), calls
//! that fail on the wire — I/O errors, a closed or garbled stream, a
//! typed `shed` refusal — are retried with jittered exponential
//! backoff, reconnecting first when the stream itself is suspect.
//! Retrying a **commit** is safe because every logical commit is
//! stamped once with a `txn` id (random session id + per-commit
//! counter) that is reused verbatim across attempts: a server that
//! already applied the batch answers the original receipt (with
//! `deduped: true`) instead of applying it twice.
//!
//! A per-request deadline ([`Client::set_deadline_ms`]) is enforced on
//! both ends: the server refuses to *start* work past the deadline
//! (typed `deadline_exceeded`, never retried), and the client bounds
//! its read timeout to the deadline plus a grace window so a wedged
//! server surfaces as an error rather than a hang.

use crate::json::{parse, Json};
use crate::protocol::encode_edit;
use batchhl::common::rng::SplitMix64;
use batchhl::{Dist, Edit, TxnId, Vertex};
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, RandomState};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// How a [`Client`] retries wire-level failures.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (so `1` disables
    /// retries).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per attempt up to
    /// `max_backoff`, each sleep jittered into `[delay/2, delay]`.
    pub initial_backoff: Duration,
    pub max_backoff: Duration,
    /// Seed for the jitter stream (deterministic per client).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// What a successful commit told us.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitOutcome {
    /// Edits that changed the graph.
    pub applied: usize,
    /// The batch's sequence number.
    pub seq: u64,
    /// `true` when the server answered from its txn dedup table — the
    /// batch had already been applied by an earlier attempt.
    pub deduped: bool,
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or timed out.
    Io(io::Error),
    /// The server sent something the client cannot interpret.
    Protocol(String),
    /// The server refused the request with a typed error.
    Server { code: String, message: String },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(reason) => write!(f, "protocol error: {reason}"),
            ClientError::Server { code, message } => {
                write!(f, "server refused ({code}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server's error code, when the failure is a typed refusal.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }
}

/// How long past the deadline the client keeps listening for the
/// server's (possibly in-flight) answer before declaring a timeout.
const DEADLINE_GRACE: Duration = Duration::from_millis(500);

/// The read timeout with no deadline configured.
const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Txn session ids ride the wire as JSON numbers; keep them inside
/// f64's lossless integer range.
const TXN_SESSION_MASK: u64 = (1 << 53) - 1;

/// One blocking connection to a serving node.
pub struct Client {
    addr: SocketAddr,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
    /// Responses read while waiting for a different id (pipelining).
    pending: HashMap<u64, Json>,
    /// Wire-failure retry policy; `None` fails fast (the default).
    retry: Option<RetryPolicy>,
    jitter: SplitMix64,
    /// Stamped on every request when set; see [`set_deadline_ms`](Self::set_deadline_ms).
    deadline_ms: Option<u64>,
    /// Txn identity: `(session, counter)` stamped once per logical
    /// commit, reused verbatim across retry attempts.
    txn_session: u64,
    txn_counter: u64,
    /// Retry attempts performed (for tests and ops visibility).
    retries: u64,
}

impl Client {
    /// Connect with a 10 s read timeout — a wedged server surfaces as
    /// an error, never as a hang. No retries (see [`with_retry`](Self::with_retry)).
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = Self::dial(addr, None)?;
        let reader = BufReader::new(stream.try_clone()?);
        // A random session id makes txn ids from independent client
        // processes collision-free without coordination. Masked to the
        // wire's lossless integer range (53 bits — the protocol's
        // numbers ride in f64).
        let txn_session = RandomState::new().hash_one(0u64) & TXN_SESSION_MASK;
        Ok(Client {
            addr,
            writer: stream,
            reader,
            next_id: 1,
            pending: HashMap::new(),
            retry: None,
            jitter: SplitMix64::new(0),
            deadline_ms: None,
            txn_session,
            txn_counter: 0,
            retries: 0,
        })
    }

    /// Attach a retry policy: wire-level failures (I/O, closed or
    /// garbled stream, typed `shed`) reconnect and retry with jittered
    /// exponential backoff. Typed refusals other than `shed` — and
    /// `deadline_exceeded` in particular — are never retried.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Client {
        self.jitter = SplitMix64::new(policy.jitter_seed);
        self.retry = Some(policy);
        self
    }

    /// Stamp every subsequent request with this latency budget. The
    /// server refuses to *start* work past it (`deadline_exceeded`);
    /// the client's read timeout is bounded to the budget plus a small
    /// grace window, so no call outlives its deadline by more than
    /// that grace. `None` removes the budget.
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        self.deadline_ms = deadline_ms;
        let _ = self
            .writer
            .set_read_timeout(Some(read_timeout_for(deadline_ms)));
        let _ = self
            .reader
            .get_ref()
            .set_read_timeout(Some(read_timeout_for(deadline_ms)));
    }

    /// Pin the txn session id (deterministic tests; a second client
    /// with the same session id impersonates this one's retries).
    /// Masked to the wire's 53-bit lossless integer range.
    pub fn set_txn_session(&mut self, session: u64) {
        self.txn_session = session & TXN_SESSION_MASK;
    }

    /// The session half of this client's txn ids.
    pub fn txn_session(&self) -> u64 {
        self.txn_session
    }

    /// Retry attempts this client has performed.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn dial(addr: SocketAddr, deadline_ms: Option<u64>) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout_for(deadline_ms)))?;
        Ok(stream)
    }

    /// Replace a suspect stream with a fresh connection. Pipelined
    /// responses still in flight on the old stream are gone; pending
    /// ids are dropped so they surface as protocol errors, not hangs.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = Self::dial(self.addr, self.deadline_ms)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = stream;
        self.pending.clear();
        Ok(())
    }

    fn send(&mut self, mut fields: Vec<(String, Json)>) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        fields.insert(0, ("id".to_string(), Json::u64(id)));
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), Json::u64(ms)));
        }
        let mut line = Json::Obj(fields).render();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(id)
    }

    fn read_response(&mut self) -> Result<(u64, Json), ClientError> {
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Protocol("server closed the stream".into()));
            }
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let v = parse(line).map_err(|e| ClientError::Protocol(e.to_string()))?;
            match v.get("id").and_then(Json::as_u64) {
                Some(id) => return Ok((id, v)),
                // Responses without an id (bad_request for an unparsable
                // line) cannot be matched; surface them immediately.
                None => return Err(server_error_of(&v)),
            }
        }
    }

    fn wait_for(&mut self, id: u64) -> Result<Json, ClientError> {
        if let Some(v) = self.pending.remove(&id) {
            return checked(v);
        }
        loop {
            let (rid, v) = self.read_response()?;
            if rid == id {
                return checked(v);
            }
            self.pending.insert(rid, v);
        }
    }

    fn call_once(&mut self, fields: Vec<(String, Json)>) -> Result<Json, ClientError> {
        let id = self.send(fields)?;
        self.wait_for(id)
    }

    /// One logical call under the retry policy. `fields` is re-sent
    /// verbatim on each attempt (a fresh envelope `id` per attempt,
    /// but the same `txn` for commits — that is what makes retried
    /// commits idempotent).
    fn call(&mut self, fields: Vec<(String, Json)>) -> Result<Json, ClientError> {
        let Some(policy) = self.retry.clone() else {
            return self.call_once(fields);
        };
        let mut backoff = policy.initial_backoff;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let err = match self.call_once(fields.clone()) {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            if attempt >= policy.max_attempts.max(1) || !retryable(&err) {
                return Err(err);
            }
            self.retries += 1;
            let nanos = backoff.as_nanos() as u64;
            let half = nanos / 2;
            std::thread::sleep(Duration::from_nanos(
                half + self.jitter.below(nanos - half + 1),
            ));
            backoff = (backoff * 2).min(policy.max_backoff);
            if needs_reconnect(&err) {
                // Best effort: a failed reconnect just fails the next
                // attempt's write, which re-enters this loop.
                let _ = self.reconnect();
            }
        }
    }

    /// Point distance query.
    pub fn query(&mut self, s: Vertex, t: Vertex) -> Result<Option<Dist>, ClientError> {
        let v = self.call(vec![
            ("op".to_string(), Json::str("query")),
            ("s".to_string(), Json::u64(s as u64)),
            ("t".to_string(), Json::u64(t as u64)),
        ])?;
        dist_field(&v, "dist")
    }

    /// Send a point query without waiting (windowed pipelining).
    pub fn send_query(&mut self, s: Vertex, t: Vertex) -> Result<u64, ClientError> {
        self.send(vec![
            ("op".to_string(), Json::str("query")),
            ("s".to_string(), Json::u64(s as u64)),
            ("t".to_string(), Json::u64(t as u64)),
        ])
    }

    /// Receive the next pipelined answer: `(id, distance)`.
    pub fn recv_dist(&mut self) -> Result<(u64, Option<Dist>), ClientError> {
        let (id, v) = self.read_response()?;
        let v = checked(v)?;
        Ok((id, dist_field(&v, "dist")?))
    }

    /// Batched point queries, answered positionally.
    pub fn query_many(
        &mut self,
        pairs: &[(Vertex, Vertex)],
    ) -> Result<Vec<Option<Dist>>, ClientError> {
        let wire = Json::Arr(
            pairs
                .iter()
                .map(|&(s, t)| Json::Arr(vec![Json::u64(s as u64), Json::u64(t as u64)]))
                .collect(),
        );
        let v = self.call(vec![
            ("op".to_string(), Json::str("query_many")),
            ("pairs".to_string(), wire),
        ])?;
        dists_field(&v)
    }

    /// One-source fan-out.
    pub fn distances_from(
        &mut self,
        s: Vertex,
        targets: &[Vertex],
    ) -> Result<Vec<Option<Dist>>, ClientError> {
        let wire = Json::Arr(targets.iter().map(|&t| Json::u64(t as u64)).collect());
        let v = self.call(vec![
            ("op".to_string(), Json::str("distances_from")),
            ("s".to_string(), Json::u64(s as u64)),
            ("targets".to_string(), wire),
        ])?;
        dists_field(&v)
    }

    /// The `k` nearest vertices to `s`.
    pub fn top_k_closest(
        &mut self,
        s: Vertex,
        k: usize,
    ) -> Result<Vec<(Vertex, Dist)>, ClientError> {
        let v = self.call(vec![
            ("op".to_string(), Json::str("top_k_closest")),
            ("s".to_string(), Json::u64(s as u64)),
            ("k".to_string(), Json::u64(k as u64)),
        ])?;
        let arr = v
            .get("closest")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Protocol("missing \"closest\"".into()))?;
        arr.iter()
            .map(|pair| {
                let pair = pair.as_arr().filter(|p| p.len() == 2);
                match pair {
                    Some([v, d]) => match (v.as_u64(), d.as_u64()) {
                        (Some(v), Some(d)) => Ok((v as Vertex, d as Dist)),
                        _ => Err(ClientError::Protocol("malformed closest pair".into())),
                    },
                    _ => Err(ClientError::Protocol("malformed closest pair".into())),
                }
            })
            .collect()
    }

    /// Answer `pairs` as if `edits` had been committed, without
    /// committing them. Returns `(version, dists)` — the version of
    /// the generation the speculation ran over (unchanged by the
    /// call), and positional answers under the hypothetical.
    pub fn what_if(
        &mut self,
        edits: &[Edit],
        pairs: &[(Vertex, Vertex)],
    ) -> Result<(u64, Vec<Option<Dist>>), ClientError> {
        let wire_edits = Json::Arr(edits.iter().map(encode_edit).collect());
        let wire_pairs = Json::Arr(
            pairs
                .iter()
                .map(|&(s, t)| Json::Arr(vec![Json::u64(s as u64), Json::u64(t as u64)]))
                .collect(),
        );
        let v = self.call(vec![
            ("op".to_string(), Json::str("what_if")),
            ("edits".to_string(), wire_edits),
            ("pairs".to_string(), wire_pairs),
        ])?;
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("missing \"version\"".into()))?;
        Ok((version, dists_field(&v)?))
    }

    /// Commit an edit batch. Returns `(applied, seq)`.
    pub fn commit(&mut self, edits: &[Edit]) -> Result<(usize, u64), ClientError> {
        self.commit_detailed(edits).map(|o| (o.applied, o.seq))
    }

    /// [`commit`](Self::commit) with the full [`CommitOutcome`],
    /// including whether the server deduplicated a retried attempt.
    /// The txn id is allocated once here — every wire attempt of this
    /// logical commit carries the same one.
    pub fn commit_detailed(&mut self, edits: &[Edit]) -> Result<CommitOutcome, ClientError> {
        self.txn_counter += 1;
        let txn = TxnId {
            session: self.txn_session,
            counter: self.txn_counter,
        };
        let wire = Json::Arr(edits.iter().map(encode_edit).collect());
        let v = self.call(vec![
            ("op".to_string(), Json::str("commit")),
            ("edits".to_string(), wire),
            (
                "txn".to_string(),
                Json::Arr(vec![Json::u64(txn.session), Json::u64(txn.counter)]),
            ),
        ])?;
        let applied = v
            .get("applied")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("missing \"applied\"".into()))?;
        let seq = v
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("missing \"seq\"".into()))?;
        let deduped = v.get("deduped").and_then(Json::as_bool).unwrap_or(false);
        Ok(CommitOutcome {
            applied: applied as usize,
            seq,
            deduped,
        })
    }

    /// The node's health string (`healthy` / `degraded` /
    /// `writes_poisoned`).
    pub fn health(&mut self) -> Result<String, ClientError> {
        let v = self.call(vec![("op".to_string(), Json::str("health"))])?;
        v.get("health")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("missing \"health\"".into()))
    }

    /// The node's counters, as raw JSON.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call(vec![("op".to_string(), Json::str("stats"))])
    }

    /// Ask the node to recover (checkpoint + WAL reload). Returns the
    /// committed cursor after recovery.
    pub fn recover(&mut self) -> Result<u64, ClientError> {
        let v = self.call(vec![("op".to_string(), Json::str("recover"))])?;
        v.get("committed")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("missing \"committed\"".into()))
    }

    /// Run the oracle's integrity verification on the node.
    pub fn verify(&mut self) -> Result<(), ClientError> {
        self.call(vec![("op".to_string(), Json::str("verify"))])
            .map(|_| ())
    }
}

/// Read timeout that bounds a call to its deadline plus grace — a
/// client with a 200ms budget must not sit in `read` for 10s.
fn read_timeout_for(deadline_ms: Option<u64>) -> Duration {
    match deadline_ms {
        Some(ms) => (Duration::from_millis(ms) + DEADLINE_GRACE).min(DEFAULT_READ_TIMEOUT),
        None => DEFAULT_READ_TIMEOUT,
    }
}

/// Wire-level failures retry; refusals the server *decided* do not.
/// `shed` is the one typed refusal that retries: it is an explicit
/// "try again later". `deadline_exceeded` must not — the budget is
/// gone, and for commits the dedup table makes a *caller-level* retry
/// safe anyway.
fn retryable(e: &ClientError) -> bool {
    match e {
        ClientError::Io(_) | ClientError::Protocol(_) => true,
        ClientError::Server { code, .. } => code == "shed",
    }
}

/// `shed` means the server is alive and refusing; everything else
/// retryable means the stream itself is suspect — dial a fresh one.
fn needs_reconnect(e: &ClientError) -> bool {
    !matches!(e, ClientError::Server { .. })
}

fn checked(v: Json) -> Result<Json, ClientError> {
    if v.get("error").is_some() {
        Err(server_error_of(&v))
    } else {
        Ok(v)
    }
}

fn server_error_of(v: &Json) -> ClientError {
    match v.get("error").and_then(Json::as_str) {
        Some(code) => ClientError::Server {
            code: code.to_string(),
            message: v
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        },
        None => ClientError::Protocol(format!("unintelligible response: {}", v.render())),
    }
}

fn dist_field(v: &Json, name: &str) -> Result<Option<Dist>, ClientError> {
    match v.get(name) {
        Some(Json::Null) => Ok(None),
        Some(d) => d
            .as_u64()
            .map(|d| Some(d as Dist))
            .ok_or_else(|| ClientError::Protocol(format!("malformed {name:?}"))),
        None => Err(ClientError::Protocol(format!("missing {name:?}"))),
    }
}

fn dists_field(v: &Json) -> Result<Vec<Option<Dist>>, ClientError> {
    let arr = v
        .get("dists")
        .and_then(Json::as_arr)
        .ok_or_else(|| ClientError::Protocol("missing \"dists\"".into()))?;
    arr.iter()
        .map(|d| match d {
            Json::Null => Ok(None),
            d => d
                .as_u64()
                .map(|d| Some(d as Dist))
                .ok_or_else(|| ClientError::Protocol("malformed distance".into())),
        })
        .collect()
}

/// Minimal HTTP GET against the server's shim: returns `(status,
/// body)`. Supports exactly what the shim emits (`Connection: close`
/// with a `Content-Length`).
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: batchhl\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let mut lines = response.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::other(format!("malformed status line {status_line:?}")))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    Ok((status, body))
}
