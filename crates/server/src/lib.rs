//! # batchhl-server
//!
//! A threaded serving tier for the [`batchhl`] distance oracle — the
//! piece that turns the library into a network service. Built entirely
//! on `std::net` + `std::thread` (the workspace is offline; there is
//! no async runtime): a fixed [`WorkerPool`] executes oracle jobs
//! behind a bounded queue, and admission control sheds with typed
//! responses instead of queueing unbounded work.
//!
//! Three pillars:
//!
//! - **Serving front end** ([`Server`]) — a line-delimited
//!   JSON-over-TCP protocol ([`protocol`]) for queries, commits and
//!   operational verbs, plus a minimal HTTP/1.1 shim answering
//!   `GET /health` and `GET /metrics` on the same port.
//! - **Request coalescing** ([`Coalescer`]) — point queries are
//!   microbatched for a bounded window and drained through the
//!   oracle's batched entry points, amortizing per-request fixed costs
//!   (worker wakeups, generation pins, response syscalls) into
//!   per-batch costs.
//! - **WAL-shipping replication** ([`Replica`]) — a primary streams
//!   committed write-ahead-log batches over TCP (`tail`); replicas
//!   bootstrap from a checkpoint, apply the stream through the
//!   ordinary commit path, serve snapshot-consistent reads, reconnect
//!   with jittered backoff (and a heartbeat watchdog for half-open
//!   streams), and re-sync from a fresh checkpoint when their
//!   position falls behind a checkpoint rotation.
//!
//! Wire-level fault tolerance rides on three mechanisms: commits are
//! stamped with txn ids and deduplicated server-side, so a
//! [`Client`] with a [`RetryPolicy`] can retry blindly without
//! double-applying; requests carry a `deadline_ms` budget the server
//! enforces before starting work; and the deterministic
//! [`FaultProxy`] interposer (tests) injects delays, torn frames,
//! black holes and duplicate delivery on a scripted schedule.
//!
//! ```no_run
//! use batchhl::Oracle;
//! use batchhl::graph::generators::barabasi_albert;
//! use batchhl_server::{Client, Server, ServerConfig};
//!
//! let oracle = Oracle::new(barabasi_albert(500, 3, 7)).unwrap();
//! let server = Server::start(oracle, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let d = client.query(1, 200).unwrap();
//! # let _ = d;
//! ```

pub mod chaos;
pub mod client;
pub mod coalescer;
pub mod handlers;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod replication;

pub use chaos::{Fault, FaultProxy};
pub use client::{http_get, Client, ClientError, CommitOutcome, RetryPolicy};
pub use coalescer::{CoalesceConfig, Coalescer};
pub use handlers::{Conn, PendingQuery, Server, ServerConfig};
pub use metrics::ServerMetrics;
pub use pool::{SubmitError, WorkerPool};
pub use protocol::{Envelope, Request, TailMsg};
pub use replication::{Replica, ReplicaConfig};
