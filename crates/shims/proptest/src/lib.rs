//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait over integer ranges, booleans, tuples and
//! `prop::collection::vec`; the `proptest!` macro (with optional
//! `#![proptest_config(...)]`); and `prop_assert!` /
//! `prop_assert_eq!`. Cases are generated from a per-test
//! deterministic seed. No shrinking: a failing case reports its inputs
//! via the assertion message and the case index, which — with
//! deterministic seeding — is enough to reproduce it.

use std::ops::Range;

/// Deterministic generator driving test-case production (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A source of values for one test-case argument.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "empty strategy range");
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Strategy producing vectors whose length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod bool {
        use super::super::{Strategy, TestRng};

        pub struct Any;

        /// Uniformly random booleans.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a over the test name: a stable per-test seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Mirror of proptest's `proptest!` block macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new(
                    $crate::seed_from_name(stringify!($name)));
                for case in 0..cfg.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("proptest case {case} of {}: {message}", cfg.cases);
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u32, u32)>> {
        prop::collection::vec((0..10u32, 0..10u32), 0..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0..7u32, v in pairs(), flag in prop::bool::ANY) {
            prop_assert!(x < 7);
            prop_assert!(v.len() < 5, "len {}", v.len());
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
            let _ = flag;
        }

        #[test]
        fn eq_macro_compiles(x in 0..5usize) {
            prop_assert_eq!(x, x);
            prop_assert_eq!(x + 1, x + 1, "custom {}", x);
        }
    }
}
