//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements exactly the API surface the workspace uses: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods `gen_range` / `gen_bool` / `gen`, and
//! [`seq::SliceRandom`]'s `shuffle` / `choose`.
//!
//! The generator is SplitMix64, *not* upstream's ChaCha-based `StdRng`
//! — sequences differ from real `rand`, but every use in this workspace
//! only relies on determinism per seed, which this shim provides.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types `gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`hi` exclusive; callers guarantee
    /// a non-empty range).
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// `hi + 1` for inclusive ranges; saturating to keep `0..=MAX` sane.
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "empty sample range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Debiased multiply-shift (Lemire); span is tiny relative
                // to 2^64 everywhere in this workspace, so one draw does.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + r as $t
            }

            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }

    fn successor(self) -> Self {
        self
    }
}

/// Range forms accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_below(rng, lo, hi.successor())
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic standard generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::{Rng, SampleUniform};

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = usize::sample_below(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_below(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=4u32);
            assert!(y <= 4);
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_hits() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
