//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API that the workspace's
//! benches use — `criterion_group!` / `criterion_main!`, benchmark
//! groups, `iter` / `iter_batched`, throughput annotation — with a
//! simple warm-up + sampled-measurement schedule and plain-text
//! median/mean reporting. No plotting, no statistics beyond
//! median/mean/min, no saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = id.render();
        run_benchmark(self, &name, None, f);
        self
    }

    /// Criterion's "run everything was configured" finalizer; a no-op
    /// here, present so `criterion_main!`-generated code can call it.
    pub fn final_summary(&mut self) {}
}

/// Per-element/byte normalization for reported rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost; measurement here is always
/// per-invocation, so the variants only document caller intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.render());
        run_benchmark(self.criterion, &name, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Handed to each benchmark closure; records one sample per call.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up: find an iteration count that fills one sample window.
    let sample_budget =
        criterion.measurement_time.max(Duration::from_millis(1)) / criterion.sample_size as u32;
    let mut iters = 1u64;
    let warm_up_end = Instant::now() + criterion.warm_up_time;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
        if Instant::now() >= warm_up_end {
            break per_iter;
        }
        iters = iters.saturating_mul(2).min(1 << 30);
    };
    let iters_per_sample =
        (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(criterion.sample_size);
    for _ in 0..criterion.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples[0];

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12}/s", si(n as f64 * 1e9 / median)),
        Throughput::Bytes(n) => format!("  {:>10}B/s", si(n as f64 * 1e9 / median)),
    });
    println!(
        "{name:<48} median {:>12}  mean {:>12}  min {:>12}{}",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(min),
        rate.unwrap_or_default()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn si(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}K", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Mirror of criterion's `criterion_group!`: both the struct-like form
/// with `name` / `config` / `targets` and the positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of criterion's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
