//! Figure 7 (criterion form): BHL⁺ batch update time at 10–50
//! landmarks.

use batchhl_bench::bench_config;
use batchhl_bench::bench_support::{bench_batch, bench_graph, bench_index};
use batchhl_core::index::Algorithm;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let g = bench_graph();
    let batch = bench_batch(&g, 50);
    let mut group = c.benchmark_group("fig7_update_vs_landmarks");
    for k in [10usize, 30, 50] {
        let index = bench_index(&g, Algorithm::BhlPlus, k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter_batched(
                || index.clone(),
                |mut idx| idx.apply_batch(&batch),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_config!();
    targets = bench
}
criterion_main!(benches);
