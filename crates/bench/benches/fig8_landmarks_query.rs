//! Figure 8 (criterion form): BHL⁺ query time at 10–50 landmarks.

use batchhl_bench::bench_config;
use batchhl_bench::bench_support::{bench_graph, bench_index, bench_queries};
use batchhl_core::index::Algorithm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = bench_graph();
    let pairs = bench_queries(&g, 256);
    let mut group = c.benchmark_group("fig8_query_vs_landmarks");
    group.throughput(criterion::Throughput::Elements(pairs.len() as u64));
    for k in [10usize, 30, 50] {
        let mut index = bench_index(&g, Algorithm::BhlPlus, k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                for &(s, t) in &pairs {
                    black_box(index.query_dist(s, t));
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_config!();
    targets = bench
}
criterion_main!(benches);
