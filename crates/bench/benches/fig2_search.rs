//! Figure 2 / Table 5 (criterion form): the search phase alone —
//! basic (Algorithm 2) vs improved (Algorithm 3) batch search. The
//! affected-set *sizes* are reported by `experiments -- fig2 table5`;
//! this bench measures the time cost of the tighter pruning.

use batchhl_bench::bench_config;
use batchhl_bench::bench_support::{bench_batch, bench_graph_dense, BENCH_LANDMARKS};
use batchhl_core::search::batch_search;
use batchhl_core::search_improved::batch_search_improved;
use batchhl_core::workspace::UpdateWorkspace;
use batchhl_hcl::{build_labelling, LandmarkSelection};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let g0 = bench_graph_dense();
    let lab = build_labelling(
        &g0,
        LandmarkSelection::TopDegree(BENCH_LANDMARKS).select(&g0),
    )
    .unwrap();
    let batch = bench_batch(&g0, 100).normalize(&g0);
    let mut g1 = g0.clone();
    g1.apply_batch(&batch);
    let mut ws = UpdateWorkspace::new(g1.num_vertices());
    let r = lab.num_landmarks();

    let mut group = c.benchmark_group("fig2_batch_search");
    group.bench_function("Algorithm2_basic", |b| {
        b.iter(|| {
            for i in 0..r {
                ws.reset();
                batch_search(&lab, &g1, batch.updates(), i, false, &mut ws);
            }
        })
    });
    group.bench_function("Algorithm3_improved", |b| {
        b.iter(|| {
            for i in 0..r {
                ws.reset();
                batch_search_improved(&lab, &g1, batch.updates(), i, false, &mut ws);
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_config!();
    targets = bench
}
criterion_main!(benches);
