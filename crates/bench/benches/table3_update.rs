//! Table 3 (criterion form): batch update time of the BatchHL variants
//! against FulFD on a fully-dynamic batch.

use batchhl_baselines::FulFd;
use batchhl_bench::bench_config;
use batchhl_bench::bench_support::{bench_batch, bench_graph, bench_index, BENCH_LANDMARKS};
use batchhl_core::index::Algorithm;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench(c: &mut Criterion) {
    let g = bench_graph();
    let batch = bench_batch(&g, 50);
    let mut group = c.benchmark_group("table3_fully_dynamic_update");
    for (name, alg) in [
        ("BHL+", Algorithm::BhlPlus),
        ("BHL", Algorithm::Bhl),
        ("BHLs", Algorithm::BhlS),
        ("UHL+", Algorithm::UhlPlus),
    ] {
        let index = bench_index(&g, alg, BENCH_LANDMARKS);
        group.bench_function(name, |b| {
            b.iter_batched(
                || index.clone(),
                |mut idx| idx.apply_batch(&batch),
                BatchSize::LargeInput,
            )
        });
    }
    let fd = FulFd::build(g.clone(), BENCH_LANDMARKS);
    group.bench_function("FulFD", |b| {
        b.iter_batched(
            || fd.clone(),
            |mut idx| idx.apply_batch(&batch),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_config!();
    targets = bench
}
criterion_main!(benches);
