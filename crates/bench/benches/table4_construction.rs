//! Table 4, CT column (criterion form): labelling construction —
//! BHL⁺ (highway cover) vs FulFD (bit-parallel SPTs) vs PLL vs PSL.

use batchhl_baselines::{build_psl, FulFd, PllIndex};
use batchhl_bench::bench_config;
use batchhl_bench::bench_support::{bench_graph, BENCH_LANDMARKS};
use batchhl_hcl::{build_labelling, LandmarkSelection};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let g = bench_graph();
    let landmarks = LandmarkSelection::TopDegree(BENCH_LANDMARKS).select(&g);
    let mut group = c.benchmark_group("table4_construction");
    group.bench_function("BHL+ (highway cover)", |b| {
        b.iter(|| build_labelling(&g, landmarks.clone()).unwrap())
    });
    group.bench_function("FulFD (BP trees)", |b| {
        b.iter(|| FulFd::build(g.clone(), BENCH_LANDMARKS))
    });
    group.bench_function("FulPLL (PLL)", |b| b.iter(|| PllIndex::build(&g)));
    group.bench_function("PSL*", |b| b.iter(|| build_psl(&g, 1)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_config!();
    targets = bench
}
criterion_main!(benches);
