//! Table 6 (criterion form): directed update and query.

use batchhl_bench::bench_config;
use batchhl_bench::bench_support::{bench_graph, bench_queries, BENCH_LANDMARKS, BENCH_SEED};
use batchhl_core::directed::DirectedBatchIndex;
use batchhl_core::index::{Algorithm, IndexConfig};
use batchhl_graph::generators::orient_randomly;
use batchhl_graph::Batch;
use batchhl_hcl::LandmarkSelection;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let und = bench_graph();
    let g = orient_randomly(&und, 0.3, BENCH_SEED);
    // A fully-dynamic directed batch: delete existing arcs + add new.
    let mut batch = Batch::new();
    let arcs: Vec<_> = g.edges().take(25).collect();
    for (a, b) in arcs {
        batch.delete(a, b);
    }
    for i in 0..25u32 {
        let a = (i * 37) % und.num_vertices() as u32;
        let b = (i * 91 + 11) % und.num_vertices() as u32;
        if a != b && !g.has_edge(a, b) {
            batch.insert(a, b);
        }
    }
    let cfg = |alg| IndexConfig {
        selection: LandmarkSelection::TopDegree(BENCH_LANDMARKS),
        algorithm: alg,
        threads: 1,
        ..IndexConfig::default()
    };
    let mut group = c.benchmark_group("table6_directed");
    for (name, alg) in [("BHL+", Algorithm::BhlPlus), ("BHL", Algorithm::Bhl)] {
        let index = DirectedBatchIndex::build(g.clone(), cfg(alg));
        group.bench_function(format!("update/{name}"), |b| {
            b.iter_batched(
                || index.clone(),
                |mut idx| idx.apply_batch(&batch),
                BatchSize::LargeInput,
            )
        });
    }
    let pairs = bench_queries(&und, 256);
    let mut index = DirectedBatchIndex::build(g.clone(), cfg(Algorithm::BhlPlus));
    group.bench_function("query/BHL+", |b| {
        b.iter(|| {
            for &(s, t) in &pairs {
                black_box(index.query_dist(s, t));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_config!();
    targets = bench
}
criterion_main!(benches);
