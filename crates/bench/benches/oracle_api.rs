//! Batched query plans vs the naive per-pair loop, through the
//! `DistanceOracle` facade — the headline measurement of the unified
//! API: `distances_from(s, 1024 targets)` must beat 1024 independent
//! `query` calls on the BHL⁺ configuration, because the batched call
//! pins one generation, builds the source's label plan (`via[j] =
//! min_i label_i(s) + δ_H(i, j)`) once, and replaces 1024 bounded
//! bidirectional searches with one bounded sweep of `G[V\R]`.
//!
//! Series (all on the same oracle + reader):
//!
//! * `per_pair/1024` — 1024 independent `reader.query` calls, one
//!   source (the naive loop the batched plan replaces);
//! * `distances_from/1024` — the same 1024 answers in one call;
//! * `query_many_grouped/1024` — 1024 pairs over 32 sources in one
//!   call (grouped plan reuse);
//! * `per_pair_mixed/1024` — the same 1024 mixed pairs as independent
//!   calls;
//! * `top_k_closest/64` — k-nearest extraction, which the per-pair API
//!   cannot express at all without scanning every vertex.

use batchhl::graph::Vertex;
use batchhl::{LandmarkSelection, Oracle, OracleReader};
use batchhl_bench::bench_config;
use batchhl_bench::bench_support::{bench_graph, bench_queries, BENCH_LANDMARKS, BENCH_SEED};
use batchhl_common::SplitMix64;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const FANOUT: usize = 1024;
const SOURCES: usize = 32;

fn fixture() -> (OracleReader, Vertex, Vec<Vertex>, Vec<(Vertex, Vertex)>) {
    let graph = bench_graph();
    let n = graph.num_vertices();
    let mixed = {
        // 32 sources × 32 targets from the standard query distribution.
        let base = bench_queries(&graph, SOURCES);
        let mut rng = SplitMix64::new(BENCH_SEED ^ 0xFA);
        base.iter()
            .flat_map(|&(s, _)| {
                let mut rng2 = SplitMix64::new(rng.next_u64());
                (0..FANOUT / SOURCES).map(move |_| (s, rng2.below(n as u64) as Vertex))
            })
            .collect::<Vec<_>>()
    };
    let mut rng = SplitMix64::new(BENCH_SEED);
    let source = bench_queries(&graph, 1)[0].0;
    let targets: Vec<Vertex> = (0..FANOUT).map(|_| rng.below(n as u64) as Vertex).collect();
    let oracle = Oracle::builder()
        .landmarks(LandmarkSelection::TopDegree(BENCH_LANDMARKS))
        .build(graph)
        .expect("undirected bench graph");
    (oracle.reader(), source, targets, mixed)
}

fn bench(c: &mut Criterion) {
    let (reader, source, targets, mixed) = fixture();

    // The batched plans must answer exactly what the per-pair loop
    // answers — assert once before timing anything.
    let batched = reader.distances_from(source, &targets);
    for (&t, &d) in targets.iter().zip(&batched) {
        assert_eq!(d, reader.query(source, t), "fanout({source},{t})");
    }
    let grouped = reader.query_many(&mixed);
    for (&(s, t), &d) in mixed.iter().zip(&grouped) {
        assert_eq!(d, reader.query(s, t), "grouped({s},{t})");
    }

    let mut group = c.benchmark_group("oracle_api");
    group.throughput(Throughput::Elements(FANOUT as u64));

    group.bench_function(format!("per_pair/{FANOUT}"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &t in &targets {
                acc += reader.query(source, t).unwrap_or(0) as u64;
            }
            black_box(acc)
        });
    });

    group.bench_function(format!("distances_from/{FANOUT}"), |b| {
        b.iter(|| black_box(reader.distances_from(source, &targets)));
    });

    group.bench_function(format!("per_pair_mixed/{FANOUT}"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(s, t) in &mixed {
                acc += reader.query(s, t).unwrap_or(0) as u64;
            }
            black_box(acc)
        });
    });

    group.bench_function(format!("query_many_grouped/{FANOUT}"), |b| {
        b.iter(|| black_box(reader.query_many(&mixed)));
    });

    group.throughput(Throughput::Elements(64));
    group.bench_function("top_k_closest/64", |b| {
        b.iter(|| black_box(reader.top_k_closest(source, 64)));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_config!();
    targets = bench
}
criterion_main!(benches);
