//! Figure 6 (criterion form): amortized update + query cost per batch
//! size, BHL⁺ vs FulFD vs query-only BiBFS.

use batchhl_baselines::{FulFd, OnlineBiBfs};
use batchhl_bench::bench_config;
use batchhl_bench::bench_support::{
    bench_batch, bench_graph, bench_index, bench_queries, BENCH_LANDMARKS,
};
use batchhl_core::index::Algorithm;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

const QUERIES: usize = 200;

fn bench(c: &mut Criterion) {
    let g = bench_graph();
    let pairs = bench_queries(&g, QUERIES);
    let mut group = c.benchmark_group("fig6_update_plus_queries");
    for size in [25usize, 100, 250] {
        let batch = bench_batch(&g, size);
        let bhl = bench_index(&g, Algorithm::BhlPlus, BENCH_LANDMARKS);
        group.bench_with_input(BenchmarkId::new("BHL+ +QT", size), &size, |b, _| {
            b.iter_batched(
                || bhl.clone(),
                |mut idx| {
                    idx.apply_batch(&batch);
                    for &(s, t) in &pairs {
                        black_box(idx.query_dist(s, t));
                    }
                },
                BatchSize::LargeInput,
            )
        });
        let fd = FulFd::build(g.clone(), BENCH_LANDMARKS);
        group.bench_with_input(BenchmarkId::new("FulFD+QT", size), &size, |b, _| {
            b.iter_batched(
                || fd.clone(),
                |mut idx| {
                    idx.apply_batch(&batch);
                    for &(s, t) in &pairs {
                        black_box(idx.query_dist(s, t));
                    }
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("BiBFS", size), &size, |b, _| {
            b.iter_batched(
                || {
                    let mut o = OnlineBiBfs::new(g.clone());
                    o.apply_batch(&batch);
                    o
                },
                |mut idx| {
                    for &(s, t) in &pairs {
                        black_box(idx.query_dist(s, t));
                    }
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_config!();
    targets = bench
}
criterion_main!(benches);
