//! Ablation: the Dial bucket queue (used by search and repair) against
//! `std::collections::BinaryHeap` on the monotone push/pop pattern the
//! algorithms generate (DESIGN.md "Key design decisions").

use batchhl_bench::bench_config;
use batchhl_common::{DialQueue, SplitMix64};
use criterion::{criterion_group, criterion_main, Criterion};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

/// A monotone workload shaped like batch search: a burst of seeds, then
/// pops interleaved with `d+1` pushes.
fn workload() -> Vec<(u32, u32)> {
    let mut rng = SplitMix64::new(7);
    (0..256)
        .map(|i| ((rng.next_u64() % 8) as u32, i as u32))
        .collect()
}

fn bench(c: &mut Criterion) {
    let seeds = workload();
    let mut group = c.benchmark_group("ablation_queue");
    group.bench_function("DialQueue", |b| {
        let mut q = DialQueue::new();
        b.iter(|| {
            q.clear();
            for &(d, v) in &seeds {
                q.push(d, v);
            }
            let mut expansions = 0u32;
            while let Some((d, v)) = q.pop() {
                black_box(v);
                if expansions < 2048 && d < 30 {
                    q.push(d + 1, v ^ 1);
                    expansions += 1;
                }
            }
        })
    });
    group.bench_function("BinaryHeap", |b| {
        b.iter(|| {
            let mut q: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
            for &(d, v) in &seeds {
                q.push(Reverse((d, v)));
            }
            let mut expansions = 0u32;
            while let Some(Reverse((d, v))) = q.pop() {
                black_box(v);
                if expansions < 2048 && d < 30 {
                    q.push(Reverse((d + 1, v ^ 1)));
                    expansions += 1;
                }
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_config!();
    targets = bench
}
criterion_main!(benches);
