//! Sustained serving throughput: per-request dispatch vs coalesced.
//!
//! N client threads pipeline point queries over loopback TCP against a
//! `batchhl-server` (windowed pipelining: each client keeps a fixed
//! number of requests outstanding, so throughput — not round-trip
//! latency — is what's measured). Two server modes over the same
//! workload:
//!
//! * **per-request** — `coalesce: None`: every query is its own worker
//!   job and its own response `write(2)`;
//! * **coalesced** — queries are held for a bounded microbatching
//!   window and drained as one `query_many` job (one worker wakeup,
//!   one generation pin, source-grouped `SourcePlan` reuse) with one
//!   flush per connection per batch.
//!
//! Queries draw their sources from a small hot set (8 vertices), the
//! serving pattern the coalescer's source grouping targets. The
//! second series varies `max_wait_us` at 16 clients — the window is a
//! latency/throughput knob, and on this one-core container the
//! interesting regime is how quickly the window fills, not how long
//! it is allowed to stay open.
//!
//! The load generator is deliberately raw (burst-rendered request
//! lines, one `write(2)` per burst, newline counting on chunked
//! reads): clients share the measurement core with the server, so a
//! full JSON client would dominate the numbers and mask the dispatch
//! difference under test.
//!
//! Results are published in `BENCH_server.json` (acceptance: ≥2×
//! sustained q/s for coalesced over per-request at 16 clients). This
//! bench drives sockets and threads, so it uses its own `main` and
//! wall-clock accounting instead of the criterion harness.

use batchhl::{Oracle, Vertex};
use batchhl_bench::bench_support::{bench_graph, bench_queries, BENCH_LANDMARKS};
use batchhl_server::{CoalesceConfig, Server, ServerConfig};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Outstanding requests per client connection.
const WINDOW: usize = 64;
/// Measurement span per configuration.
const MEASURE: Duration = Duration::from_millis(1500);
/// Hot source set size (coalesced batches group by source).
const HOT_SOURCES: usize = 8;

fn coalesce(max_wait_us: u64) -> CoalesceConfig {
    CoalesceConfig {
        max_wait_us,
        max_batch: 512,
        // The bench measures throughput, not shedding: bounds high
        // enough that admission control never triggers.
        max_pending: 1 << 20,
    }
}

fn start_server(mode: Option<CoalesceConfig>) -> Server {
    let oracle = Oracle::builder()
        .top_degree_landmarks(BENCH_LANDMARKS)
        .build(bench_graph())
        .expect("build oracle");
    Server::start(
        oracle,
        ServerConfig {
            workers: 2,
            max_queue: 1 << 20,
            coalesce: mode,
            node: "bench".to_string(),
            ..ServerConfig::default()
        },
    )
    .expect("start server")
}

/// A load-generator connection: renders request lines into one buffer
/// and writes a whole burst per syscall, then counts newline-terminated
/// responses out of chunked reads. Keeping the generator this cheap is
/// the point — the bench isolates *server-side dispatch* cost, and a
/// full JSON client on the same core would dominate the measurement.
struct RawPipeline {
    stream: TcpStream,
    out: String,
    next_id: u64,
    chunk: [u8; 64 * 1024],
    checked: bool,
}

impl RawPipeline {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        RawPipeline {
            stream,
            out: String::with_capacity(64 * WINDOW),
            next_id: 0,
            chunk: [0u8; 64 * 1024],
            checked: false,
        }
    }

    /// Queue `count` queries and ship them in a single `write(2)`.
    fn send_burst(&mut self, count: usize, mut next: impl FnMut() -> (Vertex, Vertex)) {
        self.out.clear();
        for _ in 0..count {
            let (s, t) = next();
            let id = self.next_id;
            self.next_id += 1;
            writeln!(
                self.out,
                "{{\"op\":\"query\",\"s\":{s},\"t\":{t},\"id\":{id}}}"
            )
            .expect("render request");
        }
        self.stream
            .write_all(self.out.as_bytes())
            .expect("send burst");
    }

    /// Block for the next read and return how many responses it held.
    fn recv_some(&mut self) -> usize {
        let n = self.stream.read(&mut self.chunk).expect("read responses");
        assert!(n > 0, "server closed mid-bench");
        if !self.checked {
            // Spot-check the first chunk only: correctness is the
            // loopback suite's job, the generator just counts lines.
            let text = std::str::from_utf8(&self.chunk[..n]).expect("utf8 responses");
            assert!(
                text.contains("\"dist\""),
                "expected distance responses, got: {text}"
            );
            assert!(!text.contains("\"error\""), "server errored: {text}");
            self.checked = true;
        }
        self.chunk[..n].iter().filter(|&&b| b == b'\n').count()
    }
}

/// Run one configuration; returns sustained queries/second.
fn sustained_qps(clients: usize, mode: Option<CoalesceConfig>) -> f64 {
    let server = start_server(mode);
    let addr = server.addr();
    let graph = bench_graph();
    let pairs = bench_queries(&graph, 4096);
    let sources: Vec<Vertex> = pairs.iter().map(|&(s, _)| s).take(HOT_SOURCES).collect();

    let per_client: Vec<(u64, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|worker| {
                let pairs = &pairs;
                let sources = &sources;
                scope.spawn(move || {
                    let mut pipe = RawPipeline::connect(addr);
                    let mut cursor = worker * 131;
                    let mut next = move || {
                        let (_, t) = pairs[cursor % pairs.len()];
                        let s = sources[cursor % sources.len()];
                        cursor += 1;
                        (s, t)
                    };
                    let started = Instant::now();
                    let mut sent = 0u64;
                    let mut received = 0u64;
                    let mut outstanding = 0usize;
                    let deadline = started + MEASURE;
                    while Instant::now() < deadline {
                        // Refill the window in one burst, then take
                        // whatever responses the next read delivers.
                        let refill = WINDOW - outstanding;
                        if refill > 0 {
                            pipe.send_burst(refill, &mut next);
                            sent += refill as u64;
                            outstanding += refill;
                        }
                        let got = pipe.recv_some();
                        received += got as u64;
                        outstanding -= got;
                    }
                    while received < sent {
                        received += pipe.recv_some() as u64;
                    }
                    (received, started.elapsed())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let total: u64 = per_client.iter().map(|&(n, _)| n).sum();
    let longest = per_client.iter().map(|&(_, d)| d).max().unwrap_or(MEASURE);
    total as f64 / longest.as_secs_f64()
}

fn main() {
    println!(
        "server coalescing: sustained q/s over loopback TCP \
         (windowed pipelining, {WINDOW} outstanding per client, hot set of {HOT_SOURCES} sources)"
    );
    println!();
    println!("dispatch mode, varying client threads (coalesce window 200us / batch 512):");
    for clients in [1usize, 4, 16] {
        let per_request = sustained_qps(clients, None);
        let coalesced = sustained_qps(clients, Some(coalesce(200)));
        println!(
            "  {clients:>2} clients: per-request {per_request:>9.0} q/s | coalesced {coalesced:>9.0} q/s | {:>5.2}x",
            coalesced / per_request
        );
    }
    println!();
    println!("coalescing window, 16 clients:");
    for max_wait_us in [50u64, 200, 1000] {
        let coalesced = sustained_qps(16, Some(coalesce(max_wait_us)));
        println!("  max_wait_us {max_wait_us:>5}: {coalesced:>9.0} q/s");
    }
}
