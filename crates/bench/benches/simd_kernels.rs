//! SIMD vs scalar min-plus kernels on the bench graph's real packed
//! data: the dense `accumulate_via` highway-row scan, the sparse
//! `gather_min` target pricing, and the end-to-end Eq. 3 plan-and-price
//! (one `SourcePlan` + 256 `bound_to` calls) against the dense
//! `upper_bound_dense` double loop.
//!
//! The dispatched side reflects this CPU (`active_kernel()` is printed
//! by the group names); the scalar side is the portable fallback, so
//! the gap is exactly what runtime feature detection buys.

use batchhl_bench::bench_config;
use batchhl_bench::bench_support::{bench_graph, bench_index, bench_queries, BENCH_LANDMARKS};
use batchhl_core::index::Algorithm;
use batchhl_hcl::kernel::{
    accumulate_via, accumulate_via_scalar, gather_min, gather_min_scalar, CLAMP_INF,
};
use batchhl_hcl::{active_kernel, SourcePlan};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = bench_graph();
    let pairs = bench_queries(&g, 256);
    let index = bench_index(&g, Algorithm::BhlPlus, BENCH_LANDMARKS);
    let lab = index.labelling();
    let packed = lab.packed();
    let kernel = active_kernel().name();

    // Primitive 1: dense accumulate over every highway row (the
    // SourcePlan fill pattern), via scratch exactly as queries use it.
    let r = lab.num_landmarks();
    let mut via = vec![CLAMP_INF; r];
    let mut group = c.benchmark_group("simd_accumulate_via");
    group.bench_function(kernel, |b| {
        b.iter(|| {
            via.fill(CLAMP_INF);
            for i in 0..r {
                accumulate_via(&mut via, (i as u32) % 7, packed.highway.row(i));
            }
            black_box(via[r - 1]);
        })
    });
    group.bench_function("scalar", |b| {
        b.iter(|| {
            via.fill(CLAMP_INF);
            for i in 0..r {
                accumulate_via_scalar(&mut via, (i as u32) % 7, packed.highway.row(i));
            }
            black_box(via[r - 1]);
        })
    });
    group.finish();

    // Primitive 2: sparse gather over the packed label rows of the 256
    // bench targets (the per-target Eq. 3 pricing).
    let via = vec![3u32; r];
    let targets: Vec<_> = pairs.iter().map(|&(_, t)| t).collect();
    let mut group = c.benchmark_group("simd_gather_min");
    group.throughput(criterion::Throughput::Elements(targets.len() as u64));
    group.bench_function(kernel, |b| {
        b.iter(|| {
            for &t in &targets {
                let row = packed.labels.row(t);
                black_box(gather_min(&via, row.ids, row.dists));
            }
        })
    });
    group.bench_function("scalar", |b| {
        b.iter(|| {
            for &t in &targets {
                let row = packed.labels.row(t);
                black_box(gather_min_scalar(&via, row.ids, row.dists));
            }
        })
    });
    group.finish();

    // Long rows, where the hardware gather pays off (real bench-graph
    // rows average ~5 entries and dispatch below GATHER_SIMD_MIN_LEN,
    // so this group drives the AVX2 gather path directly).
    let long_r = 256usize;
    let long_via: Vec<u32> = (0..long_r as u32).map(|i| 3 + (i * 7) % 50).collect();
    let long_ids: Vec<u16> = (0..long_r as u16).collect();
    let long_d8: Vec<u8> = (0..long_r as u32).map(|i| (1 + i % 200) as u8).collect();
    let long_row = batchhl_hcl::packed::NarrowSlice::U8(&long_d8);
    let mut group = c.benchmark_group("simd_gather_min_long_row");
    group.throughput(criterion::Throughput::Elements(long_r as u64));
    group.bench_function(kernel, |b| {
        b.iter(|| black_box(gather_min(&long_via, &long_ids, long_row)))
    });
    group.bench_function("scalar", |b| {
        b.iter(|| black_box(gather_min_scalar(&long_via, &long_ids, long_row)))
    });
    group.finish();

    // End-to-end Eq. 3: plan + price 256 pairs through the packed
    // kernels vs the pre-packed dense double loop.
    let mut group = c.benchmark_group("simd_eq3_bound");
    group.throughput(criterion::Throughput::Elements(pairs.len() as u64));
    group.bench_function(format!("packed_{kernel}"), |b| {
        b.iter(|| {
            for &(s, t) in &pairs {
                let plan = SourcePlan::new(lab, lab, s);
                black_box(plan.bound_to(lab, t));
            }
        })
    });
    group.bench_function("dense_loop", |b| {
        b.iter(|| {
            for &(s, t) in &pairs {
                black_box(lab.upper_bound_dense(s, t));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_config!();
    targets = bench
}
criterion_main!(benches);
