//! Table 4, QT column (criterion form): distance query time —
//! BHL⁺ vs FulFD vs FulPLL vs BiBFS, 256 random pairs per iteration.

use batchhl_baselines::{FulFd, OnlineBiBfs, PllIndex};
use batchhl_bench::bench_config;
use batchhl_bench::bench_support::{bench_graph, bench_index, bench_queries, BENCH_LANDMARKS};
use batchhl_core::index::Algorithm;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = bench_graph();
    let pairs = bench_queries(&g, 256);
    let mut group = c.benchmark_group("table4_query");
    group.throughput(criterion::Throughput::Elements(pairs.len() as u64));

    let mut bhl = bench_index(&g, Algorithm::BhlPlus, BENCH_LANDMARKS);
    group.bench_function("BHL+", |b| {
        b.iter(|| {
            for &(s, t) in &pairs {
                black_box(bhl.query_dist(s, t));
            }
        })
    });
    let mut fd = FulFd::build(g.clone(), BENCH_LANDMARKS);
    group.bench_function("FulFD", |b| {
        b.iter(|| {
            for &(s, t) in &pairs {
                black_box(fd.query_dist(s, t));
            }
        })
    });
    let pll = PllIndex::build(&g);
    group.bench_function("FulPLL", |b| {
        b.iter(|| {
            for &(s, t) in &pairs {
                black_box(pll.query(s, t));
            }
        })
    });
    let mut bibfs = OnlineBiBfs::new(g.clone());
    group.bench_function("BiBFS", |b| {
        b.iter(|| {
            for &(s, t) in &pairs {
                black_box(bibfs.query_dist(s, t));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_config!();
    targets = bench
}
criterion_main!(benches);
