//! Ablation: the epoch-stamped old-distance cache against recomputing
//! `d^L_G(r, v)` from the labelling on every lookup (the optimization
//! that lets Algorithm 4 drop the `l` factor — Section 5.4).

use batchhl_bench::bench_config;
use batchhl_bench::bench_support::{bench_graph, BENCH_LANDMARKS};
use batchhl_common::EpochCache;
use batchhl_core::workspace::dl_old;
use batchhl_hcl::{build_labelling, LandmarkSelection};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = bench_graph();
    let lab =
        build_labelling(&g, LandmarkSelection::TopDegree(BENCH_LANDMARKS).select(&g)).unwrap();
    let n = g.num_vertices() as u32;
    // Access pattern shaped like repair: every vertex a handful of
    // times (once per incident edge).
    let accesses: Vec<u32> = (0..4 * n).map(|i| (i * 2654435761) % n).collect();
    let mut group = c.benchmark_group("ablation_dl_cache");
    group.bench_function("uncached_landmark_dist", |b| {
        b.iter(|| {
            for &v in &accesses {
                black_box(lab.landmark_dist(0, v));
            }
        })
    });
    group.bench_function("epoch_cached", |b| {
        let mut cache = EpochCache::new(n as usize);
        b.iter(|| {
            cache.clear();
            for &v in &accesses {
                black_box(dl_old(&lab, 0, v, &mut cache));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_config!();
    targets = bench
}
criterion_main!(benches);
