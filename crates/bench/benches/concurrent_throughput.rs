//! Mixed read/write throughput: queries/sec sustained by N reader
//! threads over `Reader` handles while the writer applies batches.
//!
//! This is the serving scenario the generation store exists for — the
//! paper's Table 3/4 benches measure update and query latency in
//! isolation; here they contend. Three series:
//!
//! * `read_only/N` — N reader threads, idle writer (baseline);
//! * `mixed/N` — N reader threads while the writer applies a batch and
//!   its inverse per round (the graph round-trips, so every iteration
//!   measures the same workload);
//! * `write_only` — the writer alone, for the update-cost baseline.
//!
//! The `csr_ablation` group isolates the representation change behind
//! those numbers: the same labelling and query pairs are answered over
//! the published CSR view and over the dynamic `Vec<Vec<_>>` adjacency,
//! and the two publication-path costs — freezing one batch into the
//! delta overlay vs compacting the whole graph into a fresh base CSR —
//! are measured rather than asserted.

use batchhl_bench::bench_config;
use batchhl_bench::bench_support::{bench_batch, bench_graph, bench_queries, BENCH_LANDMARKS};
use batchhl_core::index::{Algorithm, BatchIndex, IndexConfig};
use batchhl_graph::csr::CsrGraph;
use batchhl_hcl::{LandmarkSelection, QueryEngine};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const QUERIES_PER_THREAD: usize = 256;
const BATCH_SIZE: usize = 100;

fn build_index() -> BatchIndex {
    BatchIndex::build(
        bench_graph(),
        IndexConfig {
            selection: LandmarkSelection::TopDegree(BENCH_LANDMARKS),
            algorithm: Algorithm::BhlPlus,
            threads: 1,
            ..IndexConfig::default()
        },
    )
}

fn bench(c: &mut Criterion) {
    let mut index = build_index();
    let pairs = bench_queries(index.graph(), QUERIES_PER_THREAD);
    let batch = bench_batch(index.graph(), BATCH_SIZE);
    let inverse = batch.normalize(index.graph()).inverse();

    let mut group = c.benchmark_group("concurrent_throughput");

    for readers in [1, 2, 4] {
        group.throughput(Throughput::Elements((readers * pairs.len()) as u64));
        group.bench_with_input(
            BenchmarkId::new("read_only", readers),
            &readers,
            |b, &readers| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for _ in 0..readers {
                            let mut reader = index.reader();
                            let pairs = &pairs;
                            scope.spawn(move || {
                                for &(s, t) in pairs {
                                    black_box(reader.query_dist(s, t));
                                }
                            });
                        }
                    });
                });
            },
        );
    }

    for readers in [1, 2, 4] {
        group.throughput(Throughput::Elements((readers * pairs.len()) as u64));
        group.bench_with_input(
            BenchmarkId::new("mixed", readers),
            &readers,
            |b, &readers| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for _ in 0..readers {
                            let mut reader = index.reader();
                            let pairs = &pairs;
                            scope.spawn(move || {
                                for &(s, t) in pairs {
                                    black_box(reader.query_dist(s, t));
                                }
                            });
                        }
                        // Writer churns on the scope's main thread: one
                        // batch out, one batch back.
                        index.apply_batch(&batch);
                        index.apply_batch(&inverse);
                    });
                });
            },
        );
    }

    group.throughput(Throughput::Elements(2));
    group.bench_function("write_only", |b| {
        b.iter(|| {
            black_box(index.apply_batch(&batch));
            black_box(index.apply_batch(&inverse));
        });
    });

    group.finish();

    // CSR vs dynamic-adjacency ablation: identical labelling and query
    // pairs, only the traversal representation differs.
    let published = index.published();
    let n = published.graph.num_vertices();
    let mut group = c.benchmark_group("csr_ablation");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    group.bench_function("query_csr_view", |b| {
        let mut engine = QueryEngine::new(n);
        b.iter(|| {
            for &(s, t) in &pairs {
                black_box(engine.query_dist(&published.lab, &published.view, s, t));
            }
        });
    });
    group.bench_function("query_dynamic_adjacency", |b| {
        let mut engine = QueryEngine::new(n);
        b.iter(|| {
            for &(s, t) in &pairs {
                black_box(engine.query_dist(&published.lab, &published.graph, s, t));
            }
        });
    });

    // Publication-path costs. `overlay_absorb` is what every batch
    // pays; `compact_full` is the amortized worst case the compaction
    // threshold schedules.
    let norm = batch.normalize(&published.graph);
    let touched = norm.touched_vertices();
    group.throughput(Throughput::Elements(1));
    group.bench_function("overlay_absorb", |b| {
        b.iter_batched_ref(
            || published.view.clone(),
            |view| {
                view.absorb(n, touched.iter().copied(), |v| published.graph.neighbors(v));
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("compact_full", |b| {
        b.iter(|| black_box(CsrGraph::from_adjacency(&published.graph)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_config!();
    targets = bench
}
criterion_main!(benches);
