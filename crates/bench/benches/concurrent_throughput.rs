//! Mixed read/write throughput: queries/sec sustained by N reader
//! threads over `Reader` handles while the writer applies batches.
//!
//! This is the serving scenario the generation store exists for — the
//! paper's Table 3/4 benches measure update and query latency in
//! isolation; here they contend. Three series:
//!
//! * `read_only/N` — N reader threads, idle writer (baseline);
//! * `mixed/N` — N reader threads while the writer applies a batch and
//!   its inverse per round (the graph round-trips, so every iteration
//!   measures the same workload);
//! * `write_only` — the writer alone, for the update-cost baseline.

use batchhl_bench::bench_config;
use batchhl_bench::bench_support::{bench_batch, bench_graph, bench_queries, BENCH_LANDMARKS};
use batchhl_core::index::{Algorithm, BatchIndex, IndexConfig};
use batchhl_hcl::LandmarkSelection;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const QUERIES_PER_THREAD: usize = 256;
const BATCH_SIZE: usize = 100;

fn build_index() -> BatchIndex {
    BatchIndex::build(
        bench_graph(),
        IndexConfig {
            selection: LandmarkSelection::TopDegree(BENCH_LANDMARKS),
            algorithm: Algorithm::BhlPlus,
            threads: 1,
        },
    )
}

fn bench(c: &mut Criterion) {
    let mut index = build_index();
    let pairs = bench_queries(index.graph(), QUERIES_PER_THREAD);
    let batch = bench_batch(index.graph(), BATCH_SIZE);
    let inverse = batch.normalize(index.graph()).inverse();

    let mut group = c.benchmark_group("concurrent_throughput");

    for readers in [1, 2, 4] {
        group.throughput(Throughput::Elements((readers * pairs.len()) as u64));
        group.bench_with_input(
            BenchmarkId::new("read_only", readers),
            &readers,
            |b, &readers| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for _ in 0..readers {
                            let mut reader = index.reader();
                            let pairs = &pairs;
                            scope.spawn(move || {
                                for &(s, t) in pairs {
                                    black_box(reader.query_dist(s, t));
                                }
                            });
                        }
                    });
                });
            },
        );
    }

    for readers in [1, 2, 4] {
        group.throughput(Throughput::Elements((readers * pairs.len()) as u64));
        group.bench_with_input(
            BenchmarkId::new("mixed", readers),
            &readers,
            |b, &readers| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for _ in 0..readers {
                            let mut reader = index.reader();
                            let pairs = &pairs;
                            scope.spawn(move || {
                                for &(s, t) in pairs {
                                    black_box(reader.query_dist(s, t));
                                }
                            });
                        }
                        // Writer churns on the scope's main thread: one
                        // batch out, one batch back.
                        index.apply_batch(&batch);
                        index.apply_batch(&inverse);
                    });
                });
            },
        );
    }

    group.throughput(Throughput::Elements(2));
    group.bench_function("write_only", |b| {
        b.iter(|| {
            black_box(index.apply_batch(&batch));
            black_box(index.apply_batch(&inverse));
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_config!();
    targets = bench
}
criterion_main!(benches);
