//! Table 4: construction time (CT), query time (QT) and labelling size
//! (LS) — BHL⁺ vs FulFD, FulPLL and PSL\*. Query times are averaged
//! over the scale's query sample on the graph *after* the fully-dynamic
//! batches were applied; PLL-family methods get the context's time
//! budget and print DNF beyond it (the paper's "-" entries).

use super::ExpContext;
use crate::datasets::dataset;
use crate::measure::{fmt_bytes, fmt_duration, time, Table};
use crate::workload::{fully_dynamic_batches, query_pairs};
use batchhl_baselines::{build_psl_with_deadline, FulFd, FulPll};
use batchhl_core::index::Algorithm;

pub fn run(ctx: &ExpContext) {
    println!(
        "== Table 4: construction time / query time / labelling size ({} queries) ==",
        ctx.scale.query_count()
    );
    let mut table = Table::new(&[
        "Dataset",
        "CT BHL+",
        "CT FulFD",
        "CT FulPLL",
        "CT PSL*",
        "QT BHL+",
        "QT FulFD",
        "QT FulPLL",
        "QT PSL*",
        "LS BHL+",
        "LS FulFD",
        "LS FulPLL",
        "LS PSL*",
    ]);
    for name in ctx.static_datasets() {
        let g = dataset(name, ctx.scale);
        let batches = fully_dynamic_batches(&g, ctx.workload());
        let pairs = query_pairs(&g, ctx.scale.query_count(), ctx.seed);

        // BHL+ — construction, then updates, then queries.
        let (mut bhl, ct_bhl) = time(|| ctx.index(g.clone(), Algorithm::BhlPlus, 1));
        for b in &batches {
            bhl.apply_batch(b);
        }
        let (_, qt_bhl) = time(|| {
            for &(s, t) in &pairs {
                std::hint::black_box(bhl.query_dist(s, t));
            }
        });
        let ls_bhl = bhl.labelling().size_bytes();

        // FulFD.
        let (mut fd, ct_fd) = time(|| FulFd::build(g.clone(), ctx.landmarks));
        for b in &batches {
            fd.apply_batch(b);
        }
        let (_, qt_fd) = time(|| {
            for &(s, t) in &pairs {
                std::hint::black_box(fd.query_dist(s, t));
            }
        });
        let ls_fd = fd.size_bytes();

        // FulPLL (budgeted; applies batches single-update).
        let (pll_res, ct_pll) =
            time(|| FulPll::build_with_deadline(g.clone(), Some(ctx.deadline())));
        let mut qt_pll = None;
        let mut ls_pll = None;
        let ct_pll_str = match pll_res {
            None => "DNF".to_string(),
            Some(mut pll) => {
                let deadline = ctx.deadline();
                let mut dnf = false;
                'outer: for b in &batches {
                    for &u in b.updates() {
                        pll.apply_update(u);
                        if std::time::Instant::now() > deadline {
                            dnf = true;
                            break 'outer;
                        }
                    }
                }
                if !dnf {
                    let (_, qt) = time(|| {
                        for &(s, t) in &pairs {
                            std::hint::black_box(pll.query_dist(s, t));
                        }
                    });
                    qt_pll = Some(qt);
                    ls_pll = Some(pll.size_bytes());
                }
                fmt_duration(ct_pll)
            }
        };

        // PSL* (static construction only, budgeted).
        let (psl_res, ct_psl) =
            time(|| build_psl_with_deadline(&g, ctx.threads, Some(ctx.deadline())));
        let (ct_psl_str, qt_psl, ls_psl) = match psl_res {
            None => ("DNF".to_string(), None, None),
            Some(labels) => {
                let (_, qt) = time(|| {
                    for &(s, t) in &pairs {
                        std::hint::black_box(labels.query(s, t));
                    }
                });
                (fmt_duration(ct_psl), Some(qt), Some(labels.size_bytes()))
            }
        };

        let per_query = |d: std::time::Duration| fmt_duration(d / pairs.len() as u32);
        table.row(vec![
            name.to_string(),
            fmt_duration(ct_bhl),
            fmt_duration(ct_fd),
            ct_pll_str,
            ct_psl_str,
            per_query(qt_bhl),
            per_query(qt_fd),
            qt_pll.map(per_query).unwrap_or_else(|| "-".into()),
            qt_psl.map(per_query).unwrap_or_else(|| "-".into()),
            fmt_bytes(ls_bhl),
            fmt_bytes(ls_fd),
            ls_pll.map(fmt_bytes).unwrap_or_else(|| "-".into()),
            ls_psl.map(fmt_bytes).unwrap_or_else(|| "-".into()),
        ]);
    }
    print!("{}", table.render());
}
