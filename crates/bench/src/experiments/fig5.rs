//! Figure 5: distance distribution of batch updates — how far apart the
//! endpoints of the sampled batch edges are once those edges are
//! deleted (small distances ⇒ updates hit densely connected regions).

use super::ExpContext;
use crate::datasets::dataset;
use crate::measure::Table;
use crate::workload::{distance_distribution, sample_edge_batches, DISTANCE_BUCKETS};

pub fn run(ctx: &ExpContext) {
    println!("== Figure 5: distance distribution of batch updates ==");
    let mut header = vec!["Dataset"];
    header.extend_from_slice(DISTANCE_BUCKETS);
    let mut table = Table::new(&header);
    for name in ctx.static_datasets() {
        let g = dataset(name, ctx.scale);
        let batches = sample_edge_batches(&g, ctx.workload());
        let all: Vec<_> = batches.into_iter().flatten().collect();
        let hist = distance_distribution(&g, &all);
        let total: usize = hist.iter().sum::<usize>().max(1);
        let mut cells = vec![name.to_string()];
        cells.extend(
            hist.iter()
                .map(|&c| format!("{:.1}%", 100.0 * c as f64 / total as f64)),
        );
        table.row(cells);
    }
    print!("{}", table.render());
}
