//! Figure 2: number of vertices affected by batch updates of varying
//! sizes (BHL⁺, BHL, BHLₛ vs the single-update UHL), on the Indochina-
//! and Twitter-like datasets.

use super::ExpContext;
use crate::datasets::dataset;
use crate::measure::Table;
use crate::workload::{fully_dynamic_batches, WorkloadConfig};
use batchhl_core::index::Algorithm;

/// Batch sizes relative to the scale's default (the paper sweeps
/// 500 … 10000 around its default of 1000).
pub const SIZE_FACTORS: &[f64] = &[0.5, 2.5, 5.0, 7.5, 10.0];

pub fn run(ctx: &ExpContext) {
    println!("== Figure 2: affected vertices vs batch size ==");
    for name in ["indochina", "twitter"] {
        if !ctx.static_datasets().contains(&name) {
            continue;
        }
        let g = dataset(name, ctx.scale);
        println!(
            "-- {name}: |V|={} |E|={} (affected = Σ over {} landmarks; % of |V|)",
            g.num_vertices(),
            g.num_edges(),
            ctx.landmarks
        );
        let mut table = Table::new(&[
            "BatchSize",
            "BHL+",
            "BHL+%",
            "BHL",
            "BHL%",
            "BHLs",
            "BHLs%",
            "UHL",
            "UHL%",
        ]);
        for &f in SIZE_FACTORS {
            let size = ((ctx.scale.batch_size() as f64 * f) as usize).max(2);
            let cfg = WorkloadConfig::new(3, size, ctx.seed);
            let batches = fully_dynamic_batches(&g, cfg);
            let mut cells = vec![size.to_string()];
            for alg in [
                Algorithm::BhlPlus,
                Algorithm::Bhl,
                Algorithm::BhlS,
                Algorithm::Uhl,
            ] {
                let mut index = ctx.index(g.clone(), alg, 1);
                let mut affected = 0usize;
                for b in &batches {
                    affected += index.apply_batch(b).affected_total;
                }
                let avg = affected as f64 / batches.len() as f64;
                cells.push(format!("{avg:.0}"));
                cells.push(format!(
                    "{:.1}%",
                    100.0 * avg / (g.num_vertices() * ctx.landmarks) as f64
                ));
            }
            table.row(cells);
        }
        print!("{}", table.render());
    }
}
