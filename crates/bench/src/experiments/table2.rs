//! Table 2: summary of datasets.

use super::ExpContext;
use crate::datasets::{dataset, dataset_kind};
use crate::measure::Table;

pub fn run(ctx: &ExpContext) {
    println!(
        "== Table 2: summary of datasets (stand-ins, scale {:?}) ==",
        ctx.scale
    );
    let mut table = Table::new(&["Dataset", "Type", "|V|", "|E|", "avg. deg", "max. deg"]);
    for name in ctx
        .static_datasets()
        .into_iter()
        .chain(ctx.dynamic_datasets())
    {
        let g = dataset(name, ctx.scale);
        table.row(vec![
            name.to_string(),
            dataset_kind(name).to_string(),
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            format!("{:.3}", g.avg_degree()),
            g.max_degree().to_string(),
        ]);
    }
    print!("{}", table.render());
}
