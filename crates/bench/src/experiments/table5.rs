//! Table 5: average number of vertices affected per batch —
//! BHL⁺ under deletions / additions / mixed batches, and BHL under
//! mixed batches (the gap between the last two is the payoff of the
//! improved search).

use super::ExpContext;
use crate::datasets::{dataset, stream};
use crate::measure::Table;
use crate::workload::{decremental_batches, fully_dynamic_batches, incremental_batches};
use batchhl_core::index::Algorithm;
use batchhl_graph::{Batch, DynamicGraph};

fn avg_affected(
    ctx: &ExpContext,
    g: &DynamicGraph,
    algorithm: Algorithm,
    batches: &[Batch],
) -> f64 {
    let mut index = ctx.index(g.clone(), algorithm, 1);
    let mut total = 0usize;
    for b in batches {
        total += index.apply_batch(b).affected_total;
    }
    total as f64 / batches.len() as f64
}

pub fn run(ctx: &ExpContext) {
    println!("== Table 5: average affected vertices per batch ==");
    let mut table = Table::new(&["Dataset", "BHL+ Delete", "BHL+ Add", "BHL+ Mix", "BHL Mix"]);
    for name in ctx.static_datasets() {
        let g = dataset(name, ctx.scale);
        let dels = decremental_batches(&g, ctx.workload());
        let del_avg = avg_affected(ctx, &g, Algorithm::BhlPlus, &dels);
        // Additions start from the graph with the sample removed.
        let mut base = g.clone();
        for b in &dels {
            base.apply_batch(b);
        }
        let adds = incremental_batches(&g, ctx.workload());
        let add_avg = avg_affected(ctx, &base, Algorithm::BhlPlus, &adds);
        let mix = fully_dynamic_batches(&g, ctx.workload());
        let mix_plus = avg_affected(ctx, &g, Algorithm::BhlPlus, &mix);
        let mix_basic = avg_affected(ctx, &g, Algorithm::Bhl, &mix);
        table.row(vec![
            name.to_string(),
            format!("{del_avg:.0}"),
            format!("{add_avg:.0}"),
            format!("{mix_plus:.0}"),
            format!("{mix_basic:.0}"),
        ]);
    }
    for name in ctx.dynamic_datasets() {
        let s = stream(name, ctx.scale);
        let batches: Vec<Batch> = s
            .batches(ctx.scale.batch_size())
            .into_iter()
            .take(10)
            .collect();
        let mix_plus = avg_affected(ctx, &s.initial, Algorithm::BhlPlus, &batches);
        let mix_basic = avg_affected(ctx, &s.initial, Algorithm::Bhl, &batches);
        table.row(vec![
            name.to_string(),
            "-".into(),
            "-".into(),
            format!("{mix_plus:.0}"),
            format!("{mix_basic:.0}"),
        ]);
    }
    print!("{}", table.render());
}
