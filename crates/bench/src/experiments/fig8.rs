//! Figure 8: query time under 10–50 landmarks (after the fully-dynamic
//! batches were applied, as in the paper).

use super::ExpContext;
use crate::datasets::dataset;
use crate::measure::{fmt_duration, time, Table};
use crate::workload::{fully_dynamic_batches, query_pairs};
use batchhl_core::index::{Algorithm, BatchIndex, IndexConfig};
use batchhl_hcl::LandmarkSelection;

pub const LANDMARK_COUNTS: &[usize] = &[10, 20, 30, 40, 50];

pub fn run(ctx: &ExpContext) {
    println!(
        "== Figure 8: BHL+ query time under 10-50 landmarks ({} queries) ==",
        ctx.scale.query_count()
    );
    let mut header = vec!["Dataset".to_string()];
    header.extend(LANDMARK_COUNTS.iter().map(|k| format!("R={k}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for name in ctx.static_datasets() {
        let g = dataset(name, ctx.scale);
        let batches = fully_dynamic_batches(&g, ctx.workload());
        let pairs = query_pairs(&g, ctx.scale.query_count(), ctx.seed);
        let mut cells = vec![name.to_string()];
        for &k in LANDMARK_COUNTS {
            let mut index = BatchIndex::build(
                g.clone(),
                IndexConfig {
                    selection: LandmarkSelection::TopDegree(k),
                    algorithm: Algorithm::BhlPlus,
                    threads: 1,
                    ..IndexConfig::default()
                },
            );
            for b in &batches {
                index.apply_batch(b);
            }
            let (_, qt) = time(|| {
                for &(s, t) in &pairs {
                    std::hint::black_box(index.query_dist(s, t));
                }
            });
            cells.push(fmt_duration(qt / pairs.len() as u32));
        }
        table.row(cells);
    }
    print!("{}", table.render());
}
