//! Label-memory report: resident bytes of the dense canonical label
//! rows versus the packed query mirror (`batchhl_hcl::packed`).
//!
//! The dense layout costs `4·|R|` bytes per vertex regardless of how
//! many labels the vertex actually has; the packed CSR costs ~3 bytes
//! per *logical* entry (u16 landmark id + width-narrowed distance) plus
//! per-vertex overhead. This report prints both, the compression ratio,
//! and the narrowed highway width — the memory half of the packed-
//! storage evaluation (the latency half lives in the Criterion groups).

use super::ExpContext;
use crate::datasets::dataset;
use crate::measure::Table;
use batchhl_core::index::Algorithm;
use batchhl_hcl::active_kernel;

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KiB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

pub fn run(ctx: &ExpContext) {
    println!(
        "== Label memory: dense rows vs packed mirror (kernel: {}) ==",
        active_kernel().name()
    );
    let mut table = Table::new(&[
        "Dataset",
        "Entries",
        "Dense",
        "Packed",
        "Ratio",
        "B/entry dense",
        "B/entry packed",
        "HW width",
    ]);
    for name in ctx.static_datasets() {
        let g = dataset(name, ctx.scale);
        let index = ctx.index(g, Algorithm::BhlPlus, 1);
        let lab = index.labelling();
        let packed = lab.packed();
        let entries = packed.labels.num_entries();
        let dense = lab.dense_resident_bytes();
        let compact = packed.resident_bytes();
        table.row(vec![
            name.to_string(),
            entries.to_string(),
            human(dense),
            human(compact),
            format!("{:.2}x", dense as f64 / compact as f64),
            format!("{:.2}", dense as f64 / entries as f64),
            format!("{:.2}", compact as f64 / entries as f64),
            format!("u{}", 8 * packed.highway.width()),
        ]);
    }
    print!("{}", table.render());
}
