//! Table 6: directed graphs — update time (BHLₚ, BHL⁺, BHL),
//! construction time, query time and labelling size. The paper uses
//! directed versions of Wikitalk, Enwiki, Livejournal and Twitter; we
//! orient the corresponding stand-ins (30% of edges bidirectional).

use super::ExpContext;
use crate::datasets::dataset;
use crate::measure::{fmt_bytes, fmt_duration, time, Table};
use batchhl_core::directed::DirectedBatchIndex;
use batchhl_core::index::{Algorithm, IndexConfig};
use batchhl_graph::generators::orient_randomly;
use batchhl_graph::{Batch, DynamicDiGraph, Vertex};
use batchhl_hcl::LandmarkSelection;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

pub const DIRECTED_DATASETS: &[&str] = &["wikitalk", "enwiki", "livejournal", "twitter"];

/// Fully-dynamic directed batches: 50% deletions of existing arcs, 50%
/// fresh arcs, valid in sequence.
fn directed_batches(g: &DynamicDiGraph, num: usize, size: usize, seed: u64) -> Vec<Batch> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1D1);
    let mut shadow = g.clone();
    let n = g.num_vertices() as Vertex;
    let mut out = Vec::with_capacity(num);
    for _ in 0..num {
        let mut batch = Batch::new();
        let mut arcs: Vec<(Vertex, Vertex)> = shadow.edges().collect();
        arcs.shuffle(&mut rng);
        for &(a, b) in arcs.iter().take(size / 2) {
            shadow.remove_edge(a, b);
            batch.delete(a, b);
        }
        let mut added = 0;
        while added < size - size / 2 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && shadow.insert_edge(a, b) {
                batch.insert(a, b);
                added += 1;
            }
        }
        out.push(batch);
    }
    out
}

pub fn run(ctx: &ExpContext) {
    println!("== Table 6: directed graphs ==");
    let mut table = Table::new(&["Dataset", "BHLp", "BHL+", "BHL", "CT", "QT", "LS"]);
    for name in DIRECTED_DATASETS {
        if !ctx.static_datasets().contains(name) {
            continue;
        }
        let und = dataset(name, ctx.scale);
        let g = orient_randomly(&und, 0.3, ctx.seed ^ 0x66);
        let batches = directed_batches(&g, 10, ctx.scale.batch_size(), ctx.seed);
        let cfg = |alg: Algorithm, threads: usize| IndexConfig {
            selection: LandmarkSelection::TopDegree(ctx.landmarks),
            algorithm: alg,
            threads,
            ..IndexConfig::default()
        };
        let mut cells = vec![name.to_string()];
        for (alg, threads) in [
            (Algorithm::BhlPlus, ctx.threads),
            (Algorithm::BhlPlus, 1),
            (Algorithm::Bhl, 1),
        ] {
            let mut index = DirectedBatchIndex::build(g.clone(), cfg(alg, threads));
            let (_, total) = time(|| {
                for b in &batches {
                    index.apply_batch(b);
                }
            });
            cells.push(fmt_duration(total / batches.len() as u32));
        }
        // CT / QT / LS on the BHL+ sequential index.
        let (mut index, ct) =
            time(|| DirectedBatchIndex::build(g.clone(), cfg(Algorithm::BhlPlus, 1)));
        for b in &batches {
            index.apply_batch(b);
        }
        let pairs = crate::workload::query_pairs(&und, ctx.scale.query_count(), ctx.seed);
        let (_, qt) = time(|| {
            for &(s, t) in &pairs {
                std::hint::black_box(index.query_dist(s, t));
            }
        });
        cells.push(fmt_duration(ct));
        cells.push(fmt_duration(qt / pairs.len() as u32));
        cells.push(fmt_bytes(index.size_bytes()));
        table.row(cells);
    }
    print!("{}", table.render());
}
