//! Table 3: update time in the fully-dynamic, incremental and
//! decremental settings — our variants (BHLₚ, BHL⁺, BHL, UHL⁺) against
//! FulFD and FulPLL (the latter with a time budget: the paper's own
//! FulPLL entries are missing on 8 of 12 datasets).
//!
//! Reported numbers are seconds per batch (the paper's "update time
//! reported for every method is for 1,000 updates" — here for the
//! scale-adjusted batch size).

use super::{variant_name, ExpContext};
use crate::datasets::{dataset, stream, PLL_FRIENDLY};
use crate::measure::{fmt_duration, time, Table};
use crate::workload::{decremental_batches, fully_dynamic_batches, incremental_batches};
use batchhl_baselines::{FulFd, FulPll};
use batchhl_core::index::Algorithm;
use batchhl_graph::{Batch, DynamicGraph};
use std::time::Duration;

pub fn run(ctx: &ExpContext) {
    println!(
        "== Table 3: batch update time (batch size {} × 10 batches; avg per batch) ==",
        ctx.scale.batch_size()
    );
    fully_dynamic(ctx);
    incremental(ctx);
    decremental(ctx);
    dynamic_streams(ctx);
}

fn variant_columns() -> Vec<(&'static str, Algorithm, bool)> {
    vec![
        ("BHLp", Algorithm::BhlPlus, true),
        ("BHL+", Algorithm::BhlPlus, false),
        ("BHL", Algorithm::Bhl, false),
        ("UHL+", Algorithm::UhlPlus, false),
    ]
}

/// Average per-batch time of a BatchHL variant over a batch sequence.
fn run_variant(
    ctx: &ExpContext,
    g: &DynamicGraph,
    algorithm: Algorithm,
    parallel: bool,
    batches: &[Batch],
) -> Duration {
    let threads = if parallel { ctx.threads } else { 1 };
    let mut index = ctx.index(g.clone(), algorithm, threads);
    let (_, total) = time(|| {
        for b in batches {
            index.apply_batch(b);
        }
    });
    total / batches.len() as u32
}

/// FulFD average per-batch time (single-update internally).
fn run_fulfd(ctx: &ExpContext, g: &DynamicGraph, batches: &[Batch]) -> Duration {
    let mut idx = FulFd::build(g.clone(), ctx.landmarks);
    let (_, total) = time(|| {
        for b in batches {
            idx.apply_batch(b);
        }
    });
    total / batches.len() as u32
}

/// FulPLL average per-batch time, or `None` (DNF) past the budget.
fn run_fulpll(ctx: &ExpContext, g: &DynamicGraph, batches: &[Batch]) -> Option<Duration> {
    let deadline = ctx.deadline();
    let mut idx = FulPll::build_with_deadline(g.clone(), Some(deadline))?;
    let start = std::time::Instant::now();
    let mut done = 0u32;
    for b in batches {
        for &u in b.updates() {
            idx.apply_update(u);
            if std::time::Instant::now() > deadline {
                return None;
            }
        }
        done += 1;
    }
    (done > 0).then(|| start.elapsed() / done)
}

fn fully_dynamic(ctx: &ExpContext) {
    println!("-- fully dynamic --");
    let mut table = Table::new(&["Dataset", "BHLp", "BHL+", "BHL", "UHL+", "FulFD", "FulPLL"]);
    for name in ctx.static_datasets() {
        let g = dataset(name, ctx.scale);
        let batches = fully_dynamic_batches(&g, ctx.workload());
        let mut cells = vec![name.to_string()];
        for (_, alg, par) in variant_columns() {
            cells.push(fmt_duration(run_variant(ctx, &g, alg, par, &batches)));
        }
        cells.push(fmt_duration(run_fulfd(ctx, &g, &batches)));
        cells.push(if PLL_FRIENDLY.contains(&name) {
            run_fulpll(ctx, &g, &batches)
                .map(fmt_duration)
                .unwrap_or_else(|| "DNF".into())
        } else {
            "-".into()
        });
        table.row(cells);
        let _ = variant_name(Algorithm::Bhl, false);
    }
    print!("{}", table.render());
}

fn incremental(ctx: &ExpContext) {
    println!("-- incremental --");
    let mut table = Table::new(&["Dataset", "BHLp", "BHL+", "UHL+", "IncFD", "IncPLL"]);
    for name in ctx.static_datasets() {
        let g = dataset(name, ctx.scale);
        // Start from the graph with the sampled edges removed, then
        // re-insert them batch by batch (the paper pairs inc/dec on the
        // same sample).
        let ins = incremental_batches(&g, ctx.workload());
        let mut base = g.clone();
        for b in decremental_batches(&g, ctx.workload()) {
            base.apply_batch(&b);
        }
        let mut cells = vec![name.to_string()];
        for (_, alg, par) in [
            ("BHLp", Algorithm::BhlPlus, true),
            ("BHL+", Algorithm::BhlPlus, false),
            ("UHL+", Algorithm::UhlPlus, false),
        ] {
            cells.push(fmt_duration(run_variant(ctx, &base, alg, par, &ins)));
        }
        cells.push(fmt_duration(run_fulfd(ctx, &base, &ins)));
        cells.push(if PLL_FRIENDLY.contains(&name) {
            run_fulpll(ctx, &base, &ins)
                .map(fmt_duration)
                .unwrap_or_else(|| "DNF".into())
        } else {
            "-".into()
        });
        table.row(cells);
    }
    print!("{}", table.render());
}

fn decremental(ctx: &ExpContext) {
    println!("-- decremental --");
    let mut table = Table::new(&["Dataset", "BHLp", "BHL+", "UHL+", "DecFD", "DecPLL"]);
    for name in ctx.static_datasets() {
        let g = dataset(name, ctx.scale);
        let dels = decremental_batches(&g, ctx.workload());
        let mut cells = vec![name.to_string()];
        for (_, alg, par) in [
            ("BHLp", Algorithm::BhlPlus, true),
            ("BHL+", Algorithm::BhlPlus, false),
            ("UHL+", Algorithm::UhlPlus, false),
        ] {
            cells.push(fmt_duration(run_variant(ctx, &g, alg, par, &dels)));
        }
        cells.push(fmt_duration(run_fulfd(ctx, &g, &dels)));
        cells.push(if PLL_FRIENDLY.contains(&name) {
            run_fulpll(ctx, &g, &dels)
                .map(fmt_duration)
                .unwrap_or_else(|| "DNF".into())
        } else {
            "-".into()
        });
        table.row(cells);
    }
    print!("{}", table.render());
}

/// The two real-dynamic networks: timestamp-ordered batches applied in
/// a streaming fashion (fully-dynamic columns of Table 3).
fn dynamic_streams(ctx: &ExpContext) {
    println!("-- real dynamic streams (timestamp order) --");
    let mut table = Table::new(&["Dataset", "BHLp", "BHL+", "BHL", "UHL+", "FulFD"]);
    for name in ctx.dynamic_datasets() {
        let s = stream(name, ctx.scale);
        let batches: Vec<Batch> = s
            .batches(ctx.scale.batch_size())
            .into_iter()
            .take(10)
            .collect();
        let mut cells = vec![name.to_string()];
        for (_, alg, par) in variant_columns() {
            cells.push(fmt_duration(run_variant(
                ctx, &s.initial, alg, par, &batches,
            )));
        }
        cells.push(fmt_duration(run_fulfd(ctx, &s.initial, &batches)));
        table.row(cells);
    }
    print!("{}", table.render());
}
