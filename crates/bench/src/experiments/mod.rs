//! One module per table/figure of the paper's evaluation (Section 7).
//!
//! Every `run` function prints the same rows/series the paper reports,
//! using the dataset stand-ins and the workload protocol; absolute
//! numbers differ from the paper's 28-core testbed, the *shape* (who
//! wins, by what order of magnitude, where crossovers fall) is the
//! reproduction target — see EXPERIMENTS.md for the side-by-side.

pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod label_memory;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

use crate::datasets::Scale;
use batchhl_core::index::{Algorithm, BatchIndex, IndexConfig};
use batchhl_graph::DynamicGraph;
use batchhl_hcl::LandmarkSelection;
use std::time::Duration;

/// Shared experiment context (CLI flags of the `experiments` binary).
#[derive(Debug, Clone)]
pub struct ExpContext {
    pub scale: Scale,
    pub seed: u64,
    /// Landmark count (paper default: 20).
    pub landmarks: usize,
    /// Threads for the parallel variants (paper: 20; this container
    /// typically has far fewer cores — documented in EXPERIMENTS.md).
    pub threads: usize,
    /// Per-method time budget for the PLL-family baselines; exceeding
    /// it prints DNF, mirroring the paper's "-" entries.
    pub budget: Duration,
    /// Optional dataset filter (names).
    pub only: Option<Vec<String>>,
}

impl ExpContext {
    pub fn new(scale: Scale) -> Self {
        ExpContext {
            scale,
            seed: 42,
            landmarks: 20,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            budget: Duration::from_secs(60),
            only: None,
        }
    }

    /// Static datasets after applying the `--datasets` filter.
    pub fn static_datasets(&self) -> Vec<&'static str> {
        crate::datasets::STATIC_DATASETS
            .iter()
            .copied()
            .filter(|n| self.selected(n))
            .collect()
    }

    pub fn dynamic_datasets(&self) -> Vec<&'static str> {
        crate::datasets::DYNAMIC_DATASETS
            .iter()
            .copied()
            .filter(|n| self.selected(n))
            .collect()
    }

    fn selected(&self, name: &str) -> bool {
        self.only
            .as_ref()
            .map(|list| list.iter().any(|x| x == name))
            .unwrap_or(true)
    }

    /// Build a BatchHL index with this context's landmark count.
    pub fn index(&self, g: DynamicGraph, algorithm: Algorithm, threads: usize) -> BatchIndex {
        BatchIndex::build(
            g,
            IndexConfig {
                selection: LandmarkSelection::TopDegree(self.landmarks),
                algorithm,
                threads,
                ..IndexConfig::default()
            },
        )
    }

    /// The Section 7.1 workload config at this scale.
    pub fn workload(&self) -> crate::workload::WorkloadConfig {
        crate::workload::WorkloadConfig::new(10, self.scale.batch_size(), self.seed)
    }

    pub fn deadline(&self) -> std::time::Instant {
        std::time::Instant::now() + self.budget
    }
}

/// The method lineup of the fully-dynamic columns.
pub const FULLY_DYNAMIC_VARIANTS: &[(Algorithm, bool)] = &[
    (Algorithm::BhlPlus, true),  // BHLp = BHL+ with threads
    (Algorithm::BhlPlus, false), // BHL+
    (Algorithm::Bhl, false),     // BHL
    (Algorithm::UhlPlus, false), // UHL+
];

/// Paper display name for a `(algorithm, parallel)` pair.
pub fn variant_name(algorithm: Algorithm, parallel: bool) -> &'static str {
    if parallel {
        "BHLp"
    } else {
        algorithm.paper_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_defaults_and_filter() {
        let mut ctx = ExpContext::new(Scale::Tiny);
        assert_eq!(ctx.static_datasets().len(), 12);
        assert_eq!(ctx.dynamic_datasets().len(), 2);
        ctx.only = Some(vec!["youtube".into(), "italianwiki".into()]);
        assert_eq!(ctx.static_datasets(), vec!["youtube"]);
        assert_eq!(ctx.dynamic_datasets(), vec!["italianwiki"]);
    }

    #[test]
    fn variant_names_match_paper() {
        assert_eq!(variant_name(Algorithm::BhlPlus, true), "BHLp");
        assert_eq!(variant_name(Algorithm::BhlPlus, false), "BHL+");
        assert_eq!(variant_name(Algorithm::Bhl, false), "BHL");
        assert_eq!(variant_name(Algorithm::UhlPlus, false), "UHL+");
    }
}
