//! Figure 6: total time of querying and updating under varying batch
//! sizes — (batch update + 1000 queries) / 1000, for BHL⁺, BHLₚ and
//! FulFD, against query-only BiBFS. Five fully-dynamic batches per
//! size, as in the paper.

use super::ExpContext;
use crate::datasets::dataset;
use crate::measure::{fmt_duration, time, Table};
use crate::workload::{fully_dynamic_batches, query_pairs, WorkloadConfig};
use batchhl_baselines::{FulFd, OnlineBiBfs};
use batchhl_core::index::Algorithm;
use std::time::Duration;

pub const SIZE_FACTORS: &[f64] = &[0.5, 2.5, 5.0, 7.5, 10.0];
const QUERIES_PER_BATCH: usize = 1000;
const NUM_BATCHES: usize = 5;

pub fn run(ctx: &ExpContext) {
    println!(
        "== Figure 6: (batch update + {QUERIES_PER_BATCH} queries) / {QUERIES_PER_BATCH}, {NUM_BATCHES} batches per size =="
    );
    for name in ctx.static_datasets() {
        let g = dataset(name, ctx.scale);
        let pairs = query_pairs(&g, QUERIES_PER_BATCH, ctx.seed ^ 0x6F6);
        println!("-- {name} --");
        let mut table = Table::new(&["BatchSize", "BiBFS", "BHL+ +QT", "BHLp +QT", "FulFD+QT"]);
        for &f in SIZE_FACTORS {
            let size = ((ctx.scale.batch_size() as f64 * f) as usize).max(2);
            let cfg = WorkloadConfig::new(NUM_BATCHES, size, ctx.seed);
            let batches = fully_dynamic_batches(&g, cfg);

            // BiBFS: queries only (its updates are free graph edits).
            let mut bibfs = OnlineBiBfs::new(g.clone());
            let mut bib_total = Duration::ZERO;
            for b in &batches {
                bibfs.apply_batch(b);
                let (_, qt) = time(|| {
                    for &(s, t) in &pairs {
                        std::hint::black_box(bibfs.query_dist(s, t));
                    }
                });
                bib_total += qt;
            }

            // BHL+ and BHLp.
            let amortized = |threads: usize| -> Duration {
                let mut index = ctx.index(g.clone(), Algorithm::BhlPlus, threads);
                let mut total = Duration::ZERO;
                for b in &batches {
                    let (_, t) = time(|| {
                        index.apply_batch(b);
                        for &(s, t) in &pairs {
                            std::hint::black_box(index.query_dist(s, t));
                        }
                    });
                    total += t;
                }
                total
            };
            let bhl_total = amortized(1);
            let bhlp_total = amortized(ctx.threads);

            // FulFD.
            let mut fd = FulFd::build(g.clone(), ctx.landmarks);
            let mut fd_total = Duration::ZERO;
            for b in &batches {
                let (_, t) = time(|| {
                    fd.apply_batch(b);
                    for &(s, t) in &pairs {
                        std::hint::black_box(fd.query_dist(s, t));
                    }
                });
                fd_total += t;
            }

            let per_query =
                |total: Duration| fmt_duration(total / (NUM_BATCHES * QUERIES_PER_BATCH) as u32);
            table.row(vec![
                size.to_string(),
                per_query(bib_total),
                per_query(bhl_total),
                per_query(bhlp_total),
                per_query(fd_total),
            ]);
        }
        print!("{}", table.render());
    }
}
