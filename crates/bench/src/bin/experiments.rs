//! Regenerate the tables and figures of the BatchHL evaluation.
//!
//! ```text
//! experiments [flags] <id>...        ids: table2 table3 table4 table5
//!                                         table6 fig2 fig5 fig6 fig7
//!                                         fig8 label_memory | all
//!   --scale tiny|small|medium|large  dataset scale       (default small)
//!   --seed N                         workload seed       (default 42)
//!   --landmarks K                    landmark count      (default 20)
//!   --threads T                      parallel variants   (default: cores)
//!   --budget-secs S                  PLL-family budget   (default 60)
//!   --datasets a,b,c                 restrict datasets
//! ```
//!
//! Paper-scale runs: `--scale large` approximates the paper's batch
//! size of 1,000 and 100,000-query samples (absolute wall-clock numbers
//! still reflect this machine, not the paper's 28-core Xeon).

use batchhl_bench::datasets::Scale;
use batchhl_bench::experiments::{self, ExpContext};
use std::process::exit;

const ALL_IDS: &[&str] = &[
    "table2",
    "fig2",
    "fig5",
    "table3",
    "table4",
    "table5",
    "fig6",
    "fig7",
    "fig8",
    "table6",
    "label_memory",
];

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--scale S] [--seed N] [--landmarks K] [--threads T] \
         [--budget-secs S] [--datasets a,b,c] <id>...\n       ids: {} | all",
        ALL_IDS.join(" ")
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = ExpContext::new(Scale::Small);
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage();
            })
        };
        match arg.as_str() {
            "--scale" => {
                let v = value("--scale");
                ctx.scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?}");
                    usage();
                });
            }
            "--seed" => ctx.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--landmarks" => {
                ctx.landmarks = value("--landmarks").parse().unwrap_or_else(|_| usage())
            }
            "--threads" => ctx.threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--budget-secs" => {
                let s: u64 = value("--budget-secs").parse().unwrap_or_else(|_| usage());
                ctx.budget = std::time::Duration::from_secs(s);
            }
            "--datasets" => {
                ctx.only = Some(
                    value("--datasets")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .collect(),
                );
            }
            "--help" | "-h" => usage(),
            id if !id.starts_with('-') => ids.push(id.to_string()),
            _ => usage(),
        }
    }
    if ids.is_empty() {
        usage();
    }
    if ids.iter().any(|i| i == "all") {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }

    println!(
        "# BatchHL experiments  scale={:?} seed={} landmarks={} threads={} budget={:?}",
        ctx.scale, ctx.seed, ctx.landmarks, ctx.threads, ctx.budget
    );
    for id in &ids {
        let start = std::time::Instant::now();
        match id.as_str() {
            "table2" => experiments::table2::run(&ctx),
            "fig2" => experiments::fig2::run(&ctx),
            "fig5" => experiments::fig5::run(&ctx),
            "table3" => experiments::table3::run(&ctx),
            "table4" => experiments::table4::run(&ctx),
            "table5" => experiments::table5::run(&ctx),
            "fig6" => experiments::fig6::run(&ctx),
            "fig7" => experiments::fig7::run(&ctx),
            "fig8" => experiments::fig8::run(&ctx),
            "label_memory" => experiments::label_memory::run(&ctx),
            "table6" => experiments::table6::run(&ctx),
            other => {
                eprintln!("unknown experiment {other:?}");
                usage();
            }
        }
        println!("[{id} done in {:.1?}]\n", start.elapsed());
    }
}
