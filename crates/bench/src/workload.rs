//! The workload protocol of Section 7.1.
//!
//! "We generate 10 batches …, where each batch contains 1,000 edges
//! randomly selected. We use three batch update settings: (1)
//! decremental — delete these batches …, (2) incremental — add these
//! batches followed by decremental updates …, (3) fully dynamic —
//! randomly select 50% updates in each of these 10 batches to delete."
//! Plus 100,000 random query pairs, and (Figure 5) the distance
//! distribution of batch edges after deletion.

use batchhl_common::{Dist, Vertex, INF};
use batchhl_graph::bfs::BiBfs;
use batchhl_graph::{Batch, DynamicGraph, Update};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of a generated workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    pub num_batches: usize,
    pub batch_size: usize,
    pub seed: u64,
}

impl WorkloadConfig {
    pub fn new(num_batches: usize, batch_size: usize, seed: u64) -> Self {
        WorkloadConfig {
            num_batches,
            batch_size,
            seed,
        }
    }

    /// The paper's protocol at full size.
    pub fn paper(seed: u64) -> Self {
        WorkloadConfig::new(10, 1000, seed)
    }
}

/// Sample `num_batches` *disjoint* batches of existing edges.
pub fn sample_edge_batches(g: &DynamicGraph, cfg: WorkloadConfig) -> Vec<Vec<(Vertex, Vertex)>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut edges: Vec<(Vertex, Vertex)> = g.edges().collect();
    edges.shuffle(&mut rng);
    let need = cfg.num_batches * cfg.batch_size;
    assert!(
        edges.len() >= need,
        "graph has {} edges, workload needs {need}",
        edges.len()
    );
    edges
        .chunks(cfg.batch_size)
        .take(cfg.num_batches)
        .map(<[(Vertex, Vertex)]>::to_vec)
        .collect()
}

/// Decremental setting: batches of deletions of existing edges.
pub fn decremental_batches(g: &DynamicGraph, cfg: WorkloadConfig) -> Vec<Batch> {
    sample_edge_batches(g, cfg)
        .into_iter()
        .map(|edges| {
            edges
                .into_iter()
                .map(|(a, b)| Update::Delete(a, b))
                .collect()
        })
        .collect()
}

/// Incremental setting: the same sampled edges as insertions. Apply to
/// the graph *after* the decremental batches removed them (the paper
/// pairs the two settings on the same edge sample).
pub fn incremental_batches(g: &DynamicGraph, cfg: WorkloadConfig) -> Vec<Batch> {
    sample_edge_batches(g, cfg)
        .into_iter()
        .map(|edges| {
            edges
                .into_iter()
                .map(|(a, b)| Update::Insert(a, b))
                .collect()
        })
        .collect()
}

/// Fully dynamic setting: each batch mixes 50% deletions of existing
/// edges with 50% insertions of fresh (non-adjacent) pairs. Batches are
/// built against an evolving copy so the whole sequence is valid.
pub fn fully_dynamic_batches(g: &DynamicGraph, cfg: WorkloadConfig) -> Vec<Batch> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5D5D);
    let mut shadow = g.clone();
    let n = g.num_vertices() as Vertex;
    let mut batches = Vec::with_capacity(cfg.num_batches);
    for _ in 0..cfg.num_batches {
        let mut batch = Batch::new();
        let deletions = cfg.batch_size / 2;
        let insertions = cfg.batch_size - deletions;
        let mut edges: Vec<(Vertex, Vertex)> = shadow.edges().collect();
        edges.shuffle(&mut rng);
        for &(a, b) in edges.iter().take(deletions) {
            shadow.remove_edge(a, b);
            batch.delete(a, b);
        }
        let mut added = 0;
        while added < insertions {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && shadow.insert_edge(a, b) {
                batch.insert(a, b);
                added += 1;
            }
        }
        batches.push(batch);
    }
    batches
}

/// Uniform random query pairs (the paper samples 100,000).
pub fn query_pairs(g: &DynamicGraph, count: usize, seed: u64) -> Vec<(Vertex, Vertex)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0BAD);
    let n = g.num_vertices() as Vertex;
    (0..count)
        .map(|_| {
            let s = rng.gen_range(0..n);
            let mut t = rng.gen_range(0..n);
            while t == s {
                t = rng.gen_range(0..n);
            }
            (s, t)
        })
        .collect()
}

/// Histogram buckets for Figure 5: distances 1..=6, "7+" and "∞".
pub const DISTANCE_BUCKETS: &[&str] = &["1", "2", "3", "4", "5", "6", "7+", "inf"];

/// Figure 5: distribution of endpoint distances of the batch's edges
/// *after deleting them* from `g`. Returns counts per
/// [`DISTANCE_BUCKETS`] bucket.
pub fn distance_distribution(g: &DynamicGraph, edges: &[(Vertex, Vertex)]) -> [usize; 8] {
    let mut g2 = g.clone();
    for &(a, b) in edges {
        g2.remove_edge(a, b);
    }
    let mut bibfs = BiBfs::new(g2.num_vertices());
    let mut hist = [0usize; 8];
    for &(a, b) in edges {
        let d: Dist = bibfs.run(&g2, a, b, INF, |_| true).unwrap_or(INF);
        let bucket = match d {
            INF => 7,
            d if d >= 7 => 6,
            d => (d - 1) as usize,
        };
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_graph::generators::{barabasi_albert, cycle};

    fn graph() -> DynamicGraph {
        barabasi_albert(500, 4, 77)
    }

    #[test]
    fn edge_batches_are_disjoint_and_sized() {
        let g = graph();
        let cfg = WorkloadConfig::new(4, 50, 1);
        let batches = sample_edge_batches(&g, cfg);
        assert_eq!(batches.len(), 4);
        let mut seen = std::collections::HashSet::new();
        for b in &batches {
            assert_eq!(b.len(), 50);
            for &e in b {
                assert!(seen.insert(e), "edge {e:?} sampled twice");
                assert!(g.has_edge(e.0, e.1));
            }
        }
    }

    #[test]
    fn decremental_then_incremental_round_trip() {
        let g = graph();
        let cfg = WorkloadConfig::new(3, 40, 9);
        let mut work = g.clone();
        for b in decremental_batches(&g, cfg) {
            let applied = work.apply_batch(&b);
            assert_eq!(applied, b.len(), "every deletion valid");
        }
        for b in incremental_batches(&g, cfg) {
            let applied = work.apply_batch(&b);
            assert_eq!(applied, b.len(), "every insertion valid");
        }
        assert_eq!(work, g);
    }

    #[test]
    fn fully_dynamic_batches_are_valid_in_sequence() {
        let g = graph();
        let cfg = WorkloadConfig::new(5, 60, 3);
        let mut work = g.clone();
        for b in fully_dynamic_batches(&g, cfg) {
            assert_eq!(b.num_deletions(), 30);
            assert_eq!(b.num_insertions(), 30);
            let applied = work.apply_batch(&b);
            assert_eq!(applied, b.len());
        }
    }

    #[test]
    fn query_pairs_are_distinct_endpoints() {
        let g = graph();
        for (s, t) in query_pairs(&g, 500, 5) {
            assert_ne!(s, t);
            assert!((s as usize) < g.num_vertices());
        }
    }

    #[test]
    fn distance_distribution_on_cycle() {
        // Deleting one edge of a 10-cycle leaves endpoints at distance 9.
        let g = cycle(10);
        let hist = distance_distribution(&g, &[(0, 9)]);
        assert_eq!(hist[6], 1, "9 lands in the 7+ bucket");
        // Deleting a path edge of a 2-path graph disconnects it.
        let p = batchhl_graph::generators::path(2);
        let hist = distance_distribution(&p, &[(0, 1)]);
        assert_eq!(hist[7], 1, "disconnected lands in inf");
    }

    #[test]
    fn workloads_are_deterministic() {
        let g = graph();
        let cfg = WorkloadConfig::new(2, 30, 4);
        assert_eq!(
            fully_dynamic_batches(&g, cfg),
            fully_dynamic_batches(&g, cfg)
        );
        assert_eq!(query_pairs(&g, 10, 1), query_pairs(&g, 10, 1));
    }
}
