//! Benchmark harness for the BatchHL reproduction.
//!
//! * [`datasets`] — seeded synthetic stand-ins for the paper's 14
//!   networks (Table 2), scaled by [`datasets::Scale`];
//! * [`workload`] — the update/query workload protocol of Section 7.1
//!   (10 batches; decremental / incremental / fully-dynamic settings;
//!   random query pairs);
//! * [`measure`] — timing helpers and plain-text table formatting;
//! * [`experiments`] — one module per table/figure of the evaluation,
//!   each printing the same rows/series the paper reports. Run them via
//!   `cargo run -p batchhl-bench --release --bin experiments -- <id>`.

pub mod bench_support;
pub mod datasets;
pub mod experiments;
pub mod measure;
pub mod workload;

pub use datasets::{dataset, dataset_names, Scale};
pub use workload::WorkloadConfig;
