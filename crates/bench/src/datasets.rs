//! Synthetic stand-ins for the paper's 14 datasets (Table 2).
//!
//! The real networks (SNAP / LAW / KONECT, up to 3.7 B edges) are
//! replaced by seeded generators whose *shape knobs* — average degree,
//! degree skew, small diameter — mirror each original (DESIGN.md §4):
//! Barabási–Albert for the social networks, R-MAT for the skewed
//! web/communication graphs, and an evolving preferential stream for
//! the two real-dynamic Wikipedia networks. [`Scale`] multiplies the
//! vertex counts so the same harness runs from smoke-test to
//! overnight sizes. If a real SNAP edge list is available, drop it in
//! with `BATCHHL_DATA_DIR` and it takes precedence.

use batchhl_graph::generators::{barabasi_albert, rmat, RmatParams};
use batchhl_graph::stream::EvolvingStream;
use batchhl_graph::DynamicGraph;

/// Dataset size multiplier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test (~1–2k vertices): seconds for the whole suite.
    Tiny,
    /// Default (~6–16k vertices): minutes for the whole suite.
    Small,
    /// ~4× Small.
    Medium,
    /// ~16× Small; expect long runs.
    Large,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    /// Vertex-count multiplier relative to [`Scale::Small`].
    pub fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 0.25,
            Scale::Small => 1.0,
            Scale::Medium => 4.0,
            Scale::Large => 16.0,
        }
    }

    fn n(self, base: usize) -> usize {
        ((base as f64 * self.factor()) as usize).max(64)
    }

    /// R-MAT scale exponent adjustment.
    fn rmat_scale(self, base: u32) -> u32 {
        match self {
            Scale::Tiny => base - 2,
            Scale::Small => base,
            Scale::Medium => base + 2,
            Scale::Large => base + 4,
        }
    }

    /// Default batch size, scaled from the paper's 1,000.
    pub fn batch_size(self) -> usize {
        match self {
            Scale::Tiny => 50,
            Scale::Small => 200,
            Scale::Medium => 500,
            Scale::Large => 1000,
        }
    }

    /// Default query-sample size, scaled from the paper's 100,000.
    pub fn query_count(self) -> usize {
        match self {
            Scale::Tiny => 2_000,
            Scale::Small => 10_000,
            Scale::Medium => 30_000,
            Scale::Large => 100_000,
        }
    }
}

/// The 12 static datasets of Table 2, in the paper's order.
pub const STATIC_DATASETS: &[&str] = &[
    "youtube",
    "skitter",
    "flickr",
    "wikitalk",
    "hollywood",
    "orkut",
    "enwiki",
    "livejournal",
    "indochina",
    "twitter",
    "friendster",
    "uk",
];

/// The two real-dynamic datasets (timestamped streams).
pub const DYNAMIC_DATASETS: &[&str] = &["italianwiki", "frenchwiki"];

/// All 14 dataset names.
pub fn dataset_names() -> Vec<&'static str> {
    STATIC_DATASETS
        .iter()
        .chain(DYNAMIC_DATASETS.iter())
        .copied()
        .collect()
}

/// The four datasets the paper could still run FulPLL on.
pub const PLL_FRIENDLY: &[&str] = &["youtube", "skitter", "flickr", "wikitalk"];

/// Domain tag shown in Table 2.
pub fn dataset_kind(name: &str) -> &'static str {
    match name {
        "youtube" | "flickr" | "hollywood" | "orkut" | "livejournal" | "twitter" | "friendster"
        | "enwiki" | "italianwiki" | "frenchwiki" => "social",
        "skitter" => "comp",
        "wikitalk" => "comm",
        "indochina" | "uk" => "web",
        _ => "synthetic",
    }
}

/// Build a static dataset by name. Deterministic per (name, scale).
///
/// If `BATCHHL_DATA_DIR` is set and contains `<name>.txt`, that real
/// edge list is loaded instead of a synthetic stand-in.
pub fn dataset(name: &str, scale: Scale) -> DynamicGraph {
    if let Ok(dir) = std::env::var("BATCHHL_DATA_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{name}.txt"));
        if path.exists() {
            return batchhl_graph::io::read_graph(&path)
                .unwrap_or_else(|e| panic!("failed to read {}: {e}", path.display()));
        }
    }
    // (generator, base n, attachment / edge factor, seed) tuned to
    // mirror Table 2's avg-degree column.
    match name {
        "youtube" => barabasi_albert(scale.n(8_000), 3, 0xA001),
        "skitter" => barabasi_albert(scale.n(8_000), 7, 0xA002),
        "flickr" => barabasi_albert(scale.n(8_000), 9, 0xA003),
        "wikitalk" => rmat(
            scale.rmat_scale(13),
            scale.n(16_000),
            RmatParams::graph500(),
            0xA004,
        ),
        "hollywood" => barabasi_albert(scale.n(6_000), 49, 0xA005),
        "orkut" => barabasi_albert(scale.n(8_000), 38, 0xA006),
        "enwiki" => barabasi_albert(scale.n(8_000), 22, 0xA007),
        "livejournal" => barabasi_albert(scale.n(8_000), 9, 0xA008),
        "indochina" => rmat(
            scale.rmat_scale(13),
            scale.n(8_192 * 20),
            RmatParams::graph500(),
            0xA009,
        ),
        "twitter" => barabasi_albert(scale.n(10_000), 29, 0xA00A),
        "friendster" => barabasi_albert(scale.n(10_000), 28, 0xA00B),
        "uk" => rmat(
            scale.rmat_scale(14),
            scale.n(16_384 * 31),
            RmatParams::graph500(),
            0xA00C,
        ),
        "italianwiki" => stream(name, scale).initial,
        "frenchwiki" => stream(name, scale).initial,
        other => panic!("unknown dataset {other:?}"),
    }
}

/// The timestamped update stream of a dynamic dataset.
pub fn stream(name: &str, scale: Scale) -> EvolvingStream {
    match name {
        "italianwiki" => EvolvingStream::generate(
            scale.n(6_000),
            16,
            (10_000.0 * scale.factor()) as usize,
            0.35,
            0xB001,
        ),
        "frenchwiki" => EvolvingStream::generate(
            scale.n(8_000),
            13,
            (10_000.0 * scale.factor()) as usize,
            0.35,
            0xB002,
        ),
        other => panic!("{other:?} is not a dynamic dataset"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_static_datasets_build_at_tiny() {
        for name in STATIC_DATASETS {
            let g = dataset(name, Scale::Tiny);
            assert!(g.num_vertices() >= 64, "{name}");
            assert!(g.num_edges() > 0, "{name}");
            g.validate().unwrap();
        }
    }

    #[test]
    fn dynamic_datasets_stream() {
        for name in DYNAMIC_DATASETS {
            let s = stream(name, Scale::Tiny);
            assert!(!s.events.is_empty(), "{name}");
            assert!(s.initial.num_edges() > 0);
        }
    }

    #[test]
    fn deterministic_per_name_and_scale() {
        let a = dataset("youtube", Scale::Tiny);
        let b = dataset("youtube", Scale::Tiny);
        assert_eq!(a, b);
        let c = dataset("skitter", Scale::Tiny);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_shape_mirrors_table2_ordering() {
        // hollywood must be much denser than youtube, as in Table 2.
        let yt = dataset("youtube", Scale::Tiny);
        let hw = dataset("hollywood", Scale::Tiny);
        assert!(hw.avg_degree() > 10.0 * yt.avg_degree());
        // skewed generators produce hubs.
        let wt = dataset("wikitalk", Scale::Tiny);
        assert!(wt.max_degree() as f64 > 8.0 * wt.avg_degree());
    }

    #[test]
    fn scale_names_parse() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("TINY"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("bogus"), None);
    }
}
