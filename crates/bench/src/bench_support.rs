//! Shared fixtures for the criterion benches.
//!
//! Benches run at [`Scale::Tiny`] with a short criterion schedule so
//! `cargo bench --workspace` completes in minutes on one core; the
//! `experiments` binary is the tool for full-size table reproduction.

use crate::datasets::{dataset, Scale};
use crate::workload::{fully_dynamic_batches, query_pairs, WorkloadConfig};
use batchhl_core::index::{Algorithm, BatchIndex, IndexConfig};
use batchhl_graph::{Batch, DynamicGraph, Vertex};
use batchhl_hcl::LandmarkSelection;

pub const BENCH_SEED: u64 = 42;
pub const BENCH_LANDMARKS: usize = 20;

/// The default bench graph: the youtube stand-in at tiny scale.
pub fn bench_graph() -> DynamicGraph {
    dataset("youtube", Scale::Tiny)
}

/// A denser, more update-stressing graph.
pub fn bench_graph_dense() -> DynamicGraph {
    dataset("twitter", Scale::Tiny)
}

/// One fully-dynamic batch of the given size against `g`.
pub fn bench_batch(g: &DynamicGraph, size: usize) -> Batch {
    fully_dynamic_batches(g, WorkloadConfig::new(1, size, BENCH_SEED))
        .pop()
        .expect("one batch requested")
}

/// Query pairs for query benches.
pub fn bench_queries(g: &DynamicGraph, count: usize) -> Vec<(Vertex, Vertex)> {
    query_pairs(g, count, BENCH_SEED)
}

/// Build a BatchHL index with `k` landmarks.
pub fn bench_index(g: &DynamicGraph, algorithm: Algorithm, k: usize) -> BatchIndex {
    BatchIndex::build(
        g.clone(),
        IndexConfig {
            selection: LandmarkSelection::TopDegree(k),
            algorithm,
            threads: 1,
            ..IndexConfig::default()
        },
    )
}

/// Criterion schedule for a single-core container (few samples, short
/// windows). Used by every bench as
/// `criterion_group! { config = bench_config(); ... }`.
#[macro_export]
macro_rules! bench_config {
    () => {
        criterion::Criterion::default()
            .sample_size(10)
            .warm_up_time(std::time::Duration::from_millis(200))
            .measurement_time(std::time::Duration::from_millis(900))
    };
}
