//! Timing helpers and plain-text table formatting.

use std::time::{Duration, Instant};

/// Time a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Human-readable duration: µs / ms / s with 3 significant-ish digits.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.2}us")
    } else if us < 1_000_000.0 {
        format!("{:.3}ms", us / 1000.0)
    } else {
        format!("{:.3}s", us / 1_000_000.0)
    }
}

/// Human-readable byte size.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: &[&str] = &["B", "KB", "MB", "GB"];
    let mut x = bytes as f64;
    let mut unit = 0;
    while x >= 1024.0 && unit + 1 < UNITS.len() {
        x /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{x:.2} {}", UNITS[unit])
    }
}

/// Column-aligned plain-text table writer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00us");
        assert_eq!(fmt_duration(Duration::from_micros(2500)), "2.500ms");
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.500s");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MB");
    }

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "23".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn time_measures() {
        let (v, d) = time(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }
}
