//! SplitMix64: a tiny, dependency-free deterministic generator.
//!
//! Used for internal tie-breaking and test-input shuffling inside crates
//! that must stay dependency-free. Workload generation proper uses the
//! `rand` crate (seeded `StdRng`) in `batchhl-graph`.

/// SplitMix64 (Steele, Lea & Flood 2014). Passes BigCrush when used as a
/// 64-bit stream; we rely only on determinism and decent equidistribution.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (rejection-free; negligible modulo
    /// bias for `bound << 2^64`).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(99);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }
}
