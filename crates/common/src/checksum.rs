//! CRC-32 (IEEE 802.3) for persistence framing.
//!
//! Both the `BHL2` checkpoint format and the batch write-ahead log
//! guard their payloads with a checksum so that recovery can tell a
//! cleanly written record from a torn or corrupted one. CRC-32 is used
//! (rather than a fast in-memory hasher) because its value is defined
//! by the polynomial alone: stable across platforms, compiler versions
//! and process restarts, which is exactly what an on-disk format needs.
//!
//! [`Crc32`] is an incremental digest; [`Crc32Writer`] / [`Crc32Reader`]
//! wrap an `io` stream and digest every byte that passes through, so a
//! whole-file checksum costs no extra buffering.

use std::io::{self, Read, Write};

/// The IEEE reflected polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// Incremental CRC-32 digest.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Digest `bytes` (may be called repeatedly).
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// The checksum of everything digested so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot convenience.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// A writer that digests every byte it forwards.
#[derive(Debug)]
pub struct Crc32Writer<W> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> Crc32Writer<W> {
    pub fn new(inner: W) -> Self {
        Crc32Writer {
            inner,
            crc: Crc32::new(),
        }
    }

    /// Checksum of the bytes written so far.
    pub fn sum(&self) -> u32 {
        self.crc.finish()
    }

    /// Unwrap, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// The underlying writer (e.g. to append the trailer *outside* the
    /// checksummed region).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: Write> Write for Crc32Writer<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader that digests every byte it yields.
#[derive(Debug)]
pub struct Crc32Reader<R> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> Crc32Reader<R> {
    pub fn new(inner: R) -> Self {
        Crc32Reader {
            inner,
            crc: Crc32::new(),
        }
    }

    /// Checksum of the bytes read so far.
    pub fn sum(&self) -> u32 {
        self.crc.finish()
    }

    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: Read> Read for Crc32Reader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"batch-dynamic highway cover labelling";
        let mut c = Crc32::new();
        for chunk in data.chunks(5) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn stream_wrappers_digest_everything() {
        let mut out = Vec::new();
        let mut w = Crc32Writer::new(&mut out);
        w.write_all(b"hello ").unwrap();
        w.write_all(b"world").unwrap();
        let sum = w.sum();
        assert_eq!(sum, crc32(b"hello world"));

        let mut r = Crc32Reader::new(&b"hello world"[..]);
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(r.sum(), sum);
    }

    #[test]
    fn corruption_changes_the_sum() {
        let mut data = b"some payload".to_vec();
        let clean = crc32(&data);
        data[3] ^= 0x40;
        assert_ne!(crc32(&data), clean);
    }
}
