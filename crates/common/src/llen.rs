//! Packed landmark lengths (Definitions 5.13 and 5.16 of the paper).
//!
//! The improved batch search (Algorithm 3) orders its queue by the
//! *extended landmark length* `(d, l, e)` of a path: its hop count `d`,
//! a landmark flag `l` (true iff the path passes through a landmark other
//! than the source, *including its terminal vertex* — the convention
//! forced by the paper's `⊕` operator) and a deletion flag `e` (true iff
//! the path uses a deleted edge). Comparison is lexicographic with the
//! unusual `True < False` ordering on both flags: among equal-length
//! paths the search must prefer landmark-covered paths (so redundant
//! labels are detected) and deletion-carrying paths (so deleted paths are
//! not pruned by the stricter insertion condition — see Section 5.2).
//!
//! Both tuple types are packed into a single `u64` whose integer order
//! coincides with the lexicographic tuple order, so a queue comparison is
//! one machine compare and the values index Dial buckets directly.

use crate::dist::{dist_add1, Dist, INF};

/// A `(distance, landmark-flag)` pair, packed as
/// `(dist << 1) | (landmark ? 0 : 1)`.
///
/// `True < False` on the flag means that for a fixed distance the packed
/// key of a landmark-covered path is *smaller*, matching the paper's
/// ordering.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LandmarkLength(u64);

impl LandmarkLength {
    /// The landmark length of the empty path at a landmark root:
    /// distance 0, no other landmark seen.
    pub const ZERO: LandmarkLength = LandmarkLength::new(0, false);

    /// Landmark length of an unreachable vertex. The flag is `true`
    /// (the minimum at distance `INF`) so that *any* real path to a
    /// previously-unreachable vertex passes the pruning comparisons.
    pub const INFINITE: LandmarkLength = LandmarkLength::new(INF, true);

    #[inline(always)]
    pub const fn new(dist: Dist, through_landmark: bool) -> Self {
        LandmarkLength(((dist as u64) << 1) | (!through_landmark as u64))
    }

    /// Rebuild from a raw key previously obtained via [`Self::key`]
    /// (used by the epoch-stamped memo caches).
    #[inline(always)]
    pub const fn from_key(key: u64) -> Self {
        LandmarkLength(key)
    }

    /// Hop count of the path.
    #[inline(always)]
    pub const fn dist(self) -> Dist {
        (self.0 >> 1) as Dist
    }

    /// True iff the path passes through a landmark other than its source
    /// (terminal vertex included).
    #[inline(always)]
    pub const fn through_landmark(self) -> bool {
        self.0 & 1 == 0
    }

    /// The paper's `⊕` operator: extend the path by one vertex `w`.
    /// Distance grows by one (with `INF` absorbing); the landmark flag is
    /// set if `w` is a landmark.
    #[inline(always)]
    pub fn extend(self, w_is_landmark: bool) -> Self {
        LandmarkLength::new(
            dist_add1(self.dist()),
            self.through_landmark() | w_is_landmark,
        )
    }

    /// Weighted `⊕`: extend the path by an edge of weight `w` into a
    /// vertex (Section 6's weighted sketch; `INF` absorbing).
    #[inline(always)]
    pub fn extend_by(self, w: Dist, w_is_landmark: bool) -> Self {
        LandmarkLength::new(
            self.dist().saturating_add(w),
            self.through_landmark() | w_is_landmark,
        )
    }

    #[inline(always)]
    pub const fn is_infinite(self) -> bool {
        self.dist() == INF
    }

    /// Raw packed key (used by the bucket queues).
    #[inline(always)]
    pub const fn key(self) -> u64 {
        self.0
    }

    /// Attach a deletion flag, producing an extended landmark length.
    #[inline(always)]
    pub const fn with_deleted(self, deleted: bool) -> ExtLandmarkLength {
        ExtLandmarkLength((self.0 << 1) | (!deleted as u64))
    }
}

impl core::fmt::Debug for LandmarkLength {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_infinite() {
            write!(f, "(∞, {})", self.through_landmark())
        } else {
            write!(f, "({}, {})", self.dist(), self.through_landmark())
        }
    }
}

/// A `(distance, landmark-flag, deletion-flag)` triple (Definition 5.16),
/// packed so integer order equals the lexicographic tuple order with
/// `True < False` on both flags.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExtLandmarkLength(u64);

impl ExtLandmarkLength {
    #[inline(always)]
    pub const fn new(dist: Dist, through_landmark: bool, deleted: bool) -> Self {
        LandmarkLength::new(dist, through_landmark).with_deleted(deleted)
    }

    #[inline(always)]
    pub const fn landmark_length(self) -> LandmarkLength {
        LandmarkLength(self.0 >> 1)
    }

    #[inline(always)]
    pub const fn dist(self) -> Dist {
        self.landmark_length().dist()
    }

    #[inline(always)]
    pub const fn through_landmark(self) -> bool {
        self.landmark_length().through_landmark()
    }

    /// True iff the path passes through a deleted edge.
    #[inline(always)]
    pub const fn deleted(self) -> bool {
        self.0 & 1 == 0
    }

    /// Extend the underlying path by one vertex, keeping the deletion
    /// flag (a deleted edge earlier on the path stays on the path).
    #[inline(always)]
    pub fn extend(self, w_is_landmark: bool) -> Self {
        self.landmark_length()
            .extend(w_is_landmark)
            .with_deleted(self.deleted())
    }

    /// Sub-bucket index `0..4` for the lexicographic Dial queue: the two
    /// flag bits below the distance, preserving order within a distance
    /// bucket.
    #[inline(always)]
    pub const fn sub_bucket(self) -> usize {
        (self.0 & 0b11) as usize
    }

    #[inline(always)]
    pub const fn key(self) -> u64 {
        self.0
    }
}

impl core::fmt::Debug for ExtLandmarkLength {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "({}, {}, {})",
            self.dist(),
            self.through_landmark(),
            self.deleted()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn landmark_length_order_matches_paper() {
        // Lexicographic with True < False: (3, T) < (3, F) < (4, T).
        let a = LandmarkLength::new(3, true);
        let b = LandmarkLength::new(3, false);
        let c = LandmarkLength::new(4, true);
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
    }

    #[test]
    fn roundtrip() {
        for d in [0u32, 1, 7, 1000, INF] {
            for l in [false, true] {
                let ll = LandmarkLength::new(d, l);
                assert_eq!(ll.dist(), d);
                assert_eq!(ll.through_landmark(), l);
                for e in [false, true] {
                    let ext = ll.with_deleted(e);
                    assert_eq!(ext.dist(), d);
                    assert_eq!(ext.through_landmark(), l);
                    assert_eq!(ext.deleted(), e);
                    assert_eq!(ext.landmark_length(), ll);
                }
            }
        }
    }

    #[test]
    fn extend_is_the_paper_oplus() {
        let ll = LandmarkLength::new(2, false);
        assert_eq!(ll.extend(false), LandmarkLength::new(3, false));
        assert_eq!(ll.extend(true), LandmarkLength::new(3, true));
        // Once through a landmark, always through a landmark.
        assert_eq!(ll.extend(true).extend(false), LandmarkLength::new(4, true));
        // INF is absorbing.
        assert!(LandmarkLength::INFINITE.extend(false).is_infinite());
    }

    #[test]
    fn extended_order_is_lexicographic() {
        // (d, l, e) with True < False on each flag.
        let seq = [
            ExtLandmarkLength::new(2, true, true),
            ExtLandmarkLength::new(2, true, false),
            ExtLandmarkLength::new(2, false, true),
            ExtLandmarkLength::new(2, false, false),
            ExtLandmarkLength::new(3, true, true),
        ];
        for w in seq.windows(2) {
            assert!(w[0] < w[1], "{:?} !< {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn sub_bucket_orders_within_distance() {
        let mut subs: Vec<usize> = [
            ExtLandmarkLength::new(5, true, true),
            ExtLandmarkLength::new(5, true, false),
            ExtLandmarkLength::new(5, false, true),
            ExtLandmarkLength::new(5, false, false),
        ]
        .iter()
        .map(|e| e.sub_bucket())
        .collect();
        let sorted = subs.clone();
        subs.sort_unstable();
        assert_eq!(subs, sorted, "sub-buckets must already be in order");
        assert_eq!(subs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn infinite_is_minimal_at_inf() {
        assert!(LandmarkLength::INFINITE < LandmarkLength::new(INF, false));
        assert!(LandmarkLength::new(100, false) < LandmarkLength::INFINITE);
    }

    #[test]
    fn weighted_extend() {
        let ll = LandmarkLength::new(3, false);
        assert_eq!(ll.extend_by(5, false), LandmarkLength::new(8, false));
        assert_eq!(ll.extend_by(5, true), LandmarkLength::new(8, true));
        assert_eq!(ll.extend_by(1, false), ll.extend(false));
        assert!(LandmarkLength::INFINITE.extend_by(7, false).is_infinite());
    }

    #[test]
    fn from_key_roundtrip() {
        for ll in [
            LandmarkLength::ZERO,
            LandmarkLength::INFINITE,
            LandmarkLength::new(17, true),
            LandmarkLength::new(17, false),
        ] {
            assert_eq!(LandmarkLength::from_key(ll.key()), ll);
        }
    }

    #[test]
    fn beta_comparison_matches_section_5_2() {
        // β(r, v) = (d^L_G(r, v), True). A new (insertion) path with
        // e = False passes `cand ≤ β` iff its landmark length is strictly
        // smaller; a deleted path with e = True passes iff ≤.
        let dl = LandmarkLength::new(4, false);
        let beta = dl.with_deleted(true);
        // Equal landmark length, insertion: pruned.
        assert!(dl.with_deleted(false) > beta);
        // Equal landmark length, deletion: kept.
        assert!(dl.with_deleted(true) <= beta);
        // Strictly smaller landmark length, insertion: kept.
        assert!(LandmarkLength::new(3, false).with_deleted(false) <= beta);
        assert!(LandmarkLength::new(4, true).with_deleted(false) <= beta);
    }
}
