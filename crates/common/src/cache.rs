//! Epoch-stamped memoization array.
//!
//! During batch search the old distances `d_G(r, v)` / `d^L_G(r, v)` are
//! recovered from the labelling in O(|R|) per lookup; each vertex can be
//! inspected once per incident edge, and batch repair needs the same
//! values again for boundary initialization. `EpochCache` memoizes them
//! with O(1) lookup and O(1) reset: each slot carries the epoch in which
//! it was written, and `clear` just bumps the current epoch.

/// A `u64`-valued per-vertex memo table with constant-time reset.
#[derive(Debug, Clone, Default)]
pub struct EpochCache {
    vals: Vec<u64>,
    stamps: Vec<u32>,
    epoch: u32,
}

impl EpochCache {
    pub fn new(capacity: usize) -> Self {
        EpochCache {
            vals: vec![0; capacity],
            stamps: vec![0; capacity],
            // Epoch 0 would make the zeroed stamps look valid.
            epoch: 1,
        }
    }

    pub fn capacity(&self) -> usize {
        self.vals.len()
    }

    pub fn grow(&mut self, capacity: usize) {
        if capacity > self.vals.len() {
            self.vals.resize(capacity, 0);
            self.stamps.resize(capacity, 0);
        }
    }

    #[inline(always)]
    pub fn get(&self, i: usize) -> Option<u64> {
        (self.stamps[i] == self.epoch).then(|| self.vals[i])
    }

    #[inline(always)]
    pub fn set(&mut self, i: usize, val: u64) {
        self.vals[i] = val;
        self.stamps[i] = self.epoch;
    }

    /// Invalidate every entry in O(1) (amortized: a full wipe happens
    /// once every `u32::MAX - 1` clears to handle stamp wrap-around).
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut c = EpochCache::new(10);
        assert_eq!(c.get(3), None);
        c.set(3, 99);
        assert_eq!(c.get(3), Some(99));
        c.clear();
        assert_eq!(c.get(3), None);
        c.set(3, 7);
        assert_eq!(c.get(3), Some(7));
    }

    #[test]
    fn epoch_wraparound_wipes() {
        let mut c = EpochCache::new(4);
        c.set(0, 1);
        c.epoch = u32::MAX; // simulate many clears
        c.set(1, 2);
        assert_eq!(c.get(1), Some(2));
        c.clear();
        assert_eq!(c.get(0), None);
        assert_eq!(c.get(1), None);
        c.set(2, 3);
        assert_eq!(c.get(2), Some(3));
    }

    #[test]
    fn grow_preserves_semantics() {
        let mut c = EpochCache::new(2);
        c.set(1, 5);
        c.grow(100);
        assert_eq!(c.get(1), Some(5));
        assert_eq!(c.get(99), None);
        c.set(99, 9);
        assert_eq!(c.get(99), Some(9));
    }
}
