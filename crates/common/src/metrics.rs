//! Lightweight operational metrics: atomic counters, fixed-bucket
//! latency histograms, and a Prometheus-style text exposition.
//!
//! The serving tier (`batchhl-server`) and the oracle's own commit path
//! both record into these, so query/commit latency is observable with
//! or without a network front end. Everything is lock-free on the hot
//! path: a [`Counter`] is one relaxed atomic add, a [`Histogram`]
//! observation is two adds plus one bucket increment (bucket chosen by
//! a branchless scan over 17 fixed upper bounds).
//!
//! Metrics live in a [`Registry`]. The process-wide default registry
//! ([`global`]) is what the oracle facade records into; a server
//! typically creates its own registry per listening node so two nodes
//! in one process (e.g. a primary and a replica in a test) do not mix
//! their request counters, and renders both on `GET /metrics`.
//!
//! ```
//! use batchhl_common::metrics::Registry;
//! use std::time::Duration;
//!
//! let registry = Registry::new();
//! let hits = registry.counter("cache_hits_total");
//! hits.inc();
//! let lat = registry.histogram("query_latency_us");
//! lat.observe(Duration::from_micros(42));
//! let text = registry.render();
//! assert!(text.contains("cache_hits_total 1"));
//! assert!(text.contains("query_latency_us_count 1"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Histogram bucket upper bounds in microseconds (the last bucket is
/// `+Inf`). Chosen to resolve both sub-microsecond label lookups and
/// multi-second batch commits.
pub const BUCKET_BOUNDS_US: [u64; 16] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000, 1_000_000,
];

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency/size histogram (cumulative-bucket exposition,
/// microsecond domain).
#[derive(Debug)]
pub struct Histogram {
    /// Per-bucket (non-cumulative) counts; index `BUCKET_BOUNDS_US.len()`
    /// is the overflow (`+Inf`) bucket.
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one duration.
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one observation, given directly in microseconds (also
    /// used for unit-less sizes such as batch occupancy).
    #[inline]
    pub fn observe_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US.partition_point(|&b| b < us);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (µs).
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Mean observation in µs (0.0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_us() as f64 / n as f64
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the bucket counts:
    /// the upper bound of the bucket the quantile falls in (`+Inf`
    /// reports the largest finite bound). Coarse by construction —
    /// intended for dashboards and tests, not statistics.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return BUCKET_BOUNDS_US
                    .get(i)
                    .copied()
                    .unwrap_or(BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]);
            }
        }
        BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]
    }

    /// Non-cumulative bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> [u64; BUCKET_BOUNDS_US.len() + 1] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics with text exposition.
///
/// Lookup takes a mutex; hold the returned `Arc` instead of re-looking
/// up on hot paths.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a histogram.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            Metric::Histogram(_) => panic!("metric {name:?} is registered as a histogram"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a counter.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Counter(_) => panic!("metric {name:?} is registered as a counter"),
            Metric::Histogram(h) => Arc::clone(h),
        }
    }

    /// Render every metric in the Prometheus text exposition format
    /// (counters as `counter`, histograms as cumulative-bucket
    /// `histogram` families with `_bucket`/`_sum`/`_count` series; the
    /// microsecond domain is part of each histogram's name by
    /// convention, e.g. `*_latency_us`).
    pub fn render(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, metric) in inner.iter() {
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (i, &count) in counts.iter().enumerate() {
                        cumulative += count;
                        match BUCKET_BOUNDS_US.get(i) {
                            Some(bound) => out.push_str(&format!(
                                "{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"
                            )),
                            None => out
                                .push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n")),
                        }
                    }
                    out.push_str(&format!("{name}_sum {}\n", h.sum_us()));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                }
            }
        }
        out
    }
}

/// The process-wide default registry: what the oracle facade records
/// commit/query latency into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        let c = r.counter("requests_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name, same counter.
        assert_eq!(r.counter("requests_total").get(), 5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for us in [1, 3, 9, 40, 900, 2_000_000] {
            h.observe_us(us);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_us(), 1 + 3 + 9 + 40 + 900 + 2_000_000);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1, "1µs lands in le=1");
        assert_eq!(counts.last().copied().unwrap(), 1, "2s overflows to +Inf");
        assert_eq!(h.quantile_us(0.5), 10, "median bucket bound");
        assert!(h.quantile_us(1.0) >= 1_000_000);
        assert_eq!(Histogram::new().quantile_us(0.5), 0, "empty histogram");
    }

    #[test]
    fn bucket_boundary_is_inclusive() {
        let h = Histogram::new();
        h.observe_us(25);
        assert_eq!(h.bucket_counts()[4], 1, "25 lands in le=25, not le=50");
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let r = Registry::new();
        r.counter("a_total").add(7);
        r.histogram("lat_us").observe(Duration::from_micros(3));
        let text = r.render();
        assert!(text.contains("# TYPE a_total counter\na_total 7\n"));
        assert!(text.contains("# TYPE lat_us histogram\n"));
        assert!(text.contains("lat_us_bucket{le=\"5\"} 1"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_us_sum 3"));
        assert!(text.contains("lat_us_count 1"));
    }

    #[test]
    fn concurrent_observations_are_not_lost() {
        let r = Arc::new(Registry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    let c = r.counter("hits_total");
                    let h = r.histogram("obs_us");
                    for i in 0..1000 {
                        c.inc();
                        h.observe_us(i % 64);
                    }
                });
            }
        });
        assert_eq!(r.counter("hits_total").get(), 4000);
        assert_eq!(r.histogram("obs_us").count(), 4000);
    }
}
