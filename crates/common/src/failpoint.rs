//! Deterministic, test-controlled fault-injection points ("failpoints").
//!
//! The commit path of the oracle threads a handful of *named sites*
//! through its most failure-sensitive steps (WAL append, mid-repair,
//! checkpoint rename, …). A test arms a site with an [`Action`] — return
//! an error or panic — and the next time execution reaches that site the
//! action fires, byte-deterministically, with no file mangling or timing
//! games required.
//!
//! # Zero cost when disabled
//!
//! The whole registry only exists behind the `failpoints` cargo feature.
//! With the feature off (the default, and the configuration every
//! production build uses) [`check`] is an `#[inline(always)]` empty
//! function returning `Ok(())` — the optimizer erases the call entirely,
//! so instrumented code compiles to exactly what it was before.
//!
//! # Usage
//!
//! ```
//! use batchhl_common::failpoint;
//!
//! // In library code, at the fault-sensitive site:
//! fn append_record() -> Result<(), String> {
//!     failpoint::check("wal::before_append")?;
//!     // ... the real work ...
//!     Ok(())
//! }
//!
//! // In a test (requires `--features failpoints`):
//! #[cfg(feature = "failpoints")]
//! {
//!     let _guard = failpoint::arm("wal::before_append", failpoint::Action::Error);
//!     assert!(append_record().is_err());
//! }
//! // Guard dropped: the site is disarmed again.
//! # let _ = append_record();
//! ```
//!
//! Sites fire **once** per arming by default ([`Action::Error`],
//! [`Action::Panic`]); use `arm_times` to let a site fire on the Nth
//! hit instead of the first. The registry is global, so tests that arm
//! failpoints must serialize among themselves (the chaos suite holds a
//! test-local mutex for this).

/// What an armed failpoint does when execution reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// [`check`] returns `Err(site_name)` — models an I/O or logic error
    /// surfacing through the normal `Result` plumbing.
    Error,
    /// [`check`] panics with a message naming the site — models a bug or
    /// assertion failure in the middle of the operation.
    Panic,
}

#[cfg(feature = "failpoints")]
mod registry {
    use super::Action;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    struct Armed {
        action: Action,
        /// Hits remaining before the action fires (0 = fire on next hit).
        skip: u32,
        /// Whether the site stays armed after firing.
        fired: bool,
    }

    fn table() -> &'static Mutex<HashMap<&'static str, Armed>> {
        static TABLE: OnceLock<Mutex<HashMap<&'static str, Armed>>> = OnceLock::new();
        TABLE.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock() -> std::sync::MutexGuard<'static, HashMap<&'static str, Armed>> {
        // A panic *while holding this lock* never happens ([`check`]
        // releases the guard before panicking), but a panicking test
        // thread that armed a site can still poison unrelated state;
        // recover unconditionally — the map is always consistent.
        table().lock().unwrap_or_else(|e| e.into_inner())
    }

    /// RAII disarm: dropping the guard removes the site from the registry.
    pub struct ArmGuard {
        site: &'static str,
    }

    impl Drop for ArmGuard {
        fn drop(&mut self) {
            lock().remove(self.site);
        }
    }

    /// Arm `site` to fire `action` on the next hit. Returns a guard that
    /// disarms the site when dropped.
    #[must_use = "dropping the guard disarms the failpoint immediately"]
    pub fn arm(site: &'static str, action: Action) -> ArmGuard {
        arm_times(site, action, 0)
    }

    /// Arm `site` to fire `action` on the `(skip + 1)`-th hit, passing
    /// through the first `skip` hits unharmed.
    #[must_use = "dropping the guard disarms the failpoint immediately"]
    pub fn arm_times(site: &'static str, action: Action, skip: u32) -> ArmGuard {
        lock().insert(
            site,
            Armed {
                action,
                skip,
                fired: false,
            },
        );
        ArmGuard { site }
    }

    /// Disarm every site (belt-and-braces cleanup for tests).
    pub fn disarm_all() {
        lock().clear();
    }

    /// The instrumented sites call this; fires the armed action, if any.
    pub fn check(site: &str) -> Result<(), String> {
        let action = {
            let mut map = lock();
            match map.get_mut(site) {
                Some(armed) if !armed.fired => {
                    if armed.skip > 0 {
                        armed.skip -= 1;
                        return Ok(());
                    }
                    armed.fired = true;
                    armed.action
                }
                _ => return Ok(()),
            }
            // Guard dropped here, before any panic below.
        };
        match action {
            Action::Error => Err(format!("failpoint '{site}' injected error")),
            Action::Panic => panic!("failpoint '{site}' injected panic"),
        }
    }
}

#[cfg(feature = "failpoints")]
pub use registry::{arm, arm_times, check, disarm_all, ArmGuard};

/// No-op stand-in compiled when the `failpoints` feature is off: the
/// call inlines to nothing and instrumented code is unchanged.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn check(_site: &str) -> Result<(), String> {
    Ok(())
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    // The registry is process-global; keep these tests serialized.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unarmed_site_is_ok() {
        let _s = serial();
        assert!(check("tests::nothing").is_ok());
    }

    #[test]
    fn armed_error_fires_once() {
        let _s = serial();
        let _g = arm("tests::err", Action::Error);
        let err = check("tests::err").unwrap_err();
        assert!(err.contains("tests::err"));
        assert!(check("tests::err").is_ok(), "fires once, then passes");
    }

    #[test]
    fn guard_drop_disarms() {
        let _s = serial();
        {
            let _g = arm("tests::scoped", Action::Error);
            assert!(check("tests::scoped").is_err());
        }
        assert!(check("tests::scoped").is_ok());
    }

    #[test]
    fn skip_counts_hits() {
        let _s = serial();
        let _g = arm_times("tests::nth", Action::Error, 2);
        assert!(check("tests::nth").is_ok());
        assert!(check("tests::nth").is_ok());
        assert!(check("tests::nth").is_err());
        assert!(check("tests::nth").is_ok());
    }

    #[test]
    fn panic_action_panics_and_registry_survives() {
        let _s = serial();
        let _g = arm("tests::boom", Action::Panic);
        let caught = std::panic::catch_unwind(|| check("tests::boom"));
        assert!(caught.is_err());
        // Registry still usable afterwards (no lock poisoning escape).
        disarm_all();
        assert!(check("tests::boom").is_ok());
    }
}
