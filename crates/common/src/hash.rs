//! FxHash-style hashing for integer-keyed maps.
//!
//! The standard library's SipHash is HashDoS-resistant but slow for the
//! small integer keys that dominate this workspace (vertex ids, edge
//! pairs). This is the multiply-fold hash used by the Rust compiler
//! (`rustc-hash`), reimplemented here to keep the workspace free of
//! external runtime dependencies. HashDoS is not a concern: keys are
//! internal vertex ids, never attacker-controlled strings.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHasher`: a word-at-a-time multiply-rotate fold.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline(always)]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline(always)]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn finish(&self) -> u64 {
        self.hash
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m[&i], i * 2);
        }
        let s: FxHashSet<(u32, u32)> = (0..100).map(|i| (i, i + 1)).collect();
        assert!(s.contains(&(40, 41)));
        assert!(!s.contains(&(41, 40)));
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        // Nearby keys must not collide (sanity, not a statistical test).
        let hashes: FxHashSet<u64> = (0..10_000u64).map(h).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn byte_writes_match_padding_rules() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        // Different lengths of trailing zeros pad to the same word, which
        // is acceptable for our integer-key usage; just pin the behaviour.
        assert_eq!(a.finish(), b.finish());
    }
}
