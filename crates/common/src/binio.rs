//! Bounded binary-stream readers shared by the persistence formats.
//!
//! Every on-disk reader in the workspace (`batchhl_graph::io`,
//! `batchhl_hcl::serde_io`, `batchhl_core::persist`) follows the same
//! hardening policy: fixed-width integers are read with an explicit
//! error mapper, and bulk `u32` payloads are pulled in bounded chunks
//! so a corrupt length field makes the read fail at end-of-stream
//! instead of triggering a multi-GB up-front allocation. This module is
//! the single home of that policy — the format crates parameterize it
//! with their own typed error constructors.

use std::io::{self, Read};

/// Entries per bulk-read chunk (64 KiB of `u32`s): large enough to
/// amortize syscalls, small enough that corrupt headers cannot force a
/// huge allocation before the stream runs dry.
pub const CHUNK_ENTRIES: usize = 16 * 1024;

/// Read one little-endian `u64`, mapping failures through `err`.
pub fn read_u64<R: Read, E>(r: &mut R, err: impl Fn(io::Error) -> E) -> Result<u64, E> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(err)?;
    Ok(u64::from_le_bytes(b))
}

/// Read one little-endian `u32`, mapping failures through `err`.
pub fn read_u32<R: Read, E>(r: &mut R, err: impl Fn(io::Error) -> E) -> Result<u32, E> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(err)?;
    Ok(u32::from_le_bytes(b))
}

/// Read `count` little-endian `u32`s in bounded chunks, mapping
/// failures through `err`. Allocation tracks the data actually present
/// in the stream, never the (untrusted) `count`.
pub fn read_u32s<R: Read, E>(
    r: &mut R,
    count: usize,
    err: impl Fn(io::Error) -> E,
) -> Result<Vec<u32>, E> {
    let mut out = Vec::new();
    let mut buf = vec![0u8; CHUNK_ENTRIES.min(count.max(1)) * 4];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(CHUNK_ENTRIES);
        let bytes = &mut buf[..take * 4];
        r.read_exact(bytes).map_err(&err)?;
        out.extend(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        );
        remaining -= take;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_integers_and_bulk_payloads() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&9u32.to_le_bytes());
        for v in [1u32, 2, 3] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let mut r = bytes.as_slice();
        assert_eq!(read_u64(&mut r, |_| ()).unwrap(), 7);
        assert_eq!(read_u32(&mut r, |_| ()).unwrap(), 9);
        assert_eq!(read_u32s(&mut r, 3, |_| ()).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn huge_counts_fail_at_eof_without_huge_allocation() {
        let bytes = vec![0u8; 64];
        let mut r = bytes.as_slice();
        assert!(read_u32s(&mut r, 1 << 30, |_| "eof").is_err());
    }

    #[test]
    fn chunk_boundaries_are_exact() {
        let n = CHUNK_ENTRIES + 17;
        let mut bytes = Vec::with_capacity(n * 4);
        for v in 0..n as u32 {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let got = read_u32s(&mut bytes.as_slice(), n, |_| ()).unwrap();
        assert_eq!(got.len(), n);
        assert_eq!(got[CHUNK_ENTRIES], CHUNK_ENTRIES as u32);
    }
}
