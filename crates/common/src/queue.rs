//! Monotone bucket priority queues (Dial's structure).
//!
//! Both batch search and batch repair pop keys in non-decreasing order and
//! only ever push keys `≥` the last popped key (every pushed entry extends
//! a popped path by one edge, and the initial pushes all happen before the
//! first pop). That makes an array of buckets indexed by distance strictly
//! cheaper than a binary heap: O(1) push, amortized O(1) pop. The
//! `ablation_queue` bench quantifies the difference against
//! `std::collections::BinaryHeap`.
//!
//! Two concrete queues are provided:
//!
//! * [`DialQueue`] — keyed by plain distance (Algorithm 2, Algorithm 4's
//!   distance component),
//! * [`LexDialQueue`] — keyed by [`ExtLandmarkLength`] with four
//!   sub-buckets per distance so pops follow the full lexicographic
//!   `(d, l, e)` order (Algorithm 3).
//!
//! Both queues keep their bucket allocations alive across `clear` calls so
//! a single instance serves as a workhorse across landmarks and batches.

use crate::dist::{Dist, Vertex};
use crate::llen::ExtLandmarkLength;

/// Bucket queue over `(Dist, Vertex)` entries popped in non-decreasing
/// distance order.
#[derive(Debug, Default)]
pub struct DialQueue {
    buckets: Vec<Vec<Vertex>>,
    /// Index of the bucket the next pop will inspect.
    cursor: usize,
    len: usize,
}

impl DialQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Push an entry. `d` may be smaller than the current cursor only if
    /// the queue has not been popped yet; in debug builds a monotonicity
    /// violation panics.
    pub fn push(&mut self, d: Dist, v: Vertex) {
        let d = d as usize;
        debug_assert!(
            d >= self.cursor || self.len == 0,
            "non-monotone push: d={d} cursor={}",
            self.cursor
        );
        if d < self.cursor {
            // Defensive: restart scanning from the pushed bucket.
            self.cursor = d;
        }
        if d >= self.buckets.len() {
            self.buckets.resize_with(d + 1, Vec::new);
        }
        self.buckets[d].push(v);
        self.len += 1;
    }

    /// Pop a minimum-distance entry.
    pub fn pop(&mut self) -> Option<(Dist, Vertex)> {
        if self.len == 0 {
            return None;
        }
        while self.cursor < self.buckets.len() {
            if let Some(v) = self.buckets[self.cursor].pop() {
                self.len -= 1;
                return Some((self.cursor as Dist, v));
            }
            self.cursor += 1;
        }
        None
    }

    /// Empty the queue, retaining bucket allocations for reuse.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.cursor = 0;
        self.len = 0;
    }
}

/// Bucket queue over `(ExtLandmarkLength, Vertex)` entries popped in the
/// lexicographic `(d, l, e)` order of Definition 5.16 (with `True < False`
/// flag order). Each distance bucket holds four sub-buckets addressed by
/// [`ExtLandmarkLength::sub_bucket`].
#[derive(Debug, Default)]
pub struct LexDialQueue {
    buckets: Vec<[Vec<Vertex>; 4]>,
    cursor: usize,
    len: usize,
}

impl LexDialQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn push(&mut self, key: ExtLandmarkLength, v: Vertex) {
        let d = key.dist() as usize;
        debug_assert!(
            d >= self.cursor || self.len == 0,
            "non-monotone push: d={d} cursor={}",
            self.cursor
        );
        if d < self.cursor {
            self.cursor = d;
        }
        if d >= self.buckets.len() {
            self.buckets.resize_with(d + 1, Default::default);
        }
        self.buckets[d][key.sub_bucket()].push(v);
        self.len += 1;
    }

    /// Pop a lexicographically minimal entry, returning its full key.
    ///
    /// Entries within one `(d, l, e)` sub-bucket are interchangeable for
    /// the algorithms (their keys are equal), so LIFO order inside a
    /// sub-bucket is fine.
    pub fn pop(&mut self) -> Option<(ExtLandmarkLength, Vertex)> {
        if self.len == 0 {
            return None;
        }
        while self.cursor < self.buckets.len() {
            let bucket = &mut self.buckets[self.cursor];
            for (sub, list) in bucket.iter_mut().enumerate() {
                if let Some(v) = list.pop() {
                    self.len -= 1;
                    let through = sub < 2;
                    let deleted = sub & 1 == 0;
                    return Some((
                        ExtLandmarkLength::new(self.cursor as Dist, through, deleted),
                        v,
                    ));
                }
            }
            self.cursor += 1;
        }
        None
    }

    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            for sub in b {
                sub.clear();
            }
        }
        self.cursor = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn dial_pops_in_order() {
        let mut q = DialQueue::new();
        q.push(3, 30);
        q.push(1, 10);
        q.push(2, 20);
        q.push(1, 11);
        let mut out = Vec::new();
        while let Some((d, v)) = q.pop() {
            out.push((d, v));
        }
        let dists: Vec<Dist> = out.iter().map(|&(d, _)| d).collect();
        assert_eq!(dists, vec![1, 1, 2, 3]);
        assert!(out.contains(&(1, 10)) && out.contains(&(1, 11)));
    }

    #[test]
    fn dial_monotone_push_during_pops() {
        let mut q = DialQueue::new();
        q.push(0, 0);
        let (d, v) = q.pop().unwrap();
        assert_eq!((d, v), (0, 0));
        q.push(1, 1);
        q.push(2, 2);
        assert_eq!(q.pop().unwrap(), (1, 1));
        q.push(2, 3);
        assert_eq!(q.pop().unwrap().0, 2);
        assert_eq!(q.pop().unwrap().0, 2);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn dial_clear_reuses_buckets() {
        let mut q = DialQueue::new();
        q.push(5, 1);
        q.clear();
        assert!(q.is_empty());
        q.push(0, 2);
        assert_eq!(q.pop(), Some((0, 2)));
    }

    #[test]
    fn lex_pops_in_lexicographic_order() {
        let mut q = LexDialQueue::new();
        let keys = [
            ExtLandmarkLength::new(2, false, false),
            ExtLandmarkLength::new(1, false, true),
            ExtLandmarkLength::new(1, true, false),
            ExtLandmarkLength::new(1, true, true),
            ExtLandmarkLength::new(2, true, false),
        ];
        for (i, &k) in keys.iter().enumerate() {
            q.push(k, i as Vertex);
        }
        let mut popped = Vec::new();
        while let Some((k, _)) = q.pop() {
            popped.push(k);
        }
        let mut sorted = popped.clone();
        sorted.sort();
        assert_eq!(popped, sorted);
        assert_eq!(popped.len(), keys.len());
    }

    #[test]
    fn lex_pop_reconstructs_keys() {
        let mut q = LexDialQueue::new();
        for d in 0..4u32 {
            for l in [false, true] {
                for e in [false, true] {
                    q.push(ExtLandmarkLength::new(d, l, e), d * 4);
                }
            }
        }
        let mut n = 0;
        let mut last = None;
        while let Some((k, _)) = q.pop() {
            if let Some(prev) = last {
                assert!(prev <= k);
            }
            last = Some(k);
            n += 1;
        }
        assert_eq!(n, 16);
    }

    #[test]
    fn randomized_against_sorted_reference() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..50 {
            let mut q = DialQueue::new();
            let mut reference = Vec::new();
            for _ in 0..100 {
                let d = (rng.next_u64() % 32) as Dist;
                let v = (rng.next_u64() % 1000) as Vertex;
                q.push(d, v);
                reference.push(d);
            }
            reference.sort_unstable();
            let mut popped = Vec::new();
            while let Some((d, _)) = q.pop() {
                popped.push(d);
            }
            assert_eq!(popped, reference);
        }
    }
}
