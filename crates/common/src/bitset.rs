//! A bitset with sparse O(|set bits|) clearing.
//!
//! The affected-vertex sets of batch search are tiny relative to `|V|`
//! (that is the whole point of the paper — see Table 5), but membership
//! tests must be O(1) and the structure is reused once per landmark per
//! batch. `SparseBitSet` therefore pairs a word array with the list of
//! inserted indices: clearing walks the list instead of zeroing `|V|/64`
//! words.

use crate::dist::Vertex;

/// Fixed-capacity bitset that remembers which bits were set so it can be
/// cleared in time proportional to the number of insertions.
#[derive(Debug, Clone, Default)]
pub struct SparseBitSet {
    words: Vec<u64>,
    members: Vec<Vertex>,
}

impl SparseBitSet {
    pub fn new(capacity: usize) -> Self {
        SparseBitSet {
            words: vec![0; capacity.div_ceil(64)],
            members: Vec::new(),
        }
    }

    /// Number of addressable bits.
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Grow the addressable range to at least `capacity` bits.
    pub fn grow(&mut self, capacity: usize) {
        let words = capacity.div_ceil(64);
        if words > self.words.len() {
            self.words.resize(words, 0);
        }
    }

    /// Insert `v`; returns true iff it was not already present.
    #[inline]
    pub fn insert(&mut self, v: Vertex) -> bool {
        let (w, b) = (v as usize / 64, v as usize % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.members.push(v);
        true
    }

    #[inline(always)]
    pub fn contains(&self, v: Vertex) -> bool {
        let (w, b) = (v as usize / 64, v as usize % 64);
        self.words[w] & (1u64 << b) != 0
    }

    /// Remove `v` if present. The membership list keeps the stale entry;
    /// [`Self::iter`] filters it out lazily and [`Self::clear`] tolerates
    /// it, so removal stays O(1).
    #[inline]
    pub fn remove(&mut self, v: Vertex) -> bool {
        let (w, b) = (v as usize / 64, v as usize % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            return false;
        }
        self.words[w] &= !mask;
        true
    }

    /// Number of *live* members. O(members-inserted) when removals
    /// happened; O(1) otherwise is not guaranteed, so hot paths should
    /// track counts externally.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    pub fn is_empty(&self) -> bool {
        self.members.iter().all(|&v| !self.contains(v))
    }

    /// Iterate over live members in insertion order (deduplicated by
    /// construction: `insert` records each index once).
    pub fn iter(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.members.iter().copied().filter(|&v| self.contains(v))
    }

    /// All indices ever inserted since the last clear (whether or not
    /// they were removed since). Useful for iterating the affected set
    /// while it is being drained.
    pub fn inserted(&self) -> &[Vertex] {
        &self.members
    }

    /// Reset in O(insertions).
    pub fn clear(&mut self) {
        for &v in &self.members {
            self.words[v as usize / 64] = 0;
        }
        // Wholesale word zeroing above may clear neighbours in the same
        // word twice — harmless. Stale removed entries are covered too.
        self.members.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = SparseBitSet::new(200);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(130));
        assert!(s.contains(3));
        assert!(s.contains(130));
        assert!(!s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.contains(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![130]);
    }

    #[test]
    fn clear_is_complete() {
        let mut s = SparseBitSet::new(500);
        for v in [0u32, 1, 63, 64, 65, 127, 128, 499] {
            s.insert(v);
        }
        s.clear();
        for v in 0..500 {
            assert!(!s.contains(v), "bit {v} survived clear");
        }
        assert!(s.is_empty());
        // Reusable after clear.
        assert!(s.insert(64));
        assert!(s.contains(64));
    }

    #[test]
    fn grow_extends_range() {
        let mut s = SparseBitSet::new(10);
        s.grow(1000);
        assert!(s.insert(999));
        assert!(s.contains(999));
    }

    #[test]
    fn iter_insertion_order() {
        let mut s = SparseBitSet::new(100);
        for v in [5u32, 1, 99, 42] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 1, 99, 42]);
        assert_eq!(s.len(), 4);
    }
}
