//! Shared low-level kernels for the `batchhl` workspace.
//!
//! This crate contains the data-structure building blocks that the
//! highway-cover labelling, the batch-dynamic maintenance algorithms and
//! the baselines all share:
//!
//! * [`dist`] — the distance domain (`Dist`, the `INF` sentinel and
//!   saturating arithmetic on it),
//! * [`llen`] — packed *landmark lengths* and *extended landmark lengths*
//!   (Definitions 5.13 and 5.16 of the BatchHL paper) with the paper's
//!   `True < False` flag ordering baked into a single integer comparison,
//! * [`queue`] — Dial-style monotone bucket priority queues keyed by
//!   distance (plus lexicographic sub-buckets for extended lengths),
//! * [`bitset`] — a sparse-clearing bitset used for affected-vertex sets,
//! * [`cache`] — an epoch-stamped memoization array used as the
//!   old-distance oracle cache during batch search/repair,
//! * [`hash`] — an FxHash-style fast hasher for integer-keyed maps,
//! * [`checksum`] — CRC-32 used by the on-disk persistence formats
//!   (checkpoints and the batch write-ahead log),
//! * [`binio`] — bounded binary-stream readers shared by those formats
//!   (chunked bulk reads so corrupt headers cannot force allocations),
//! * [`rng`] — a tiny deterministic SplitMix64 generator for internal
//!   shuffling that must not depend on external crates,
//! * [`failpoint`] — deterministic fault-injection sites for the chaos
//!   test suite (compiled out entirely unless the `failpoints` feature
//!   is on),
//! * [`metrics`] — atomic counters and fixed-bucket latency histograms
//!   with Prometheus-style text exposition, recorded into by the
//!   oracle's commit path and the `batchhl-server` serving tier.
//!
//! Everything here is deliberately free of dependencies so that the hot
//! paths of the index are fully under our control.

pub mod binio;
pub mod bitset;
pub mod cache;
pub mod checksum;
pub mod dist;
pub mod failpoint;
pub mod hash;
pub mod llen;
pub mod metrics;
pub mod queue;
pub mod rng;

pub use bitset::SparseBitSet;
pub use cache::EpochCache;
pub use checksum::{crc32, Crc32, Crc32Reader, Crc32Writer};
pub use dist::{dist_add1, Dist, Vertex, INF};
pub use hash::{FxHashMap, FxHashSet};
pub use llen::{ExtLandmarkLength, LandmarkLength};
pub use queue::{DialQueue, LexDialQueue};
pub use rng::SplitMix64;
