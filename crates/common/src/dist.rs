//! The distance domain shared by every index in the workspace.
//!
//! Distances are hop counts on unweighted graphs (the paper's setting);
//! `u32` leaves ample headroom for the weighted extension. Unreachable
//! pairs are represented by the absorbing sentinel [`INF`]: all arithmetic
//! on distances must go through [`dist_add1`] (or `saturating_add`), which
//! keeps `INF` a fixed point so that "∞ + 1 = ∞" holds without branches.

/// Vertex identifier. Dense `0..n` indices; 32 bits keep adjacency lists,
/// label rows and queues compact (see the type-size guidance in the Rust
/// performance guide).
pub type Vertex = u32;

/// Shortest-path distance (number of edges on unweighted graphs).
pub type Dist = u32;

/// Sentinel distance for unreachable pairs. Absorbing under
/// [`dist_add1`].
pub const INF: Dist = u32::MAX;

/// `d + 1` with `INF` as an absorbing element.
#[inline(always)]
pub fn dist_add1(d: Dist) -> Dist {
    d.saturating_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inf_is_absorbing() {
        assert_eq!(dist_add1(INF), INF);
        assert_eq!(dist_add1(INF - 1), INF);
        assert_eq!(dist_add1(0), 1);
        assert_eq!(dist_add1(41), 42);
    }

    #[test]
    fn inf_compares_greater_than_any_real_distance() {
        for d in [0u32, 1, 100, 1 << 20] {
            assert!(d < INF);
        }
    }
}
