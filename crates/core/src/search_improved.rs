//! Improved batch search (Algorithm 3): find the LD-affected vertices.
//!
//! The basic search returns every vertex whose *set of shortest paths*
//! changes, but batch repair only needs the vertices whose **label or
//! landmark distance** changes (Definition 5.12, *LD-affected*). The
//! improved search tracks *extended landmark lengths* `(d, l, e)`
//! (Definition 5.16) — hop count, landmark flag and deletion flag — and
//! prunes with the β test of Lemma 5.17:
//!
//! > follow a path into `w` only if its extended landmark length is
//! > `≤ β(r, w) = (d^L_G(r, w), True)`.
//!
//! Unpacking the packed comparison (see `batchhl-common::llen`): an
//! insertion-only path survives iff its landmark length is *strictly*
//! smaller than the old landmark distance; a deletion-carrying path
//! survives iff it is `≤` — exactly the two pruning conditions of
//! Section 5.2. The paper's pseudocode omits the test for the initial
//! anchor pushes, but its worked example 5.9(a) requires it, so we apply
//! the same β test there too (DESIGN.md, "β-pruning at every push").
//! Example 5.9(c) (deleting one of two equal-landmark-length shortest
//! paths) is *not* prunable by the β test alone: detecting that the
//! surviving path makes the deleted one redundant would require reading
//! neighbour distances that other updates in the same batch may have
//! invalidated. We keep the conservative superset — Theorem 5.21 only
//! needs `V_aff ⊇` LD-affected, and repair leaves such labels unchanged.
//!
//! The queue pops in full lexicographic `(d, l, e)` order with
//! `True < False`: among equal-length paths, landmark-covered and
//! deletion-carrying ones first, so a vertex is finalized with the
//! strongest available evidence (Lemma 5.18's proof relies on this).

use crate::workspace::{dl_old, UpdateWorkspace};
use batchhl_graph::{AdjacencyView, Update};
use batchhl_hcl::Labelling;

/// Run Algorithm 3 for landmark `i`; see [`crate::search::batch_search`]
/// for the parameter contract (same shape, tighter output).
pub fn batch_search_improved<A: AdjacencyView>(
    lab: &Labelling,
    g: &A,
    batch: &[Update],
    i: usize,
    directed: bool,
    ws: &mut UpdateWorkspace,
) {
    ws.aff.clear();
    ws.lex_queue.clear();

    // Anchor seeding (lines 2–7) with the β test applied.
    for u in batch {
        let (a, b) = u.endpoints();
        let deleted = u.is_delete();
        let la = dl_old(lab, i, a, &mut ws.dl_cache);
        let lb = dl_old(lab, i, b, &mut ws.dl_cache);
        if la.dist() < lb.dist() {
            let cand = la.extend(lab.is_landmark(b)).with_deleted(deleted);
            if cand <= lb.with_deleted(true) {
                ws.lex_queue.push(cand, b);
            }
        } else if lb.dist() < la.dist() && !directed {
            let cand = lb.extend(lab.is_landmark(a)).with_deleted(deleted);
            if cand <= la.with_deleted(true) {
                ws.lex_queue.push(cand, a);
            }
        }
    }

    // Pruned traversal (lines 8–15).
    while let Some((key, v)) = ws.lex_queue.pop() {
        if !ws.aff.insert(v) {
            continue;
        }
        for &w in g.out_neighbors(v) {
            let cand = key.extend(lab.is_landmark(w));
            let beta = dl_old(lab, i, w, &mut ws.dl_cache).with_deleted(true);
            if cand <= beta {
                ws.lex_queue.push(cand, w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::batch_search;
    use batchhl_common::Vertex;
    use batchhl_graph::generators::{erdos_renyi_gnm, path};
    use batchhl_graph::{Batch, DynamicGraph};
    use batchhl_hcl::{build_labelling, LandmarkSelection};

    fn setup(
        g0: &DynamicGraph,
        landmarks: Vec<Vertex>,
        batch: Batch,
    ) -> (Labelling, DynamicGraph, Batch) {
        let lab = build_labelling(g0, landmarks).unwrap();
        let norm = batch.normalize(g0);
        let mut g1 = g0.clone();
        g1.apply_batch(&norm);
        (lab, g1, norm)
    }

    fn affected_improved(
        lab: &Labelling,
        g1: &DynamicGraph,
        batch: &Batch,
        i: usize,
    ) -> Vec<Vertex> {
        let mut ws = UpdateWorkspace::new(g1.num_vertices());
        batch_search_improved(lab, g1, batch.updates(), i, false, &mut ws);
        let mut v: Vec<Vertex> = ws.aff.iter().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn example_5_9a_insertion_with_equal_path_is_pruned() {
        // Example 5.9(a): r-a, r-b, a-v; insert (b, v). The new path
        // r-b-v has the same landmark length (2, False) as the existing
        // r-a-v, so v's label does not change — improved search prunes
        // it; basic search would return it.
        let (r, a, b, v) = (0u32, 1u32, 2u32, 3u32);
        let g0 = DynamicGraph::from_edges(4, &[(r, a), (r, b), (a, v)]);
        let mut batch = Batch::new();
        batch.insert(b, v);
        let (lab, g1, norm) = setup(&g0, vec![r], batch);
        assert!(affected_improved(&lab, &g1, &norm, 0).is_empty());

        let mut ws = UpdateWorkspace::new(4);
        batch_search(&lab, &g1, norm.updates(), 0, false, &mut ws);
        assert_eq!(ws.aff.iter().collect::<Vec<_>>(), vec![v]);
    }

    #[test]
    fn example_5_9b_insertion_creating_landmark_cover_is_kept() {
        // Example 5.9(b): same shape but b is a landmark: the new path
        // r-b-v passes through landmark b, so its landmark length
        // (2, True) < (2, False) — v's r-label must be deleted, and the
        // improved search returns v.
        let (r, a, b, v) = (0u32, 1u32, 2u32, 3u32);
        let g0 = DynamicGraph::from_edges(4, &[(r, a), (r, b), (a, v)]);
        let mut batch = Batch::new();
        batch.insert(b, v);
        let (lab, g1, norm) = setup(&g0, vec![r, b], batch);
        assert_eq!(affected_improved(&lab, &g1, &norm, 0), vec![v]);
    }

    #[test]
    fn example_5_9c_deletion_of_redundant_path_is_pruned() {
        // Example 5.9(c): r-a, r-b, a-v, b-v; delete (b, v). The deleted
        // path r-b-v has landmark length (2, False) equal to the
        // remaining r-a-v, still (2, False): no label change... but the
        // deletion rule keeps candidates with |p|ₗ ≤ d^L. Deleted path
        // length (2,False) == d^L(r,v)=(2,False): *kept* by ≤? The
        // paper says v is NOT returned in case (c). The anchor push for
        // v is (d^L(r,b) ⊕ v, e=True) = (2, False, True) and β(r, v) =
        // ((2, False), True): candidate == β, so it *is* pushed and v is
        // returned — conservatively correct (superset). The paper's
        // claim concerns the *label* not changing, which repair
        // confirms. We pin the conservative behaviour here.
        let (r, a, b, v) = (0u32, 1u32, 2u32, 3u32);
        let g0 = DynamicGraph::from_edges(4, &[(r, a), (r, b), (a, v), (b, v)]);
        let mut batch = Batch::new();
        batch.delete(b, v);
        let (lab, g1, norm) = setup(&g0, vec![r], batch);
        assert_eq!(affected_improved(&lab, &g1, &norm, 0), vec![v]);
    }

    #[test]
    fn example_5_9d_deletion_removing_landmark_cover_is_kept() {
        // Example 5.9(d): b is a landmark, delete (b, v): the deleted
        // path was the landmark-covered one; v's r-label must be
        // restored. Improved search returns v.
        let (r, a, b, v) = (0u32, 1u32, 2u32, 3u32);
        let g0 = DynamicGraph::from_edges(4, &[(r, a), (r, b), (a, v), (b, v)]);
        let mut batch = Batch::new();
        batch.delete(b, v);
        let (lab, g1, norm) = setup(&g0, vec![r, b], batch);
        assert_eq!(affected_improved(&lab, &g1, &norm, 0), vec![v]);
    }

    #[test]
    fn improved_is_subset_of_basic() {
        for seed in 0..10 {
            let g0 = erdos_renyi_gnm(60, 140, seed);
            let lms = LandmarkSelection::TopDegree(4).select(&g0);
            let lab = build_labelling(&g0, lms).unwrap();
            let mut batch = Batch::new();
            // Mixed batch derived from the seed.
            for k in 0..10u32 {
                let a = (seed as u32 * 7 + k * 13) % 60;
                let b = (seed as u32 * 11 + k * 17) % 60;
                if a != b {
                    if g0.has_edge(a, b) {
                        batch.delete(a, b);
                    } else {
                        batch.insert(a, b);
                    }
                }
            }
            let norm = batch.normalize(&g0);
            let mut g1 = g0.clone();
            g1.apply_batch(&norm);
            let mut ws = UpdateWorkspace::new(60);
            for i in 0..lab.num_landmarks() {
                batch_search(&lab, &g1, norm.updates(), i, false, &mut ws);
                let basic: std::collections::BTreeSet<Vertex> = ws.aff.iter().collect();
                batch_search_improved(&lab, &g1, norm.updates(), i, false, &mut ws);
                let improved: std::collections::BTreeSet<Vertex> = ws.aff.iter().collect();
                assert!(
                    improved.is_subset(&basic),
                    "seed {seed} landmark {i}: improved ⊄ basic"
                );
            }
        }
    }

    #[test]
    fn example_5_22_affected_sets() {
        // The paper's full worked example. Graph (landmarks r1, r2):
        //   a - b,  b - r1?  … edges: a-b? The figure shows
        //   top row: a, b, r1, c, r2, d ; bottom row: e, f, g, h, i
        //   edges: a-b(top-left pair), b-r1, r1-c, c-r2, r2-d,
        //          a-e? The example's labelling table gives:
        //   L(a)=(r1,1)... meaning a is adjacent to r1.
        // Reconstruction consistent with the stated labelling and the
        // stated affected sets:
        //   d(r1): a=1 b=1 c=1 d=2 e=1 f=2 g=3 h=? i=?
        // Use the published labelling: a:(r1,1) b:(r1,1) c:(r1,1)(r2,1)
        //   d:(r2,1) e:(r1,1)? … e:(r1,2)? The table is garbled in the
        // text; instead of replaying it literally we check the *stable*
        // claims: improved ⊆ basic and repair-to-minimality (covered by
        // index-level tests). Here: batch = {-(r1,f), +(a,e)?…} — skip
        // literal replay, assert subset on a randomized perturbation of
        // a two-landmark graph instead.
        let g0 = erdos_renyi_gnm(40, 80, 99);
        let lms = LandmarkSelection::TopDegree(2).select(&g0);
        let lab = build_labelling(&g0, lms.clone()).unwrap();
        let mut batch = Batch::new();
        batch.delete(lms[0], *g0.neighbors(lms[0]).first().unwrap());
        batch.insert(5, 23);
        let norm = batch.normalize(&g0);
        let mut g1 = g0.clone();
        g1.apply_batch(&norm);
        let mut ws = UpdateWorkspace::new(40);
        for i in 0..lab.num_landmarks() {
            batch_search(&lab, &g1, norm.updates(), i, false, &mut ws);
            let basic: std::collections::BTreeSet<Vertex> = ws.aff.iter().collect();
            batch_search_improved(&lab, &g1, norm.updates(), i, false, &mut ws);
            let improved: std::collections::BTreeSet<Vertex> = ws.aff.iter().collect();
            assert!(improved.is_subset(&basic));
        }
    }

    #[test]
    fn no_false_negatives_on_distance_changes() {
        // Every vertex whose distance to the landmark actually changes
        // must be returned (Lemma 5.18).
        use batchhl_graph::bfs::bfs_distances;
        for seed in 0..10u64 {
            let g0 = erdos_renyi_gnm(50, 100, seed);
            let lab = build_labelling(&g0, vec![0]).unwrap();
            let mut batch = Batch::new();
            for k in 0..8u32 {
                let a = (seed as u32 * 3 + k * 19) % 50;
                let b = (seed as u32 * 5 + k * 23) % 50;
                if a != b {
                    if g0.has_edge(a, b) {
                        batch.delete(a, b);
                    } else {
                        batch.insert(a, b);
                    }
                }
            }
            let norm = batch.normalize(&g0);
            let mut g1 = g0.clone();
            g1.apply_batch(&norm);
            let d0 = bfs_distances(&g0, 0);
            let d1 = bfs_distances(&g1, 0);
            let aff = affected_improved(&lab, &g1, &norm, 0);
            let aff: std::collections::BTreeSet<Vertex> = aff.into_iter().collect();
            for v in 0..50u32 {
                if d0[v as usize] != d1[v as usize] {
                    assert!(
                        aff.contains(&v),
                        "seed {seed}: vertex {v} distance changed {} -> {} but not returned",
                        d0[v as usize],
                        d1[v as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn path_insertion_prunes_equal_length_rewire() {
        // Counterpart of the basic-search test: insert (0, 3) into the
        // path. Vertex 2's new path 0-3-2 has equal landmark length, so
        // the improved search prunes it; 3 and 4 truly change distance.
        let g0 = path(5);
        let mut batch = Batch::new();
        batch.insert(0, 3);
        let (lab, g1, norm) = setup(&g0, vec![0], batch);
        assert_eq!(affected_improved(&lab, &g1, &norm, 0), vec![3, 4]);
    }
}
