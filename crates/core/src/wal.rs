//! Batch write-ahead log: durable `Edit` batches between checkpoints.
//!
//! Every committed update session appends its edit list as one record
//! *before* the batch is applied to the index. A restart then loads the
//! newest `BHL2` checkpoint ([`crate::persist`]) and replays the log
//! tail, landing on exactly the state the writer had acknowledged.
//!
//! # Record framing (all integers little-endian)
//!
//! ```text
//! file header: magic "BWAL" | u8 version = 3 | u8 ×3 reserved (0)
//! record:      u32 payload_len | u32 CRC-32(payload) | payload
//! payload:     u8 kind | kind-specific body
//!   kind 0 (batch):     u64 seq | u32 edit_count | edit_count × edit
//!   kind 1 (abort):     u64 seq
//!   kind 2 (txn batch): u64 seq | u64 txn_session | u64 txn_counter
//!                       | u32 edit_count | edit_count × edit
//! edit:        u8 tag | u32 a | u32 b [| u32 w]
//!              tag 0 = Insert, 1 = InsertWeighted (w), 2 = Remove,
//!              tag 3 = SetWeight (w)
//! ```
//!
//! Older logs keep decoding — recovery dispatches on the header
//! version byte. Version-1 payloads carry no `kind` byte (every
//! payload is a batch body); version-2 framing is identical to
//! version 3 minus the `kind 2` txn-stamped batch record. New logs are
//! always written as version 3, and opening an older log for *append*
//! first rewrites it at the current version (crash-atomically, via a
//! sibling temp file renamed into place): mixing framed records from a
//! newer generation into an old file would hand a strict old reader
//! records it either mis-decodes (v1 consumes the kind byte as part of
//! `seq`) or refuses (v2 treats kind 2 as corruption).
//!
//! `seq` is the number of batches committed before this one (the
//! checkpoint's `batch_seq` cursor): replay applies exactly the records
//! with `seq >= checkpoint.batch_seq`, so a checkpoint written *after*
//! some WAL records does not cause double application.
//!
//! # Abort records
//!
//! A batch record is appended *before* the batch is applied, so a batch
//! that subsequently fails (or panics) mid-application is already
//! durable. The commit path cancels it by appending an **abort record**
//! carrying the same `seq`: recovery drops the most recent batch record
//! with that `seq` and replays as if it was never logged. Cancellation
//! is a record rather than a truncation deliberately — once an append
//! has been fsynced the bytes may have been observed (e.g. by a replica
//! tailing the log), so taking the batch back must itself be an
//! append-only, checksummed event.
//!
//! # Torn vs. corrupt
//!
//! Recovery distinguishes two failure shapes:
//!
//! * **Torn tail** — the file ends mid-record (a crash during append),
//!   *or* the final record is length-complete but fails its checksum
//!   (an unsynced append whose pages were written back out of order —
//!   possible under the relaxed fsync policies). The tail record is
//!   dropped and the file truncated back to the last good record;
//!   everything before it replays.
//! * **Corrupt record** — a record *before* the tail fails its checksum
//!   or structure (bit rot, tampering). A crash cannot damage the
//!   middle of an append-only log, so recovery refuses with a typed
//!   [`PersistError::WalCorrupt`] rather than guessing.

use crate::backend::Edit;
use crate::persist::PersistError;
use batchhl_common::crc32;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"BWAL";
const WAL_VERSION: u8 = 3;
/// Middle format generation (kind bytes, no txn-stamped batches):
/// still readable, never written.
const V2_WAL_VERSION: u8 = 2;
/// Oldest format generation (no record-kind byte, batch bodies only):
/// still readable, never written.
const LEGACY_WAL_VERSION: u8 = 1;
const HEADER_LEN: u64 = 8;
/// Upper bound on one record's payload (64 MiB ≈ 5.3M edits): anything
/// larger is treated as corruption, not an allocation request. The
/// writer enforces the same bound on append so it can never produce a
/// log its own reader refuses.
const MAX_PAYLOAD: u32 = 64 << 20;

const KIND_BATCH: u8 = 0;
const KIND_ABORT: u8 = 1;
const KIND_BATCH_TXN: u8 = 2;

/// Route a failpoint trigger into the persistence error channel.
fn fail(site: &str) -> Result<(), PersistError> {
    batchhl_common::failpoint::check(site).map_err(|m| PersistError::Io(std::io::Error::other(m)))
}

/// Client-chosen idempotency key for one logical commit: a random
/// per-client `session` id plus a per-commit `counter`. A retried
/// commit reuses the same `TxnId`, which is how the oracle's dedup
/// table (and, durably, the WAL) distinguishes "the same commit sent
/// again because the response was lost" from a genuinely new batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxnId {
    /// Random per-client session identifier.
    pub session: u64,
    /// Monotonic per-session commit counter.
    pub counter: u64,
}

/// One recovered WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Batches committed before this one (the replay cursor).
    pub seq: u64,
    pub edits: Vec<Edit>,
    /// Idempotency key the committing client stamped on the batch, if
    /// any (`kind 2` records; plain `kind 0` batches carry none).
    pub txn: Option<TxnId>,
}

/// What recovery found in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalRecovery {
    /// Bytes of a torn final record that were dropped and truncated
    /// away (0 for a cleanly closed log).
    pub torn_bytes: u64,
    /// File length after recovery.
    pub valid_len: u64,
    /// Batch records cancelled by a later abort record (their edits are
    /// excluded from replay).
    pub aborted_batches: u64,
}

/// Append-side handle on a WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
}

impl WalWriter {
    /// Create (or truncate) a fresh, empty log.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(MAGIC)?;
        file.write_all(&[WAL_VERSION, 0, 0, 0])?;
        file.sync_all()?;
        Ok(WalWriter { file, path })
    }

    /// Open an existing log for appending (creating an empty one if the
    /// file does not exist). The caller is expected to have run
    /// [`recover_wal`] first so a torn tail has been truncated away.
    ///
    /// A file shorter than the 8-byte header (a crash during creation,
    /// recovered to length 0) is rewritten from scratch — appending to
    /// a headerless file would make every later record unreadable. An
    /// older-generation log (version 1 or 2) is upgraded to the current
    /// version before the append handle is returned: appending
    /// current-generation framed records behind an old header would
    /// hand a strict old reader records it mis-decodes (v1) or refuses
    /// as corruption (v2 seeing a txn-stamped batch).
    pub fn open_append(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let path = path.as_ref().to_path_buf();
        match std::fs::metadata(&path) {
            Ok(meta) if meta.len() >= HEADER_LEN => {
                let mut header = [0u8; HEADER_LEN as usize];
                File::open(&path)?.read_exact(&mut header)?;
                if &header[0..4] != MAGIC {
                    return Err(PersistError::BadMagic {
                        expected: *MAGIC,
                        found: [header[0], header[1], header[2], header[3]],
                    });
                }
                match header[4] {
                    WAL_VERSION => {}
                    LEGACY_WAL_VERSION | V2_WAL_VERSION => upgrade_wal(&path)?,
                    found => return Err(PersistError::UnsupportedVersion { found }),
                }
                let file = OpenOptions::new().append(true).open(&path)?;
                Ok(WalWriter { file, path })
            }
            Ok(_) => Self::create(path),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Self::create(path),
            Err(e) => Err(e.into()),
        }
    }

    /// Append one batch record; `sync` forces the bytes to disk before
    /// returning (the write-ahead guarantee).
    ///
    /// The append is all-or-nothing: a batch whose encoded payload would
    /// exceed the reader's `MAX_PAYLOAD` bound (64 MiB) is refused with a typed
    /// [`PersistError::RecordTooLarge`] before any byte is written, and
    /// an I/O failure (or panic) mid-append rolls the file back to its
    /// pre-append length *through this writer's own handle* — cursor
    /// included — so no torn record is left behind and the writer keeps
    /// appending at the rolled-back end of the log.
    pub fn append(&mut self, seq: u64, edits: &[Edit], sync: bool) -> Result<(), PersistError> {
        self.append_txn(seq, edits, None, sync)
    }

    /// Append one batch record carrying an optional client idempotency
    /// key. A `txn`-stamped batch is written as a `kind 2` record so
    /// replay can rebuild the commit dedup table; `None` produces the
    /// same plain `kind 0` record [`append`](Self::append) writes.
    pub fn append_txn(
        &mut self,
        seq: u64,
        edits: &[Edit],
        txn: Option<TxnId>,
        sync: bool,
    ) -> Result<(), PersistError> {
        fail("wal::before_append")?;
        let mut payload = Vec::with_capacity(29 + 13 * edits.len());
        match txn {
            None => payload.push(KIND_BATCH),
            Some(t) => {
                payload.push(KIND_BATCH_TXN);
                payload.extend_from_slice(&seq.to_le_bytes());
                payload.extend_from_slice(&t.session.to_le_bytes());
                payload.extend_from_slice(&t.counter.to_le_bytes());
                payload.extend_from_slice(&(edits.len() as u32).to_le_bytes());
                encode_edits(&mut payload, edits);
                return self.append_payload(&payload, sync);
            }
        }
        encode_batch_body(&mut payload, seq, edits);
        self.append_payload(&payload, sync)
    }

    /// Append an abort record cancelling the batch record with `seq`.
    ///
    /// Replay treats the pair as if the batch was never logged; see the
    /// module docs for why cancellation is an append, not a truncation.
    pub fn append_abort(&mut self, seq: u64, sync: bool) -> Result<(), PersistError> {
        let mut payload = Vec::with_capacity(9);
        payload.push(KIND_ABORT);
        payload.extend_from_slice(&seq.to_le_bytes());
        self.append_payload(&payload, sync)
    }

    fn append_payload(&mut self, payload: &[u8], sync: bool) -> Result<(), PersistError> {
        if payload.len() as u64 > MAX_PAYLOAD as u64 {
            return Err(PersistError::RecordTooLarge {
                len: payload.len() as u64,
                max: MAX_PAYLOAD as u64,
            });
        }
        // All-or-nothing: on any exit other than success (error return
        // *or* unwind), roll the file back to its pre-append length so
        // recovery never sees a half-written, unacknowledged record.
        let start = self.file.metadata()?.len();
        let guard = RewindOnDrop {
            file: &self.file,
            len: start,
        };
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let mut f: &File = &self.file;
        f.write_all(&frame)?;
        fail("wal::after_write_before_sync")?;
        if sync {
            self.file.sync_data()?;
        }
        std::mem::forget(guard);
        Ok(())
    }

    /// Force everything appended so far to disk.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.file.sync_data()?;
        Ok(())
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Best-effort file rollback for a failed append; disarmed with
/// `mem::forget` on success.
///
/// The rollback goes through the writer's *own handle*, never the
/// path: truncating via a second descriptor would leave this handle's
/// write cursor stranded past the new EOF, and the next append through
/// a non-`O_APPEND` handle (the [`WalWriter::create`] path) would fill
/// the gap with zeroes — a frame recovery decodes as mid-log
/// corruption, making the whole directory unopenable. `set_len` plus a
/// seek back to the rolled-back length keeps the handle usable, which
/// is exactly what the append contract promises after a failure.
struct RewindOnDrop<'a> {
    file: &'a File,
    len: u64,
}

impl Drop for RewindOnDrop<'_> {
    fn drop(&mut self) {
        let _ = self.file.set_len(self.len);
        let mut f = self.file;
        let _ = f.seek(SeekFrom::Start(self.len));
        let _ = self.file.sync_data();
    }
}

/// Rewrite an older-generation log at the current version so framed
/// records can be appended behind it. Crash-atomic: the new twin is
/// fully written and synced beside the original, then renamed over it
/// — a crash at any point leaves either the old readable file or the
/// new one. Record *semantics* are preserved exactly: recovery has
/// already folded abort records into the surviving batch list, so each
/// survivor re-encodes as a batch (keeping its txn stamp when the
/// source version carried one).
fn upgrade_wal(path: &Path) -> Result<(), PersistError> {
    let (records, _) = recover_wal(path)?;
    let tmp = path.with_extension("upgrade.tmp");
    let mut w = WalWriter::create(&tmp)?;
    for rec in &records {
        w.append_txn(rec.seq, &rec.edits, rec.txn, false)?;
    }
    w.file.sync_all()?;
    drop(w);
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself (best effort — not all platforms
        // let a directory be fsynced).
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn encode_batch_body(out: &mut Vec<u8>, seq: u64, edits: &[Edit]) {
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(edits.len() as u32).to_le_bytes());
    encode_edits(out, edits);
}

fn encode_edits(out: &mut Vec<u8>, edits: &[Edit]) {
    for &e in edits {
        match e {
            Edit::Insert(a, b) => {
                out.push(0);
                out.extend_from_slice(&a.to_le_bytes());
                out.extend_from_slice(&b.to_le_bytes());
            }
            Edit::InsertWeighted(a, b, w) => {
                out.push(1);
                out.extend_from_slice(&a.to_le_bytes());
                out.extend_from_slice(&b.to_le_bytes());
                out.extend_from_slice(&w.to_le_bytes());
            }
            Edit::Remove(a, b) => {
                out.push(2);
                out.extend_from_slice(&a.to_le_bytes());
                out.extend_from_slice(&b.to_le_bytes());
            }
            Edit::SetWeight(a, b, w) => {
                out.push(3);
                out.extend_from_slice(&a.to_le_bytes());
                out.extend_from_slice(&b.to_le_bytes());
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
}

/// One decoded record: either a batch to replay or an abort cancelling
/// a prior batch with the same `seq`.
enum DecodedRecord {
    Batch(WalRecord),
    Abort { seq: u64 },
}

/// Decode one record payload. `version` selects the framing: legacy v1
/// payloads are bare batch bodies; v2 payloads carry a leading kind.
fn decode_payload(bytes: &[u8], offset: u64, version: u8) -> Result<DecodedRecord, PersistError> {
    let corrupt = |reason: String| PersistError::WalCorrupt { offset, reason };
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8], PersistError> {
        if pos + n > bytes.len() {
            return Err(corrupt(format!(
                "payload ends inside a field (need {n} bytes at {pos}, have {})",
                bytes.len()
            )));
        }
        let s = &bytes[pos..pos + n];
        pos += n;
        Ok(s)
    };
    let mut txn = None;
    if version >= V2_WAL_VERSION {
        match take(1)?[0] {
            KIND_BATCH => {}
            KIND_ABORT => {
                let seq = u64::from_le_bytes(take(8)?.try_into().unwrap());
                if pos != bytes.len() {
                    return Err(corrupt(format!(
                        "{} trailing bytes after abort record",
                        bytes.len() - pos
                    )));
                }
                return Ok(DecodedRecord::Abort { seq });
            }
            KIND_BATCH_TXN if version >= WAL_VERSION => {
                let seq = u64::from_le_bytes(take(8)?.try_into().unwrap());
                let session = u64::from_le_bytes(take(8)?.try_into().unwrap());
                let counter = u64::from_le_bytes(take(8)?.try_into().unwrap());
                txn = Some((seq, TxnId { session, counter }));
            }
            other => return Err(corrupt(format!("unknown record kind {other}"))),
        }
    }
    let (seq, txn) = match txn {
        Some((seq, t)) => (seq, Some(t)),
        None => (u64::from_le_bytes(take(8)?.try_into().unwrap()), None),
    };
    let count = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
    let mut edits = Vec::with_capacity(count.min(bytes.len() / 9));
    for _ in 0..count {
        let tag = take(1)?[0];
        let a = u32::from_le_bytes(take(4)?.try_into().unwrap());
        let b = u32::from_le_bytes(take(4)?.try_into().unwrap());
        edits.push(match tag {
            0 => Edit::Insert(a, b),
            2 => Edit::Remove(a, b),
            1 | 3 => {
                let w = u32::from_le_bytes(take(4)?.try_into().unwrap());
                if tag == 1 {
                    Edit::InsertWeighted(a, b, w)
                } else {
                    Edit::SetWeight(a, b, w)
                }
            }
            other => return Err(corrupt(format!("unknown edit tag {other}"))),
        });
    }
    if pos != bytes.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after {count} edits",
            bytes.len() - pos
        )));
    }
    Ok(DecodedRecord::Batch(WalRecord { seq, edits, txn }))
}

/// Scan every complete record of an in-memory WAL image, stopping (not
/// failing) at a torn tail. Returns the surviving batch records (abort
/// records already applied), the byte length of the valid prefix, and
/// the number of cancelled batches. Shared by the recovering reader
/// ([`recover_wal`], which then truncates) and the read-only tailer
/// ([`read_wal_from`], which must never write — it may be looking at a
/// live log another process is appending to).
fn scan_wal(bytes: &[u8]) -> Result<(Vec<WalRecord>, usize, u64), PersistError> {
    if &bytes[0..4] != MAGIC {
        return Err(PersistError::BadMagic {
            expected: *MAGIC,
            found: [bytes[0], bytes[1], bytes[2], bytes[3]],
        });
    }
    let version = bytes[4];
    if !(LEGACY_WAL_VERSION..=WAL_VERSION).contains(&version) {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    let mut records = Vec::new();
    let mut aborted = 0u64;
    let mut pos = HEADER_LEN as usize;
    let mut valid_len = pos;
    while pos < bytes.len() {
        // Record header: a partial one is a torn tail.
        if pos + 8 > bytes.len() {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let sum = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return Err(PersistError::WalCorrupt {
                offset: pos as u64,
                reason: format!("payload length {len} exceeds the {MAX_PAYLOAD}-byte bound"),
            });
        }
        let body_start = pos + 8;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            // Payload cut short: torn tail.
            break;
        }
        let payload = &bytes[body_start..body_end];
        let computed = crc32(payload);
        if computed != sum {
            if body_end == bytes.len() {
                // A bad-checksum *final* record is a crash artifact
                // under the relaxed fsync policies (length page written
                // back before the payload page): end-of-log, drop it.
                break;
            }
            // Mid-log, a fully framed record with wrong bytes cannot
            // come from a crash — refuse.
            return Err(PersistError::WalCorrupt {
                offset: pos as u64,
                reason: format!("checksum mismatch: header {sum:#010x}, computed {computed:#010x}"),
            });
        }
        match decode_payload(payload, pos as u64, version)? {
            DecodedRecord::Batch(rec) => records.push(rec),
            DecodedRecord::Abort { seq } => {
                // Cancel the most recent batch with this seq. An abort
                // with no matching batch is legal — the batch append
                // itself may have failed before reaching disk.
                if let Some(i) = records.iter().rposition(|r: &WalRecord| r.seq == seq) {
                    records.remove(i);
                    aborted += 1;
                }
            }
        }
        pos = body_end;
        valid_len = pos;
    }
    Ok((records, valid_len, aborted))
}

/// Read every complete record of the log, truncating a torn final
/// record in place (see the module docs for the torn/corrupt split).
///
/// A missing file recovers to an empty log.
pub fn recover_wal(path: impl AsRef<Path>) -> Result<(Vec<WalRecord>, WalRecovery), PersistError> {
    let path = path.as_ref();
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((Vec::new(), WalRecovery::default()))
        }
        Err(e) => return Err(e.into()),
    }
    if bytes.len() < HEADER_LEN as usize {
        // Even the file header is torn: recover to an empty log.
        truncate_to(path, 0)?;
        return Ok((
            Vec::new(),
            WalRecovery {
                torn_bytes: bytes.len() as u64,
                valid_len: 0,
                aborted_batches: 0,
            },
        ));
    }
    let (records, valid_len, aborted) = scan_wal(&bytes)?;
    let torn = (bytes.len() - valid_len) as u64;
    if torn > 0 {
        truncate_to(path, valid_len as u64)?;
    }
    Ok((
        records,
        WalRecovery {
            torn_bytes: torn,
            valid_len: valid_len as u64,
            aborted_batches: aborted,
        },
    ))
}

/// A read-only view of a log's surviving batch records, as used by
/// WAL-shipping replication ([`read_wal_from`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalTail {
    /// Surviving batch records with `seq >= from_seq`, in log order
    /// (abort-cancelled batches are excluded).
    pub records: Vec<WalRecord>,
    /// Sequence number of the *oldest* surviving batch record in the
    /// file, before the `from_seq` filter — `None` for an empty log. A
    /// tailer that asks for `from_seq < floor` has fallen behind a WAL
    /// rotation and must re-sync from a fresh checkpoint.
    pub floor: Option<u64>,
}

/// Read the log **without touching it**: scan every complete record,
/// stop silently at a torn or still-being-written tail, and return the
/// surviving batch records with `seq >= from_seq`.
///
/// This is the replication read path. Unlike [`recover_wal`] it never
/// truncates — the file may be the *live* log of a running primary,
/// whose in-flight append must not be cut out from under it — and a
/// partial tail simply means "end of what is durable so far". Mid-log
/// corruption is still refused with a typed error. A missing file reads
/// as an empty tail.
pub fn read_wal_from(path: impl AsRef<Path>, from_seq: u64) -> Result<WalTail, PersistError> {
    let mut bytes = Vec::new();
    match File::open(path.as_ref()) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalTail::default()),
        Err(e) => return Err(e.into()),
    }
    if bytes.len() < HEADER_LEN as usize {
        return Ok(WalTail::default());
    }
    let (mut records, _, _) = scan_wal(&bytes)?;
    let floor = records.first().map(|r| r.seq);
    records.retain(|r| r.seq >= from_seq);
    Ok(WalTail { records, floor })
}

fn truncate_to(path: &Path, len: u64) -> Result<(), PersistError> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    f.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("batchhl_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_batches() -> Vec<(u64, Vec<Edit>)> {
        vec![
            (0, vec![Edit::Insert(0, 5), Edit::Remove(2, 3)]),
            (1, vec![Edit::InsertWeighted(1, 4, 9)]),
            (2, vec![Edit::SetWeight(1, 4, 2), Edit::Insert(7, 8)]),
        ]
    }

    fn write_sample(path: &Path) {
        let mut w = WalWriter::create(path).unwrap();
        for (seq, edits) in sample_batches() {
            w.append(seq, &edits, true).unwrap();
        }
    }

    #[test]
    fn roundtrip_and_reopen() {
        let path = tmp("roundtrip.wal");
        write_sample(&path);
        let (records, info) = recover_wal(&path).unwrap();
        assert_eq!(info.torn_bytes, 0);
        assert_eq!(records.len(), 3);
        for (rec, (seq, edits)) in records.iter().zip(sample_batches()) {
            assert_eq!(rec.seq, seq);
            assert_eq!(rec.edits, edits);
        }
        // Appending after reopen extends the same log.
        let mut w = WalWriter::open_append(&path).unwrap();
        w.append(3, &[Edit::Insert(9, 9)], true).unwrap();
        let (records, _) = recover_wal(&path).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[3].seq, 3);
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let (records, info) = recover_wal(tmp("never_written.wal")).unwrap();
        assert!(records.is_empty());
        assert_eq!(info, WalRecovery::default());
    }

    #[test]
    fn every_truncation_point_recovers_the_clean_prefix() {
        let path = tmp("torn.wal");
        write_sample(&path);
        let full = std::fs::read(&path).unwrap();
        // Record boundaries for the expected clean prefix count.
        let (all, _) = recover_wal(&path).unwrap();
        assert_eq!(all.len(), 3);
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (records, info) = recover_wal(&path).unwrap_or_else(|e| {
                panic!("cut at {cut}: recovery must not fail, got {e}");
            });
            // Replay must be a prefix of the originally logged batches.
            for (rec, (seq, edits)) in records.iter().zip(sample_batches()) {
                assert_eq!(rec.seq, seq, "cut {cut}");
                assert_eq!(&rec.edits, &edits, "cut {cut}");
            }
            assert!(records.len() <= 3);
            // After truncation the file re-recovers cleanly.
            let reread = std::fs::read(&path).unwrap();
            assert_eq!(reread.len() as u64, info.valid_len);
            let (again, info2) = recover_wal(&path).unwrap();
            assert_eq!(again.len(), records.len());
            assert_eq!(info2.torn_bytes, 0, "cut {cut}: second pass clean");
        }
    }

    #[test]
    fn mid_log_checksum_flip_is_typed_corruption() {
        let path = tmp("flip.wal");
        write_sample(&path);
        let full = std::fs::read(&path).unwrap();
        // Flip one byte of the first record's stored checksum: the bad
        // record is *followed* by good ones, so this is corruption.
        let mut bad = full.clone();
        bad[8 + 4] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            recover_wal(&path),
            Err(PersistError::WalCorrupt { .. })
        ));
        // Flip one payload byte instead: same verdict.
        let mut bad = full.clone();
        bad[8 + 8 + 2] ^= 0x10;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            recover_wal(&path),
            Err(PersistError::WalCorrupt { .. })
        ));
    }

    #[test]
    fn final_record_checksum_flip_is_a_torn_tail() {
        // An unsynced append can leave a length-complete final record
        // with wrong bytes (out-of-order page writeback): recovery must
        // drop it and replay the prefix, not refuse the whole log.
        let path = tmp("flip_tail.wal");
        write_sample(&path);
        let full = std::fs::read(&path).unwrap();
        let mut bad = full.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF; // last payload byte of the final record
        std::fs::write(&path, &bad).unwrap();
        let (records, info) = recover_wal(&path).unwrap();
        assert_eq!(records.len(), 2, "clean prefix replays");
        assert!(info.torn_bytes > 0);
        // The file was truncated: a second pass is clean.
        let (again, info2) = recover_wal(&path).unwrap();
        assert_eq!(again.len(), 2);
        assert_eq!(info2.torn_bytes, 0);
    }

    #[test]
    fn open_append_rewrites_a_headerless_file() {
        // A crash during create can leave a file shorter than the
        // header; recovery truncates it to zero. Appending must rebuild
        // the header, not produce an unreadable log.
        let path = tmp("headerless.wal");
        std::fs::write(&path, b"BWA").unwrap();
        let (records, info) = recover_wal(&path).unwrap();
        assert!(records.is_empty());
        assert_eq!(info.valid_len, 0);
        let mut w = WalWriter::open_append(&path).unwrap();
        w.append(0, &[Edit::Insert(1, 2)], true).unwrap();
        let (records, info) = recover_wal(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(info.torn_bytes, 0);
    }

    #[test]
    fn abort_record_cancels_its_batch() {
        let path = tmp("abort.wal");
        write_sample(&path);
        let mut w = WalWriter::open_append(&path).unwrap();
        w.append_abort(2, true).unwrap();
        let (records, info) = recover_wal(&path).unwrap();
        assert_eq!(records.len(), 2, "batch 2 cancelled");
        assert_eq!(records.last().unwrap().seq, 1);
        assert_eq!(info.aborted_batches, 1);
        assert_eq!(info.torn_bytes, 0);
        // A retry of the same seq after the abort replays normally.
        let mut w = WalWriter::open_append(&path).unwrap();
        w.append(2, &[Edit::Insert(6, 7)], true).unwrap();
        let (records, info) = recover_wal(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].seq, 2);
        assert_eq!(records[2].edits, vec![Edit::Insert(6, 7)]);
        assert_eq!(info.aborted_batches, 1);
    }

    #[test]
    fn abort_without_matching_batch_is_ignored() {
        let path = tmp("abort_orphan.wal");
        write_sample(&path);
        let mut w = WalWriter::open_append(&path).unwrap();
        w.append_abort(99, true).unwrap();
        let (records, info) = recover_wal(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(info.aborted_batches, 0);
    }

    #[test]
    fn oversized_batch_is_refused_before_any_byte_lands() {
        let path = tmp("oversized.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(0, &[Edit::Insert(0, 1)], true).unwrap();
        let before = std::fs::read(&path).unwrap();
        // 7.5M unweighted edits encode to > 64 MiB of payload.
        let huge = vec![Edit::Insert(0, 1); 7_500_000];
        let err = w.append(1, &huge, true).unwrap_err();
        assert!(
            matches!(err, PersistError::RecordTooLarge { len, max }
                if len > max && max == MAX_PAYLOAD as u64),
            "got {err}"
        );
        // The refused append left the log byte-identical…
        assert_eq!(std::fs::read(&path).unwrap(), before);
        // …and the writer still works.
        w.append(1, &[Edit::Insert(2, 3)], true).unwrap();
        let (records, _) = recover_wal(&path).unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn failed_append_rollback_keeps_the_writer_usable() {
        // The rollback guard must restore the handle's cursor along
        // with the file length: `create` opens write-mode (not
        // O_APPEND), so a path-side truncation alone would leave the
        // cursor past EOF and the next append would write behind a
        // zero-filled gap recovery reads as mid-log corruption.
        let path = tmp("rollback_handle.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(0, &[Edit::Insert(0, 1)], true).unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        // Simulate the failure path: frame bytes land, then the guard
        // fires (as it does on an I/O error or unwind before `forget`).
        {
            let mut f: &File = &w.file;
            f.write_all(&[0xAA; 32]).unwrap();
            drop(RewindOnDrop {
                file: &w.file,
                len: before,
            });
        }
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
        // The next append through the same handle starts exactly at the
        // rolled-back EOF — no gap, and the log recovers in full.
        w.append(1, &[Edit::Insert(2, 3)], true).unwrap();
        let (records, info) = recover_wal(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].edits, vec![Edit::Insert(2, 3)]);
        assert_eq!(info.torn_bytes, 0);
    }

    /// Hand-built version-1 file: no kind byte, bare batch payloads.
    fn write_legacy_v1(path: &Path) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&[LEGACY_WAL_VERSION, 0, 0, 0]);
        for (seq, edits) in sample_batches() {
            let mut payload = Vec::new();
            encode_batch_body(&mut payload, seq, &edits);
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        std::fs::write(path, &bytes).unwrap();
    }

    #[test]
    fn legacy_v1_log_still_decodes() {
        let path = tmp("legacy_v1.wal");
        write_legacy_v1(&path);
        let (records, info) = recover_wal(&path).unwrap();
        assert_eq!(info.torn_bytes, 0);
        assert_eq!(records.len(), 3);
        for (rec, (seq, edits)) in records.iter().zip(sample_batches()) {
            assert_eq!(rec.seq, seq);
            assert_eq!(rec.edits, edits);
        }
    }

    #[test]
    fn open_append_upgrades_a_legacy_v1_log() {
        // Appending v2 framed records behind a v1 header would make the
        // next recovery mis-decode them as bare batch bodies;
        // open_append must upgrade the file to v2 first, preserving
        // every legacy record.
        let path = tmp("legacy_v1_append.wal");
        write_legacy_v1(&path);
        let mut w = WalWriter::open_append(&path).unwrap();
        w.append(3, &[Edit::Insert(9, 9)], true).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[4], WAL_VERSION, "header upgraded");
        let (records, info) = recover_wal(&path).unwrap();
        assert_eq!(info.torn_bytes, 0);
        assert_eq!(records.len(), 4);
        for (rec, (seq, edits)) in records.iter().zip(sample_batches()) {
            assert_eq!(rec.seq, seq);
            assert_eq!(rec.edits, edits);
        }
        assert_eq!(records[3].seq, 3);
        assert_eq!(records[3].edits, vec![Edit::Insert(9, 9)]);
        // A second reopen-and-append cycle stays clean (the upgrade is
        // a one-time rewrite, v2 thereafter), and abort records — a v2
        // concept — work against upgraded logs.
        let mut w = WalWriter::open_append(&path).unwrap();
        w.append_abort(3, true).unwrap();
        let (records, info) = recover_wal(&path).unwrap();
        assert_eq!(records.len(), 3, "appended batch cancelled");
        assert_eq!(info.aborted_batches, 1);
    }

    #[test]
    fn txn_stamped_batches_round_trip() {
        let path = tmp("txn_roundtrip.wal");
        let mut w = WalWriter::create(&path).unwrap();
        let t0 = TxnId {
            session: 0xDEAD_BEEF,
            counter: 7,
        };
        w.append_txn(0, &[Edit::Insert(0, 5)], Some(t0), true)
            .unwrap();
        w.append(1, &[Edit::Remove(2, 3)], true).unwrap();
        let t2 = TxnId {
            session: u64::MAX,
            counter: 0,
        };
        w.append_txn(2, &[Edit::InsertWeighted(1, 4, 9)], Some(t2), true)
            .unwrap();
        let (records, info) = recover_wal(&path).unwrap();
        assert_eq!(info.torn_bytes, 0);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].txn, Some(t0));
        assert_eq!(records[0].edits, vec![Edit::Insert(0, 5)]);
        assert_eq!(records[1].txn, None, "plain batch carries no txn");
        assert_eq!(records[2].txn, Some(t2));
        // The read-only tailer surfaces txn stamps too.
        let tail = read_wal_from(&path, 0).unwrap();
        assert_eq!(tail.records[0].txn, Some(t0));
        // Aborts cancel txn-stamped batches exactly like plain ones.
        let mut w = WalWriter::open_append(&path).unwrap();
        w.append_abort(2, true).unwrap();
        let (records, info) = recover_wal(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(info.aborted_batches, 1);
    }

    /// Hand-built version-2 file: kind bytes, no txn-stamped batches.
    fn write_v2(path: &Path, with_abort: bool) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&[V2_WAL_VERSION, 0, 0, 0]);
        let mut push = |payload: &[u8]| {
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32(payload).to_le_bytes());
            bytes.extend_from_slice(payload);
        };
        for (seq, edits) in sample_batches() {
            let mut payload = vec![KIND_BATCH];
            encode_batch_body(&mut payload, seq, &edits);
            push(&payload);
        }
        if with_abort {
            let mut payload = vec![KIND_ABORT];
            payload.extend_from_slice(&2u64.to_le_bytes());
            push(&payload);
        }
        std::fs::write(path, &bytes).unwrap();
    }

    #[test]
    fn v2_log_still_decodes_with_aborts_honoured() {
        let path = tmp("v2_decode.wal");
        write_v2(&path, true);
        let (records, info) = recover_wal(&path).unwrap();
        assert_eq!(info.torn_bytes, 0);
        assert_eq!(records.len(), 2, "abort cancels batch 2");
        assert_eq!(info.aborted_batches, 1);
        for rec in &records {
            assert_eq!(rec.txn, None);
        }
    }

    #[test]
    fn open_append_upgrades_a_v2_log() {
        let path = tmp("v2_append.wal");
        write_v2(&path, false);
        let mut w = WalWriter::open_append(&path).unwrap();
        let t = TxnId {
            session: 42,
            counter: 1,
        };
        w.append_txn(3, &[Edit::Insert(9, 9)], Some(t), true)
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[4], WAL_VERSION, "header upgraded");
        let (records, info) = recover_wal(&path).unwrap();
        assert_eq!(info.torn_bytes, 0);
        assert_eq!(records.len(), 4);
        for (rec, (seq, edits)) in records.iter().zip(sample_batches()) {
            assert_eq!(rec.seq, seq);
            assert_eq!(rec.edits, edits);
            assert_eq!(rec.txn, None);
        }
        assert_eq!(records[3].txn, Some(t));
    }

    #[test]
    fn txn_record_in_a_v2_file_is_typed_corruption() {
        // A v2 header promises no kind-2 records; finding one mid-log
        // means the file was mixed by a buggy writer, not a crash.
        let path = tmp("v2_txn_corrupt.wal");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&[V2_WAL_VERSION, 0, 0, 0]);
        let mut payload = vec![KIND_BATCH_TXN];
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&2u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        // A good record after it so the bad one is not a droppable tail.
        let mut good = vec![KIND_BATCH];
        encode_batch_body(&mut good, 1, &[Edit::Insert(0, 1)]);
        bytes.extend_from_slice(&(good.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&good).to_le_bytes());
        bytes.extend_from_slice(&good);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            recover_wal(&path),
            Err(PersistError::WalCorrupt { .. })
        ));
    }

    #[test]
    fn read_wal_from_filters_and_reports_the_floor() {
        let path = tmp("tail_read.wal");
        write_sample(&path);
        let tail = read_wal_from(&path, 0).unwrap();
        assert_eq!(tail.records.len(), 3);
        assert_eq!(tail.floor, Some(0));
        let tail = read_wal_from(&path, 2).unwrap();
        assert_eq!(tail.records.len(), 1);
        assert_eq!(tail.records[0].seq, 2);
        assert_eq!(tail.floor, Some(0), "floor is pre-filter");
        // Past the end: nothing to ship yet, floor still visible.
        let tail = read_wal_from(&path, 17).unwrap();
        assert!(tail.records.is_empty());
        assert_eq!(tail.floor, Some(0));
        // Missing and empty logs read as empty tails.
        assert_eq!(
            read_wal_from(tmp("tail_nonexistent.wal"), 0).unwrap(),
            WalTail::default()
        );
    }

    #[test]
    fn read_wal_from_never_truncates_a_torn_tail() {
        let path = tmp("tail_torn.wal");
        write_sample(&path);
        let full = std::fs::read(&path).unwrap();
        // Chop the final record in half: the read-only tailer must see
        // the clean prefix and leave the file byte-identical (it may be
        // a live log mid-append).
        let cut = full.len() - 5;
        std::fs::write(&path, &full[..cut]).unwrap();
        let tail = read_wal_from(&path, 0).unwrap();
        assert_eq!(tail.records.len(), 2, "clean prefix only");
        assert_eq!(
            std::fs::read(&path).unwrap().len(),
            cut,
            "file untouched by the read-only scan"
        );
        // Abort records are honoured by the tailer too.
        let path2 = tmp("tail_abort.wal");
        write_sample(&path2);
        let mut w = WalWriter::open_append(&path2).unwrap();
        w.append_abort(1, true).unwrap();
        let tail = read_wal_from(&path2, 0).unwrap();
        assert_eq!(
            tail.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 2],
            "cancelled batch is not shipped"
        );
    }

    #[test]
    fn bad_header_is_typed() {
        let path = tmp("header.wal");
        std::fs::write(&path, b"XXXXWAL?").unwrap();
        assert!(matches!(
            recover_wal(&path),
            Err(PersistError::BadMagic { .. })
        ));
        std::fs::write(&path, [b'B', b'W', b'A', b'L', 9, 0, 0, 0]).unwrap();
        assert!(matches!(
            recover_wal(&path),
            Err(PersistError::UnsupportedVersion { found: 9 })
        ));
    }
}
