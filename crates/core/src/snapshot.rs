//! Index snapshots: assemble a [`BatchIndex`] from externally persisted
//! parts, and verify an index against its graph.
//!
//! A deployment that restarts against an unchanged graph should not pay
//! reconstruction: persist the graph (`batchhl_graph::io`) and the
//! labelling (`batchhl_hcl::serde_io`) and reassemble with
//! [`BatchIndex::from_parts`]. Cheap structural sanity checks run at
//! load time; [`BatchIndex::verify`] offers the full (expensive)
//! semantic check for tests and operational audits.
//!
//! The CSR snapshot view is *derived* data and therefore not persisted:
//! reassembly refreezes the loaded graph into a fresh base CSR with an
//! empty overlay (`O(n + m)`, a small fraction of construction cost).

use crate::index::{BatchIndex, IndexConfig};
use batchhl_graph::DynamicGraph;
use batchhl_hcl::{oracle, LabelError, Labelling};

impl BatchIndex {
    /// Assemble an index from a graph and a previously constructed
    /// labelling (e.g. loaded via `batchhl_hcl::serde_io`).
    ///
    /// Performs structural validation (sizes, landmark range); it does
    /// *not* prove the labelling matches the graph — use
    /// [`BatchIndex::verify`] when provenance is in doubt.
    pub fn from_parts(
        graph: DynamicGraph,
        labelling: Labelling,
        config: IndexConfig,
    ) -> Result<BatchIndex, LabelError> {
        if labelling.num_vertices() != graph.num_vertices() {
            return Err(LabelError::VertexCountMismatch {
                labelling: labelling.num_vertices(),
                graph: graph.num_vertices(),
            });
        }
        for &lm in labelling.landmarks() {
            if (lm as usize) >= graph.num_vertices() {
                return Err(LabelError::LandmarkOutOfBounds {
                    landmark: lm,
                    num_vertices: graph.num_vertices(),
                });
            }
        }
        for i in 0..labelling.num_landmarks() {
            if labelling.highway(i, i) != 0 {
                return Err(LabelError::CorruptHighwayDiagonal { index: i });
            }
        }
        Ok(BatchIndex::assemble(graph, labelling, config))
    }

    /// Full semantic audit: the labelling must equal the unique minimal
    /// highway cover labelling of the current graph. `O(|R|·(|V|+|E|))`
    /// — intended for tests and offline checks, not the hot path.
    pub fn verify(&self) -> Result<(), String> {
        oracle::check_minimal(self.graph(), self.labelling())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Algorithm;
    use batchhl_graph::generators::barabasi_albert;
    use batchhl_graph::Batch;
    use batchhl_hcl::serde_io::{read_labelling, write_labelling};
    use batchhl_hcl::LandmarkSelection;

    fn config() -> IndexConfig {
        IndexConfig {
            selection: LandmarkSelection::TopDegree(5),
            algorithm: Algorithm::BhlPlus,
            threads: 1,
            ..IndexConfig::default()
        }
    }

    #[test]
    fn snapshot_roundtrip_resumes_maintenance() {
        let g = barabasi_albert(150, 3, 3);
        let mut original = BatchIndex::build(g.clone(), config());
        // Persist the labelling, reload, reassemble.
        let mut buf = Vec::new();
        write_labelling(original.labelling(), &mut buf).unwrap();
        let lab = read_labelling(buf.as_slice()).unwrap();
        let mut restored = BatchIndex::from_parts(g, lab, config()).unwrap();
        restored.verify().unwrap();
        assert_eq!(original.labelling(), restored.labelling());
        // Both continue to accept batches identically.
        let mut b = Batch::new();
        b.delete(0, 1);
        b.insert(10, 140);
        original.apply_batch(&b);
        restored.apply_batch(&b);
        assert_eq!(original.labelling(), restored.labelling());
        restored.verify().unwrap();
    }

    #[test]
    fn from_parts_rejects_mismatches() {
        let g = barabasi_albert(50, 2, 1);
        let other = barabasi_albert(60, 2, 1);
        let lab = batchhl_hcl::build_labelling(&other, vec![0, 1]).unwrap();
        let err = match BatchIndex::from_parts(g, lab, config()) {
            Err(e) => e,
            Ok(_) => panic!("mismatched parts must be rejected"),
        };
        assert_eq!(
            err,
            LabelError::VertexCountMismatch {
                labelling: 60,
                graph: 50
            }
        );
    }

    #[test]
    fn verify_catches_stale_labellings() {
        let g = barabasi_albert(80, 2, 5);
        let index = BatchIndex::build(g, config());
        index.verify().unwrap();
        // Same labelling, different graph: must fail.
        let other = barabasi_albert(80, 2, 6);
        let stale = BatchIndex::from_parts(other, index.labelling().clone(), config()).unwrap();
        assert!(stale.verify().is_err());
    }
}
