//! The unified update engine: one search→repair orchestration for every
//! index variant.
//!
//! Algorithm 1 is the same loop in every setting: for each landmark,
//! run a batch search over the updated graph `G′` against the *old*
//! labelling `Γ` to find the affected vertices, then run batch repair to
//! rewrite that landmark's rows of the new labelling `Γ′`. What differs
//! between the undirected, directed (Section 6) and weighted
//! (Section 6) indexes is only the **search space** — plain BFS
//! traversal, forward/backward arc traversal, or Dijkstra over edge
//! weights. The [`UpdateKernel`] trait captures exactly that residue;
//! [`run_landmarks`] owns the orchestration (sequential or
//! landmark-parallel BHLₚ) once, for all of them.
//!
//! The kernel contract mirrors the write-disjointness argument of the
//! paper's parallel variant: a kernel invocation for landmark `i` may
//! read the whole old labelling and graph, but may write only landmark
//! `i`'s label row and highway row. That makes the parallel path safe
//! with nothing shared but read-only state, and it is what lets the
//! writer repair `Γ′` in place while published readers keep serving `Γ`.

use crate::repair::batch_repair;
use crate::search::batch_search;
use crate::search_improved::batch_search_improved;
use crate::workspace::UpdateWorkspace;
use batchhl_common::{Dist, Vertex};
use batchhl_graph::{AdjacencyView, Update};
use batchhl_hcl::{labelling::RowPair, LabelPatch, Labelling, PatchRow};

/// Per-landmark affected-vertex lists, in landmark order. The writer
/// uses them to bring the recycled old buffer up to date
/// ([`sync_affected`]) and reports their sizes in update stats.
pub type AffectedLists = Vec<Vec<Vertex>>;

/// The variant-specific part of one update pass: how to search and
/// repair a single landmark.
///
/// `G` is the search space (an [`AdjacencyView`] for the unweighted
/// kernels, the weighted graph for the Dijkstra kernel); `Update` the
/// update representation the search seeds from.
pub trait UpdateKernel<G: ?Sized + Sync>: Sync {
    type Update: Sync;
    type Workspace: Send;

    /// A fresh scratch workspace for `n` vertices (parallel workers own
    /// one each; the sequential path reuses the caller's).
    fn workspace(&self, n: usize) -> Self::Workspace;

    /// Search + repair landmark `i`: read the old labelling `old` and
    /// the updated graph `g`, rewrite `label_row` / `highway_row` of
    /// `Γ′`, and return the vertices whose entries were rewritten.
    #[allow(clippy::too_many_arguments)]
    fn process_landmark(
        &self,
        old: &Labelling,
        g: &G,
        updates: &[Self::Update],
        i: usize,
        label_row: &mut [Dist],
        highway_row: &mut [Dist],
        ws: &mut Self::Workspace,
    ) -> Vec<Vertex>;
}

/// The unweighted kernel: batch search (Algorithm 2) or improved batch
/// search (Algorithm 3), then batch repair (Algorithm 4). `directed`
/// restricts search anchors to arc heads (Section 6); the same kernel
/// serves the forward and backward passes of the directed index via the
/// [`AdjacencyView`] abstraction.
#[derive(Debug, Clone, Copy)]
pub struct BfsKernel {
    pub improved: bool,
    pub directed: bool,
}

impl<G: AdjacencyView + Sync> UpdateKernel<G> for BfsKernel {
    type Update = Update;
    type Workspace = UpdateWorkspace;

    fn workspace(&self, n: usize) -> UpdateWorkspace {
        UpdateWorkspace::new(n)
    }

    fn process_landmark(
        &self,
        old: &Labelling,
        g: &G,
        updates: &[Update],
        i: usize,
        label_row: &mut [Dist],
        highway_row: &mut [Dist],
        ws: &mut UpdateWorkspace,
    ) -> Vec<Vertex> {
        ws.reset();
        if self.improved {
            batch_search_improved(old, g, updates, i, self.directed, ws);
        } else {
            batch_search(old, g, updates, i, self.directed, ws);
        }
        batch_repair(old, g, i, label_row, highway_row, ws);
        ws.aff.inserted().to_vec()
    }
}

/// One full update pass: search + repair every landmark of `new_lab`,
/// sequentially or with landmark-level parallelism (`threads > 1`,
/// BHLₚ). Each parallel worker owns disjoint label/highway rows and a
/// private workspace; everything shared is read-only.
pub fn run_landmarks<G, K>(
    kernel: &K,
    old: &Labelling,
    g: &G,
    updates: &[K::Update],
    new_lab: &mut Labelling,
    threads: usize,
    ws: &mut K::Workspace,
) -> AffectedLists
where
    G: ?Sized + Sync,
    K: UpdateKernel<G>,
{
    // Chaos-suite injection point: by the time the pass reaches the
    // landmark loop the working graph is already mutated, so a panic
    // here leaves maximally half-applied writer state behind. There is
    // no Result channel through a repair pass — an armed Error action
    // panics too.
    if let Err(msg) = batchhl_common::failpoint::check("engine::mid_repair_panic") {
        panic!("{msg}");
    }
    let n = new_lab.num_vertices();
    let r = new_lab.num_landmarks();
    let threads = threads.max(1).min(r.max(1));
    if threads <= 1 {
        let mut affected = Vec::with_capacity(r);
        for i in 0..r {
            landmark_failpoint();
            let (label_row, highway_row) = new_lab.row_mut(i);
            affected.push(kernel.process_landmark(old, g, updates, i, label_row, highway_row, ws));
        }
        return affected;
    }

    let (rows, _) = new_lab.rows_mut();
    let mut work: Vec<(usize, RowPair<'_>)> = rows.into_iter().enumerate().collect();
    let per = r.div_ceil(threads);
    let mut results: AffectedLists = vec![Vec::new(); r];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        while !work.is_empty() {
            let take = per.min(work.len());
            let chunk: Vec<_> = work.drain(..take).collect();
            handles.push(scope.spawn(move || {
                let mut ws = kernel.workspace(n);
                let mut out = Vec::with_capacity(chunk.len());
                for (i, (label_row, highway_row)) in chunk {
                    landmark_failpoint();
                    out.push((
                        i,
                        kernel.process_landmark(
                            old,
                            g,
                            updates,
                            i,
                            label_row,
                            highway_row,
                            &mut ws,
                        ),
                    ));
                }
                out
            }));
        }
        for h in handles {
            match h.join() {
                Ok(rows) => {
                    for (i, aff) in rows {
                        results[i] = aff;
                    }
                }
                // Re-raise the worker's own payload instead of a fresh
                // "worker panicked" panic: the facade's containment
                // records the payload string in the poisoned-health
                // reason, and it must name the original failure even
                // when it crossed a scoped thread.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    results
}

/// The speculative twin of [`run_landmarks`]: run the same search +
/// repair kernels for every landmark, but into *detached* copies of the
/// old rows, collected as a [`LabelPatch`] — the shared labelling is
/// never written. This is the labelling half of a what-if session:
/// `old` must already be grown to the hypothetical graph's vertex count
/// (see [`oracle_for`]) and `g` is the session's private overlay view.
///
/// Only rows the batch actually changed are kept (affected vertices or
/// a rewritten highway entry); untouched landmarks fall through to the
/// base when queried. Sessions are built on reader threads — no
/// failpoints, no parallel fan-out, no writer state.
pub(crate) fn run_landmarks_speculative<G, K>(
    kernel: &K,
    old: &Labelling,
    g: &G,
    updates: &[K::Update],
) -> LabelPatch
where
    G: ?Sized + Sync,
    K: UpdateKernel<G>,
{
    let n = old.num_vertices();
    let r = old.num_landmarks();
    let mut patch = LabelPatch::new(n);
    let mut ws = kernel.workspace(n);
    for i in 0..r {
        let mut label_row: Box<[Dist]> = old.label_row(i).into();
        let mut highway_row: Box<[Dist]> = (0..r).map(|j| old.highway(i, j)).collect();
        let base_highway = highway_row.clone();
        let aff = kernel.process_landmark(
            old,
            g,
            updates,
            i,
            &mut label_row,
            &mut highway_row,
            &mut ws,
        );
        if !aff.is_empty() || highway_row != base_highway {
            patch.insert_row(
                i,
                PatchRow {
                    label: label_row,
                    highway: highway_row,
                },
            );
        }
    }
    patch
}

/// Chaos injection point *inside* the landmark loop — reached once per
/// landmark, in the sequential path and inside every scoped parallel
/// worker, so the suite can make a panic originate in a worker thread
/// and cross `scope`/`join` before hitting commit containment.
#[inline]
fn landmark_failpoint() {
    if let Err(msg) = batchhl_common::failpoint::check("engine::landmark_panic") {
        panic!("{msg}");
    }
}

/// Bring a recycled old-generation buffer up to the freshly repaired
/// labelling by copying only what the pass touched: the affected label
/// entries and each landmark's highway row. `O(affected + |R|²)` — this
/// is what keeps the Γ → Γ′ double buffer from costing a full
/// `O(|R|·|V|)` clone per batch.
pub fn sync_affected(from: &Labelling, to: &mut Labelling, affected: &[Vec<Vertex>]) {
    to.ensure_vertices(from.num_vertices());
    let r = from.num_landmarks();
    for (i, aff) in affected.iter().enumerate() {
        for &v in aff {
            to.set_label(i, v, from.label(i, v));
        }
        for j in 0..r {
            to.set_highway_row(i, j, from.highway(i, j));
        }
    }
}

/// Reclaims retired generation buffers for a writer.
///
/// Immediately after a publish the just-retired generation is usually
/// still pinned by readers — they re-pin lazily, on their next query —
/// so `Arc::try_unwrap` on it fails exactly when readers are active,
/// which is the scenario the store exists for. The recycler therefore
/// also keeps *one* older retired generation together with the replay
/// log of the pass that superseded it: by the next publish, active
/// readers have re-pinned past that generation and its buffer can be
/// reclaimed by replaying the (at most two) logged passes. Steady
/// state with busy readers reuses buffers every pass in
/// `O(affected + batch)`; only a reader that pins a generation and
/// never refreshes forces the clone fallback.
///
/// `L` is the per-pass replay log (normalized updates + affected
/// lists); the caller's `replay` closure must transform a buffer
/// holding the state *before* a logged pass into the state *after* it
/// (label syncs may always copy from the latest published labelling —
/// copying final values of every touched entry is order-insensitive).
#[derive(Debug)]
pub(crate) struct Recycler<S, L> {
    retired: Option<(std::sync::Arc<batchhl_hcl::Versioned<S>>, L)>,
}

impl<S, L> Default for Recycler<S, L> {
    fn default() -> Self {
        Recycler { retired: None }
    }
}

impl<S, L> Recycler<S, L> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Forget every retained candidate (used when a publish bypasses
    /// pass logging, e.g. a from-scratch rebuild — replaying logs over
    /// a pre-rebuild buffer would skip the rebuild's changes).
    pub fn clear(&mut self) {
        self.retired = None;
    }

    /// Offer the generation retired by the publish that just happened
    /// (`prev`) plus the log of the pass that superseded it. Returns a
    /// reclaimed, fully replayed buffer, or `None` when every candidate
    /// is still pinned by readers (caller falls back to a clone).
    pub fn reclaim(
        &mut self,
        prev: std::sync::Arc<batchhl_hcl::Versioned<S>>,
        log: L,
        mut replay: impl FnMut(&mut S, &L),
    ) -> Option<S> {
        match std::sync::Arc::try_unwrap(prev) {
            Ok(retired) => {
                // Newest candidate is free; drop any older one (its
                // readers will free it).
                self.retired = None;
                let mut buf = retired.into_value();
                replay(&mut buf, &log);
                Some(buf)
            }
            Err(still_pinned) => {
                let reclaimed = self.retired.take().and_then(|(old_arc, old_log)| {
                    std::sync::Arc::try_unwrap(old_arc).ok().map(|retired| {
                        let mut buf = retired.into_value();
                        replay(&mut buf, &old_log);
                        replay(&mut buf, &log);
                        buf
                    })
                });
                self.retired = Some((still_pinned, log));
                reclaimed
            }
        }
    }
}

/// The publish epilogue every index runs after a repair pass: swap the
/// working snapshot into the store, release the writer's own pin on the
/// old generation, and rebuild the working buffer — from a recycled
/// retired generation when possible ([`Recycler`]), from a full clone
/// of the fresh one otherwise.
///
/// `replay(buf, fresh, log)` must bring `buf` (holding the state just
/// *before* a logged pass) to the state just *after* it, reading
/// repaired entries from `fresh` (the newest published snapshot).
pub(crate) fn publish_pass<S: Clone, L>(
    store: &batchhl_hcl::LabelStore<S>,
    recycler: &mut Recycler<S, L>,
    work: &mut S,
    placeholder: S,
    old: std::sync::Arc<batchhl_hcl::Versioned<S>>,
    log: L,
    mut replay: impl FnMut(&mut S, &S, &L),
) {
    let next = std::mem::replace(work, placeholder);
    let (fresh, prev) = store.publish(next);
    // The writer's own pin on the retired generation must go before
    // reclamation can ever see it uniquely owned.
    drop(old);
    *work = recycler
        .reclaim(prev, log, |buf, l| replay(buf, fresh.value(), l))
        .unwrap_or_else(|| fresh.value().clone());
}

/// The old labelling `Γ` may describe fewer vertices than `G′` when the
/// batch introduced new ones; kernels index it by `G′` vertex ids, so
/// grow a copy on (rare) vertex growth and borrow in place otherwise.
pub(crate) fn oracle_for<'a>(
    old: &'a Labelling,
    n: usize,
    grown: &'a mut Option<Labelling>,
) -> &'a Labelling {
    if old.num_vertices() >= n {
        old
    } else {
        let mut copy = old.clone();
        copy.ensure_vertices(n);
        grown.insert(copy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_graph::generators::{barabasi_albert, path};
    use batchhl_graph::{Batch, DynamicGraph};
    use batchhl_hcl::{build_labelling, oracle};

    fn repaired_by_engine(
        g0: &DynamicGraph,
        landmarks: Vec<Vertex>,
        batch: &Batch,
        improved: bool,
        threads: usize,
    ) -> (Labelling, DynamicGraph) {
        let old = build_labelling(g0, landmarks).unwrap();
        let norm = batch.normalize(g0);
        let mut g1 = g0.clone();
        g1.apply_batch(&norm);
        let mut new_lab = old.clone();
        new_lab.ensure_vertices(g1.num_vertices());
        let mut grown = None;
        let oracle = oracle_for(&old, g1.num_vertices(), &mut grown);
        let kernel = BfsKernel {
            improved,
            directed: false,
        };
        let mut ws = UpdateKernel::<DynamicGraph>::workspace(&kernel, g1.num_vertices());
        run_landmarks(
            &kernel,
            oracle,
            &g1,
            norm.updates(),
            &mut new_lab,
            threads,
            &mut ws,
        );
        (new_lab, g1)
    }

    #[test]
    fn engine_repairs_to_minimality_seq_and_parallel() {
        let g0 = barabasi_albert(120, 3, 5);
        let mut batch = Batch::new();
        batch.delete(0, 1);
        batch.insert(3, 117);
        batch.insert(40, 90);
        for improved in [false, true] {
            for threads in [1, 4] {
                let (lab, g1) =
                    repaired_by_engine(&g0, vec![0, 1, 2, 5], &batch, improved, threads);
                oracle::check_minimal(&g1, &lab)
                    .unwrap_or_else(|e| panic!("improved={improved} threads={threads}: {e}"));
            }
        }
    }

    #[test]
    fn sync_affected_copies_exactly_the_touched_entries() {
        let g = path(6);
        let from = build_labelling(&g, vec![0, 5]).unwrap();
        let mut to = from.clone();
        // Perturb `to` everywhere; sync only vertex 3 for landmark 0.
        to.set_label(0, 3, 9);
        to.set_label(1, 4, 9);
        sync_affected(&from, &mut to, &[vec![3], vec![]]);
        assert_eq!(to.label(0, 3), from.label(0, 3), "synced back");
        assert_eq!(to.label(1, 4), 9, "untouched entries stay");
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(to.highway(i, j), from.highway(i, j));
            }
        }
    }

    #[test]
    // The `pin` writes are never read back — they model *when* the
    // simulated reader's Arc moves between generations, which is what
    // drives try_unwrap success/failure.
    #[allow(unused_assignments, clippy::identity_op)]
    fn recycler_reclaims_one_publish_late_under_pinning() {
        use batchhl_hcl::LabelStore;

        let store = LabelStore::new(0u64);
        let mut recycler: Recycler<u64, u64> = Recycler::new();
        let replay = |buf: &mut u64, log: &u64| *buf += log;

        // Reader pins each generation the way real readers do: it holds
        // the newest one at all times.
        let mut pin = store.snapshot();

        // Pass 1: the reader still pins gen 0 when the writer tries to
        // reclaim it; nothing older is retained yet -> clone fallback.
        let (fresh, prev) = store.publish(1);
        assert!(
            recycler.reclaim(prev, 1, replay).is_none(),
            "first pass clones"
        );
        pin = fresh; // reader re-pins the new generation afterwards

        // Pass 2: prev (gen 1) is pinned, but gen 0 is now free —
        // reclaimed and replayed through both logged passes.
        let (fresh, prev) = store.publish(2);
        let buf = recycler
            .reclaim(prev, 1, replay)
            .expect("steady state recycles");
        assert_eq!(buf, 0 + 1 + 1, "both passes replayed in order");
        pin = fresh;

        // Pass 3: same shape — the one-publish-old buffer keeps coming
        // back every pass while the reader stays current.
        let (fresh, prev) = store.publish(3);
        let buf = recycler.reclaim(prev, 1, replay).expect("recycles again");
        assert_eq!(buf, 1 + 1 + 1);
        pin = fresh;

        // Clear drops retained candidates (rebuild semantics): with the
        // newest generation still pinned and nothing retained, the
        // writer must clone.
        recycler.clear();
        let (_, prev) = store.publish(4);
        assert!(recycler.reclaim(prev, 1, replay).is_none());

        // Once the reader lets go entirely, prev itself is free.
        drop(pin);
        let (_, prev) = store.publish(5);
        assert!(
            recycler.reclaim(prev, 1, replay).is_some(),
            "prev unpinned after readers dropped"
        );
    }

    #[test]
    fn oracle_for_grows_only_when_needed() {
        let g = path(4);
        let old = build_labelling(&g, vec![0]).unwrap();
        let mut grown = None;
        assert!(std::ptr::eq(oracle_for(&old, 4, &mut grown), &old));
        assert!(grown.is_none());
        let bigger = oracle_for(&old, 8, &mut grown);
        assert_eq!(bigger.num_vertices(), 8);
        assert_eq!(bigger.label(0, 2), old.label(0, 2));
    }
}
