//! Speculative **what-if sessions**: answer distance queries under a
//! hypothetical edit batch without committing it.
//!
//! A session pins one published generation and builds two private
//! structures from it, touching neither the shared store nor the WAL:
//!
//! * a **CSR overlay** over the pinned snapshot's frozen base — the
//!   generation's view is cloned (the flat base arrays stay shared
//!   behind their `Arc`; only the small delta overlay is copied) and
//!   the hypothetical batch's endpoints are re-recorded into it, so
//!   the session traverses the hypothetical graph at published-view
//!   speed;
//! * a **scoped label patch** ([`LabelPatch`]) — the same search +
//!   repair kernels a committed batch runs
//!   ([`engine::run_landmarks_speculative`]) write into detached
//!   copies of the affected landmark rows instead of the labelling.
//!
//! Queries then run the ordinary Section 4 paths over a
//! [`PatchedLabels`] merge view ("patch row if present, base row
//! otherwise"). Dropping the session drops the overlay and the patch —
//! no generation bump, no publication, no writer involvement — so any
//! number of concurrent hypotheticals (distinct failure scenarios,
//! capacity studies, rollout rehearsals) can share one published
//! snapshot, each on its own reader thread.
//!
//! Entry points: `Reader::with_edits` / `SharedReader::with_edits`
//! (typed, per family) and the type-erased
//! [`crate::backend::BackendReader::what_if`].

use crate::backend::{unweighted_batch, BackendFamily, Edit, OracleError};
use crate::directed::{
    directed_distances_from_patched, directed_query_dist_patched, DirectedSnapshot,
};
use crate::engine::{self, BfsKernel};
use crate::index::IndexSnapshot;
use crate::reader::{GenReader, SharedReader};
use crate::weighted::{
    effect_endpoints, normalize_weighted, weighted_distances_from_patched,
    weighted_query_dist_patched, DijkstraKernel, Effect, WeightedSnapshot,
};
use batchhl_common::{Dist, FxHashMap, Vertex, INF};
use batchhl_graph::bfs::BiBfs;
use batchhl_graph::weighted::{BiDijkstra, Weight, WeightedUpdate};
use batchhl_graph::{
    AdjacencyView, Batch, CsrDelta, CsrDiDelta, Reversed, Update, WeightedCsrDelta,
};
use batchhl_hcl::{LabelPatch, PatchedLabels, QueryEngine, Versioned};
use std::sync::Arc;

/// The query surface of a what-if session, type-erased for the oracle
/// facade. Methods take `&mut self` — a session is a single-owner
/// scratch value (its search engine is private workspace), unlike the
/// `&self` readers it is built from.
pub trait WhatIfQuery: Send {
    /// The version of the pinned generation the hypothetical is built
    /// over. Never changes for the life of the session — what-if
    /// sessions cause no generation churn.
    fn version(&self) -> u64;

    /// Exact distance under the hypothetical; `None` when disconnected.
    fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        let d = self.query_dist(s, t);
        (d != INF).then_some(d)
    }

    /// As [`WhatIfQuery::query`], returning `INF` for disconnected.
    fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist;

    /// Batched pair queries under the hypothetical (order of results
    /// matches `pairs`).
    fn query_many(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>>;

    /// One-source-to-many-targets under the hypothetical; `None` marks
    /// disconnected or out-of-range endpoints.
    fn distances_from(&mut self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>>;
}

/// How a snapshot family builds a what-if session over one of its
/// pinned generations (the hook [`crate::backend::BackendReader`]'s
/// blanket impl dispatches through).
pub trait SnapshotWhatIf: crate::reader::SnapshotQuery + Sized {
    fn what_if_session(
        pinned: Arc<Versioned<Self>>,
        edits: &[Edit],
    ) -> Result<Box<dyn WhatIfQuery>, OracleError>;
}

/// The post-batch vertex count: updates may name vertices past the
/// pinned view's range (hypothetical growth).
fn grown_n(endpoints: impl Iterator<Item = (Vertex, Vertex)>, base_n: usize) -> usize {
    endpoints
        .map(|(a, b)| a.max(b) as usize + 1)
        .max()
        .unwrap_or(0)
        .max(base_n)
}

/// Re-record the post-batch adjacency of every endpoint of `norm` into
/// the session's private undirected overlay. Normalization guarantees
/// inserted edges are absent and deleted edges present, so retain +
/// extend per endpoint reproduces the committed graph's adjacency.
fn apply_undirected_edits(view: &mut CsrDelta, norm: &Batch) {
    let mut add: FxHashMap<Vertex, Vec<Vertex>> = FxHashMap::default();
    let mut remove: FxHashMap<Vertex, Vec<Vertex>> = FxHashMap::default();
    for &u in norm.updates() {
        let (a, b) = u.endpoints();
        match u {
            Update::Insert(..) => {
                add.entry(a).or_default().push(b);
                add.entry(b).or_default().push(a);
            }
            Update::Delete(..) => {
                remove.entry(a).or_default().push(b);
                remove.entry(b).or_default().push(a);
            }
        }
    }
    for v in norm.touched_vertices() {
        let mut list: Vec<Vertex> = view.list(v).to_vec();
        if let Some(rm) = remove.get(&v) {
            list.retain(|x| !rm.contains(x));
        }
        if let Some(ad) = add.get(&v) {
            list.extend_from_slice(ad);
        }
        view.set_vertex(v, &list);
    }
}

/// A speculative session over an undirected generation.
#[derive(Debug)]
pub struct WhatIf {
    pinned: Arc<Versioned<IndexSnapshot>>,
    view: CsrDelta,
    patch: LabelPatch,
    engine: QueryEngine,
}

impl WhatIf {
    pub(crate) fn build(pinned: Arc<Versioned<IndexSnapshot>>, batch: &Batch) -> Self {
        let (view, patch) = {
            let snap = pinned.value();
            let norm = batch.normalize(&snap.graph);
            let mut view = snap.view.clone();
            if norm.is_empty() {
                let n = view.num_vertices();
                (view, LabelPatch::new(n))
            } else {
                let n = grown_n(
                    norm.updates().iter().map(|u| u.endpoints()),
                    view.num_vertices(),
                );
                view.ensure_vertices(n);
                apply_undirected_edits(&mut view, &norm);
                let mut grown = None;
                let old = engine::oracle_for(&snap.lab, n, &mut grown);
                let patch = engine::run_landmarks_speculative(
                    &BfsKernel {
                        improved: true,
                        directed: false,
                    },
                    old,
                    &view,
                    norm.updates(),
                );
                (view, patch)
            }
        };
        let engine = QueryEngine::new(view.num_vertices());
        WhatIf {
            pinned,
            view,
            patch,
            engine,
        }
    }

    /// Number of landmark rows the hypothetical batch touched.
    pub fn patched_rows(&self) -> usize {
        self.patch.num_rows()
    }

    pub fn version(&self) -> u64 {
        self.pinned.version()
    }

    pub fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        let d = self.query_dist(s, t);
        (d != INF).then_some(d)
    }

    pub fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        let n = self.view.num_vertices();
        if (s as usize) >= n || (t as usize) >= n {
            return INF;
        }
        let pl = PatchedLabels::new(&self.pinned.value().lab, &self.patch);
        self.engine.query_dist_patched(&pl, &self.view, s, t)
    }

    pub fn query_many(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>> {
        pairs.iter().map(|&(s, t)| self.query(s, t)).collect()
    }

    pub fn distances_from(&mut self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>> {
        let pl = PatchedLabels::new(&self.pinned.value().lab, &self.patch);
        self.engine
            .distances_from_patched(&pl, &self.view, s, targets)
            .into_iter()
            .map(|d| (d != INF).then_some(d))
            .collect()
    }
}

impl WhatIfQuery for WhatIf {
    fn version(&self) -> u64 {
        WhatIf::version(self)
    }

    fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        WhatIf::query_dist(self, s, t)
    }

    fn query_many(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>> {
        WhatIf::query_many(self, pairs)
    }

    fn distances_from(&mut self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>> {
        WhatIf::distances_from(self, s, targets)
    }
}

/// Re-record post-batch out-/in-adjacency of the batch's tails and
/// heads into the session's private two-direction overlay.
fn apply_directed_edits(view: &mut CsrDiDelta, norm: &Batch) {
    let mut out_add: FxHashMap<Vertex, Vec<Vertex>> = FxHashMap::default();
    let mut out_rm: FxHashMap<Vertex, Vec<Vertex>> = FxHashMap::default();
    let mut in_add: FxHashMap<Vertex, Vec<Vertex>> = FxHashMap::default();
    let mut in_rm: FxHashMap<Vertex, Vec<Vertex>> = FxHashMap::default();
    for &u in norm.updates() {
        let (a, b) = u.endpoints();
        match u {
            Update::Insert(..) => {
                out_add.entry(a).or_default().push(b);
                in_add.entry(b).or_default().push(a);
            }
            Update::Delete(..) => {
                out_rm.entry(a).or_default().push(b);
                in_rm.entry(b).or_default().push(a);
            }
        }
    }
    let mut tails: Vec<Vertex> = out_add.keys().chain(out_rm.keys()).copied().collect();
    tails.sort_unstable();
    tails.dedup();
    for v in tails {
        let mut list: Vec<Vertex> = view.out_neighbors(v).to_vec();
        if let Some(rm) = out_rm.get(&v) {
            list.retain(|x| !rm.contains(x));
        }
        if let Some(ad) = out_add.get(&v) {
            list.extend_from_slice(ad);
        }
        view.set_vertex_out(v, &list);
    }
    let mut heads: Vec<Vertex> = in_add.keys().chain(in_rm.keys()).copied().collect();
    heads.sort_unstable();
    heads.dedup();
    for v in heads {
        let mut list: Vec<Vertex> = view.in_neighbors(v).to_vec();
        if let Some(rm) = in_rm.get(&v) {
            list.retain(|x| !rm.contains(x));
        }
        if let Some(ad) = in_add.get(&v) {
            list.extend_from_slice(ad);
        }
        view.set_vertex_in(v, &list);
    }
}

/// A speculative session over a directed generation: one patch per
/// labelling, mirroring the committed two-pass repair.
#[derive(Debug)]
pub struct DirectedWhatIf {
    pinned: Arc<Versioned<DirectedSnapshot>>,
    view: CsrDiDelta,
    fwd_patch: LabelPatch,
    bwd_patch: LabelPatch,
    bibfs: BiBfs,
}

impl DirectedWhatIf {
    pub(crate) fn build(pinned: Arc<Versioned<DirectedSnapshot>>, batch: &Batch) -> Self {
        let (view, fwd_patch, bwd_patch) = {
            let snap = pinned.value();
            let norm = batch.normalize_directed(&snap.graph);
            let mut view = snap.view.clone();
            if norm.is_empty() {
                let n = view.num_vertices();
                (view, LabelPatch::new(n), LabelPatch::new(n))
            } else {
                let n = grown_n(
                    norm.updates().iter().map(|u| u.endpoints()),
                    view.num_vertices(),
                );
                view.ensure_vertices(n);
                apply_directed_edits(&mut view, &norm);
                let kernel = BfsKernel {
                    improved: true,
                    directed: true,
                };
                let mut grown_fwd = None;
                let old_fwd = engine::oracle_for(&snap.fwd, n, &mut grown_fwd);
                let fwd_patch =
                    engine::run_landmarks_speculative(&kernel, old_fwd, &view, norm.updates());
                // Backward pass sees every arc reversed.
                let rev_updates: Vec<Update> = norm
                    .updates()
                    .iter()
                    .map(|u| match *u {
                        Update::Insert(a, b) => Update::Insert(b, a),
                        Update::Delete(a, b) => Update::Delete(b, a),
                    })
                    .collect();
                let mut grown_bwd = None;
                let old_bwd = engine::oracle_for(&snap.bwd, n, &mut grown_bwd);
                let bwd_patch = engine::run_landmarks_speculative(
                    &kernel,
                    old_bwd,
                    &Reversed(&view),
                    &rev_updates,
                );
                (view, fwd_patch, bwd_patch)
            }
        };
        let bibfs = BiBfs::new(view.num_vertices());
        DirectedWhatIf {
            pinned,
            view,
            fwd_patch,
            bwd_patch,
            bibfs,
        }
    }

    pub fn version(&self) -> u64 {
        self.pinned.version()
    }

    pub fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        let d = self.query_dist(s, t);
        (d != INF).then_some(d)
    }

    pub fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        let snap = self.pinned.value();
        let fwd = PatchedLabels::new(&snap.fwd, &self.fwd_patch);
        let bwd = PatchedLabels::new(&snap.bwd, &self.bwd_patch);
        directed_query_dist_patched(&self.view, &fwd, &bwd, &mut self.bibfs, s, t)
    }

    pub fn query_many(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>> {
        pairs.iter().map(|&(s, t)| self.query(s, t)).collect()
    }

    pub fn distances_from(&mut self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>> {
        let snap = self.pinned.value();
        let fwd = PatchedLabels::new(&snap.fwd, &self.fwd_patch);
        let bwd = PatchedLabels::new(&snap.bwd, &self.bwd_patch);
        directed_distances_from_patched(&self.view, &fwd, &bwd, &mut self.bibfs, s, targets)
            .into_iter()
            .map(|d| (d != INF).then_some(d))
            .collect()
    }
}

impl WhatIfQuery for DirectedWhatIf {
    fn version(&self) -> u64 {
        DirectedWhatIf::version(self)
    }

    fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        DirectedWhatIf::query_dist(self, s, t)
    }

    fn query_many(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>> {
        DirectedWhatIf::query_many(self, pairs)
    }

    fn distances_from(&mut self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>> {
        DirectedWhatIf::distances_from(self, s, targets)
    }
}

/// Re-record the post-batch weighted adjacency of every effect
/// endpoint into the session's private weighted overlay.
fn apply_weighted_effects(view: &mut WeightedCsrDelta, effects: &[Effect]) {
    let mut changes: FxHashMap<Vertex, Vec<(Vertex, Option<Weight>)>> = FxHashMap::default();
    for e in effects {
        changes.entry(e.a).or_default().push((e.b, e.w_new));
        changes.entry(e.b).or_default().push((e.a, e.w_new));
    }
    for v in effect_endpoints(effects) {
        let mut list: Vec<(Vertex, Weight)> = view.list(v).to_vec();
        for &(other, w_new) in &changes[&v] {
            match w_new {
                None => list.retain(|&(x, _)| x != other),
                Some(w) => {
                    if let Some(slot) = list.iter_mut().find(|&&mut (x, _)| x == other) {
                        slot.1 = w;
                    } else {
                        list.push((other, w));
                    }
                }
            }
        }
        view.set_vertex(v, &list);
    }
}

/// A speculative session over a weighted generation.
#[derive(Debug)]
pub struct WeightedWhatIf {
    pinned: Arc<Versioned<WeightedSnapshot>>,
    view: WeightedCsrDelta,
    patch: LabelPatch,
    engine: BiDijkstra,
}

impl WeightedWhatIf {
    pub(crate) fn build(
        pinned: Arc<Versioned<WeightedSnapshot>>,
        updates: &[WeightedUpdate],
    ) -> Self {
        let (view, patch) = {
            let snap = pinned.value();
            let effects = normalize_weighted(&snap.graph, updates);
            let mut view = snap.view.clone();
            if effects.is_empty() {
                let n = view.num_vertices();
                (view, LabelPatch::new(n))
            } else {
                let n = grown_n(effects.iter().map(|e| (e.a, e.b)), view.num_vertices());
                view.ensure_vertices(n);
                apply_weighted_effects(&mut view, &effects);
                let mut grown = None;
                let old = engine::oracle_for(&snap.lab, n, &mut grown);
                let patch =
                    engine::run_landmarks_speculative(&DijkstraKernel, old, &view, &effects);
                (view, patch)
            }
        };
        let engine = BiDijkstra::new(view.num_vertices());
        WeightedWhatIf {
            pinned,
            view,
            patch,
            engine,
        }
    }

    pub fn version(&self) -> u64 {
        self.pinned.version()
    }

    pub fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        let d = self.query_dist(s, t);
        (d != INF).then_some(d)
    }

    pub fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        let pl = PatchedLabels::new(&self.pinned.value().lab, &self.patch);
        weighted_query_dist_patched(&self.view, &pl, &mut self.engine, s, t)
    }

    pub fn query_many(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>> {
        pairs.iter().map(|&(s, t)| self.query(s, t)).collect()
    }

    pub fn distances_from(&mut self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>> {
        let pl = PatchedLabels::new(&self.pinned.value().lab, &self.patch);
        weighted_distances_from_patched(&self.view, &pl, &mut self.engine, s, targets)
            .into_iter()
            .map(|d| (d != INF).then_some(d))
            .collect()
    }
}

impl WhatIfQuery for WeightedWhatIf {
    fn version(&self) -> u64 {
        WeightedWhatIf::version(self)
    }

    fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        WeightedWhatIf::query_dist(self, s, t)
    }

    fn query_many(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>> {
        WeightedWhatIf::query_many(self, pairs)
    }

    fn distances_from(&mut self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>> {
        WeightedWhatIf::distances_from(self, s, targets)
    }
}

impl SnapshotWhatIf for IndexSnapshot {
    fn what_if_session(
        pinned: Arc<Versioned<Self>>,
        edits: &[Edit],
    ) -> Result<Box<dyn WhatIfQuery>, OracleError> {
        let batch = unweighted_batch(edits, BackendFamily::Undirected)?;
        Ok(Box::new(WhatIf::build(pinned, &batch)))
    }
}

impl SnapshotWhatIf for DirectedSnapshot {
    fn what_if_session(
        pinned: Arc<Versioned<Self>>,
        edits: &[Edit],
    ) -> Result<Box<dyn WhatIfQuery>, OracleError> {
        let batch = unweighted_batch(edits, BackendFamily::Directed)?;
        Ok(Box::new(DirectedWhatIf::build(pinned, &batch)))
    }
}

impl SnapshotWhatIf for WeightedSnapshot {
    fn what_if_session(
        pinned: Arc<Versioned<Self>>,
        edits: &[Edit],
    ) -> Result<Box<dyn WhatIfQuery>, OracleError> {
        let updates: Vec<WeightedUpdate> = edits
            .iter()
            .map(|&e| match e {
                Edit::Insert(a, b) => WeightedUpdate::Insert(a, b, 1),
                Edit::InsertWeighted(a, b, w) => WeightedUpdate::Insert(a, b, w),
                Edit::Remove(a, b) => WeightedUpdate::Delete(a, b),
                Edit::SetWeight(a, b, w) => WeightedUpdate::SetWeight(a, b, w),
            })
            .collect();
        Ok(Box::new(WeightedWhatIf::build(pinned, &updates)))
    }
}

impl GenReader<IndexSnapshot> {
    /// A speculative session over the freshest published generation:
    /// answers queries as if `batch` had been committed, without
    /// touching the index (see [`crate::whatif`]).
    pub fn with_edits(&mut self, batch: &Batch) -> WhatIf {
        WhatIf::build(self.pin(), batch)
    }
}

impl GenReader<DirectedSnapshot> {
    /// A speculative session over the freshest published generation
    /// (see [`crate::whatif`]).
    pub fn with_edits(&mut self, batch: &Batch) -> DirectedWhatIf {
        DirectedWhatIf::build(self.pin(), batch)
    }
}

impl GenReader<WeightedSnapshot> {
    /// A speculative session over the freshest published generation
    /// (see [`crate::whatif`]).
    pub fn with_edits(&mut self, updates: &[WeightedUpdate]) -> WeightedWhatIf {
        WeightedWhatIf::build(self.pin(), updates)
    }
}

impl SharedReader<IndexSnapshot> {
    /// A speculative session over the freshest published generation
    /// (see [`crate::whatif`]).
    pub fn with_edits(&self, batch: &Batch) -> WhatIf {
        WhatIf::build(self.pin(), batch)
    }
}

impl SharedReader<DirectedSnapshot> {
    /// A speculative session over the freshest published generation
    /// (see [`crate::whatif`]).
    pub fn with_edits(&self, batch: &Batch) -> DirectedWhatIf {
        DirectedWhatIf::build(self.pin(), batch)
    }
}

impl SharedReader<WeightedSnapshot> {
    /// A speculative session over the freshest published generation
    /// (see [`crate::whatif`]).
    pub fn with_edits(&self, updates: &[WeightedUpdate]) -> WeightedWhatIf {
        WeightedWhatIf::build(self.pin(), updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directed::DirectedBatchIndex;
    use crate::index::{BatchIndex, IndexConfig};
    use crate::weighted::WeightedBatchIndex;
    use batchhl_graph::generators::barabasi_albert;
    use batchhl_graph::weighted::WeightedGraph;
    use batchhl_graph::DynamicDiGraph;
    use batchhl_hcl::LandmarkSelection;

    fn config(k: usize) -> IndexConfig {
        IndexConfig {
            selection: LandmarkSelection::TopDegree(k),
            ..IndexConfig::default()
        }
    }

    /// The core invariant on every family: a session's answers equal a
    /// twin index that actually committed the batch, and the session
    /// leaves the published generation untouched.
    #[test]
    fn undirected_session_matches_committed_twin() {
        let g = barabasi_albert(70, 2, 9);
        let index = BatchIndex::build(g.clone(), config(4));
        let mut twin = BatchIndex::build(g, config(4));
        let mut batch = Batch::new();
        batch.delete(0, 1);
        batch.insert(5, 64);
        batch.insert(2, 71); // grows the graph
        twin.apply_batch(&batch);

        let mut reader = index.reader();
        let v0 = reader.version();
        let mut session = reader.with_edits(&batch);
        assert!(session.patched_rows() > 0);
        for s in (0..72u32).step_by(3) {
            for t in (0..72u32).step_by(5) {
                assert_eq!(session.query(s, t), twin.query(s, t), "({s},{t})");
            }
        }
        let targets: Vec<Vertex> = (0..72).collect();
        for s in [0u32, 5, 64, 71] {
            assert_eq!(
                session.distances_from(s, &targets),
                twin.distances_from(s, &targets)
            );
        }
        // The base reader is unaffected — same version, pre-batch answers.
        assert_eq!(reader.version(), v0);
        assert_eq!(reader.query(0, 1), Some(1), "base still has the edge");
        assert_eq!(session.version(), v0);
    }

    #[test]
    fn directed_session_matches_committed_twin() {
        let mut g = DynamicDiGraph::new(30);
        for i in 0..29u32 {
            g.insert_edge(i, i + 1);
            if i % 3 == 0 {
                g.insert_edge(i + 1, i);
            }
        }
        let cfg = crate::index::IndexConfig {
            selection: LandmarkSelection::TopDegree(3),
            ..Default::default()
        };
        let index = DirectedBatchIndex::build(g.clone(), cfg.clone());
        let mut twin = DirectedBatchIndex::build(g, cfg);
        let mut batch = Batch::new();
        batch.delete(3, 4);
        batch.insert(0, 20);
        twin.apply_batch(&batch);

        let shared = index.shared_reader();
        let mut session = shared.with_edits(&batch);
        for s in 0..30u32 {
            for t in (0..30u32).step_by(2) {
                assert_eq!(session.query(s, t), twin.query(s, t), "({s},{t})");
            }
        }
        assert_eq!(shared.version(), session.version());
        assert_eq!(shared.query(3, 4), Some(1), "base keeps the arc");
    }

    #[test]
    fn weighted_session_matches_committed_twin() {
        let mut g = WeightedGraph::new(20);
        for i in 0..19u32 {
            g.insert_edge(i, i + 1, (i % 4 + 1) as Weight);
        }
        g.insert_edge(0, 10, 3);
        let index = WeightedBatchIndex::build(g.clone(), 3);
        let mut twin = WeightedBatchIndex::build(g, 3);
        let updates = [
            WeightedUpdate::Delete(0, 10),
            WeightedUpdate::SetWeight(4, 5, 9),
            WeightedUpdate::Insert(2, 17, 2),
        ];
        twin.apply_batch(&updates);

        let mut reader = index.reader();
        let mut session = reader.with_edits(&updates);
        for s in 0..20u32 {
            for t in 0..20u32 {
                assert_eq!(session.query(s, t), twin.query(s, t), "({s},{t})");
            }
        }
        assert_eq!(reader.version(), session.version());
    }

    #[test]
    fn empty_and_no_op_batches_build_trivial_sessions() {
        let g = barabasi_albert(40, 2, 4);
        let index = BatchIndex::build(g, config(3));
        let mut reader = index.reader();
        let mut batch = Batch::new();
        batch.delete(0, 39); // almost surely absent → normalizes away
        batch.delete(0, 39);
        let mut session = reader.with_edits(&Batch::new());
        let mut session2 = reader.with_edits(&batch);
        for s in (0..40u32).step_by(7) {
            for t in 0..40u32 {
                let want = reader.query(s, t);
                assert_eq!(session.query(s, t), want);
                assert_eq!(session2.query(s, t), want);
            }
        }
    }

    #[test]
    fn concurrent_sessions_share_one_generation() {
        let g = barabasi_albert(60, 2, 7);
        let index = BatchIndex::build(g, config(4));
        let shared = index.shared_reader();
        std::thread::scope(|scope| {
            for k in 0..4u32 {
                let shared = &shared;
                scope.spawn(move || {
                    let mut batch = Batch::new();
                    batch.delete(k, k + 1);
                    let mut session = shared.with_edits(&batch);
                    for t in 0..60u32 {
                        let _ = session.query(k, t);
                    }
                    assert_eq!(session.version(), shared.version());
                });
            }
        });
        assert_eq!(shared.version(), 0, "no generation churn");
    }
}
