//! `BHL2` full-oracle checkpoints: persistence for every index family.
//!
//! The labelling-only snapshot (`batchhl_hcl::serde_io`) saves
//! reconstruction work but still forces a restarted process to re-read
//! the graph from its original source and re-derive everything else. A
//! `BHL2` checkpoint serializes the *complete* oracle state — the graph
//! in CSR shape ([`batchhl_graph::io`]), the labelling(s), the
//! materialized landmark set (inside each labelling block), the update
//! configuration and the generation metadata — so `load` yields an
//! index that answers and maintains identically to the one that was
//! saved.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! magic "BHL2" | u8 format = 2 | u8 family | u8 ×2 reserved (0)
//! u64 batch_seq | u64 published_version
//! family body:
//!   undirected: u8 algorithm | u32 threads | f32 fraction | u64 min_entries
//!               | u64 len | BGU2 graph | u64 len | BHL3 labelling
//!   directed:   u8 algorithm | u32 threads | f32 fraction | u64 min_entries
//!               | u64 len | BGD2 graph | u64 len | BHL3 forward
//!               | u64 len | BHL3 backward
//!   weighted:   u32 threads | f32 fraction | u64 min_entries
//!               | u64 len | BGW2 graph | u64 len | BHL3 labelling
//! u32 CRC-32 over every preceding byte (magic included)
//! ```
//!
//! Every embedded block is length-prefixed, so a corrupt block cannot
//! silently consume the sections after it, and the whole file is sealed
//! with a CRC-32 trailer: a checkpoint either decodes to exactly the
//! bytes that were written or fails with a typed [`PersistError`].
//!
//! The embedded labelling block carries its own magic: new checkpoints
//! write the packed `BHL3` layout, while the labelling reader also
//! accepts the legacy dense `BHL1` block, so checkpoints written before
//! the packed layout keep loading without a container version bump —
//! the container framing itself is unchanged (format stays 2).
//!
//! # Recovery semantics
//!
//! A checkpoint captures the state as of `batch_seq` committed batches.
//! The batch write-ahead log ([`crate::wal`]) holds the edits committed
//! *since*; `DistanceOracle::open` (the facade crate) loads the newest
//! checkpoint and replays the WAL tail on top of it. Loading restarts
//! generation numbering at 0 — `published_version` records the old
//! counter for diagnostics, but reader handles never survive a restart,
//! so nothing can observe the reset.

use crate::backend::{Backend, OracleError};
use crate::directed::DirectedBatchIndex;
use crate::index::{Algorithm, BatchIndex, CompactionPolicy, IndexConfig};
use crate::weighted::WeightedBatchIndex;
use batchhl_common::{binio, Crc32Reader, Crc32Writer};
use batchhl_graph::io::{
    digraph_bin_len, graph_bin_len, read_digraph_bin, read_graph_bin, read_weighted_bin,
    weighted_bin_len, write_digraph_bin, write_graph_bin, write_weighted_bin, BinGraphError,
};
use batchhl_hcl::serde_io::{
    labelling_encoded_len, read_labelling, write_labelling, SnapshotError,
};
use batchhl_hcl::{LabelError, LandmarkSelection};
use std::fmt;
use std::io::{self, Read, Write};

pub(crate) const MAGIC: &[u8; 4] = b"BHL2";
pub(crate) const FORMAT_VERSION: u8 = 2;

/// Why a checkpoint or WAL operation failed.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the expected magic.
    BadMagic { expected: [u8; 4], found: [u8; 4] },
    /// The format version byte names a version this build cannot read.
    UnsupportedVersion { found: u8 },
    /// The stream ended before the section the header promised.
    Truncated { section: &'static str },
    /// A header field is out of its documented range.
    Header { reason: String },
    /// The CRC-32 trailer disagrees with the bytes that were read.
    ChecksumMismatch { expected: u32, found: u32 },
    /// An embedded graph block failed to decode.
    Graph(BinGraphError),
    /// An embedded labelling block failed to decode.
    Snapshot(SnapshotError),
    /// The decoded parts do not assemble into a valid index.
    Label(LabelError),
    /// Replaying a WAL record onto the loaded backend was refused.
    Replay(OracleError),
    /// A WAL record is structurally corrupt (not merely torn at the
    /// tail — see [`crate::wal`] for the distinction).
    WalCorrupt { offset: u64, reason: String },
    /// An append was refused because the encoded record would exceed
    /// the reader's [`crate::wal`] payload bound — writing it would
    /// produce a log our own recovery refuses as corrupt.
    RecordTooLarge { len: u64, max: u64 },
    /// `open` was pointed at a directory with no checkpoint in it.
    MissingCheckpoint { path: String },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence I/O error: {e}"),
            PersistError::BadMagic { expected, found } => write!(
                f,
                "bad checkpoint magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found),
            ),
            PersistError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint format version {found}")
            }
            PersistError::Truncated { section } => {
                write!(f, "checkpoint truncated while reading {section}")
            }
            PersistError::Header { reason } => write!(f, "invalid checkpoint header: {reason}"),
            PersistError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: trailer {expected:#010x}, computed {found:#010x}"
            ),
            PersistError::Graph(e) => write!(f, "checkpoint graph block: {e}"),
            PersistError::Snapshot(e) => write!(f, "checkpoint labelling block: {e}"),
            PersistError::Label(e) => write!(f, "checkpoint parts rejected: {e}"),
            PersistError::Replay(e) => write!(f, "WAL replay refused: {e}"),
            PersistError::WalCorrupt { offset, reason } => {
                write!(f, "WAL corrupt at byte {offset}: {reason}")
            }
            PersistError::RecordTooLarge { len, max } => {
                write!(
                    f,
                    "WAL record payload of {len} bytes exceeds the {max}-byte bound"
                )
            }
            PersistError::MissingCheckpoint { path } => {
                write!(f, "no checkpoint found at {path}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Graph(e) => Some(e),
            PersistError::Snapshot(e) => Some(e),
            PersistError::Label(e) => Some(e),
            PersistError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<BinGraphError> for PersistError {
    fn from(e: BinGraphError) -> Self {
        PersistError::Graph(e)
    }
}

impl From<SnapshotError> for PersistError {
    fn from(e: SnapshotError) -> Self {
        PersistError::Snapshot(e)
    }
}

impl From<LabelError> for PersistError {
    fn from(e: LabelError) -> Self {
        PersistError::Label(e)
    }
}

/// Generation metadata carried by a checkpoint: how many batches the
/// saved state includes (the WAL replay cursor) and the generation
/// counter at save time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointMeta {
    /// Committed batches included in the checkpoint. WAL records with a
    /// sequence number `>= batch_seq` are *not* reflected and must be
    /// replayed on load.
    pub batch_seq: u64,
    /// The published generation version at save time (informational;
    /// generation numbering restarts at 0 on load).
    pub version: u64,
}

/// Serialize `backend` (plus `meta`) as a `BHL2` checkpoint.
pub fn write_checkpoint<W: Write>(
    backend: &dyn Backend,
    meta: CheckpointMeta,
    out: W,
) -> Result<(), PersistError> {
    let mut w = Crc32Writer::new(out);
    w.write_all(MAGIC)?;
    w.write_all(&[FORMAT_VERSION, family_code(backend.family()), 0, 0])?;
    w.write_all(&meta.batch_seq.to_le_bytes())?;
    w.write_all(&meta.version.to_le_bytes())?;
    backend.save(&mut w)?;
    let sum = w.sum();
    let mut out = w.into_inner();
    out.write_all(&sum.to_le_bytes())?;
    out.flush()?;
    Ok(())
}

/// Deserialize a `BHL2` checkpoint into a backend + its metadata.
///
/// Validates the magic, format version, family byte, every section
/// length, the structural invariants of each decoded part, and finally
/// the CRC-32 trailer over the whole stream.
pub fn read_checkpoint<R: Read>(r: R) -> Result<(Box<dyn Backend>, CheckpointMeta), PersistError> {
    let mut r = Crc32Reader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|e| truncated(e, "magic"))?;
    if &magic != MAGIC {
        return Err(PersistError::BadMagic {
            expected: *MAGIC,
            found: magic,
        });
    }
    let mut head = [0u8; 4];
    r.read_exact(&mut head)
        .map_err(|e| truncated(e, "header"))?;
    if head[0] != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { found: head[0] });
    }
    let family = head[1];
    let meta = CheckpointMeta {
        batch_seq: read_u64(&mut r, "header")?,
        version: read_u64(&mut r, "header")?,
    };
    let backend: Box<dyn Backend> = match family {
        0 => Box::new(load_undirected(&mut r)?),
        1 => Box::new(load_directed(&mut r)?),
        2 => Box::new(load_weighted(&mut r)?),
        other => {
            return Err(PersistError::Header {
                reason: format!("unknown backend family code {other}"),
            })
        }
    };
    // The trailer is read from the inner stream so it is not digested.
    let computed = r.sum();
    let mut trailer = [0u8; 4];
    r.get_mut()
        .read_exact(&mut trailer)
        .map_err(|e| truncated(e, "checksum trailer"))?;
    let expected = u32::from_le_bytes(trailer);
    if expected != computed {
        return Err(PersistError::ChecksumMismatch {
            expected,
            found: computed,
        });
    }
    Ok((backend, meta))
}

pub(crate) fn family_code(family: crate::backend::BackendFamily) -> u8 {
    match family {
        crate::backend::BackendFamily::Undirected => 0,
        crate::backend::BackendFamily::Directed => 1,
        crate::backend::BackendFamily::Weighted => 2,
    }
}

fn algorithm_code(a: Algorithm) -> u8 {
    match a {
        Algorithm::Bhl => 0,
        Algorithm::BhlPlus => 1,
        Algorithm::BhlS => 2,
        Algorithm::Uhl => 3,
        Algorithm::UhlPlus => 4,
    }
}

fn algorithm_from_code(c: u8) -> Result<Algorithm, PersistError> {
    Ok(match c {
        0 => Algorithm::Bhl,
        1 => Algorithm::BhlPlus,
        2 => Algorithm::BhlS,
        3 => Algorithm::Uhl,
        4 => Algorithm::UhlPlus,
        other => {
            return Err(PersistError::Header {
                reason: format!("unknown algorithm code {other}"),
            })
        }
    })
}

fn truncated(e: io::Error, section: &'static str) -> PersistError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        PersistError::Truncated { section }
    } else {
        PersistError::Io(e)
    }
}

fn read_u64<R: Read>(r: &mut R, section: &'static str) -> Result<u64, PersistError> {
    binio::read_u64(r, |e| truncated(e, section))
}

fn read_u32<R: Read>(r: &mut R, section: &'static str) -> Result<u32, PersistError> {
    binio::read_u32(r, |e| truncated(e, section))
}

fn read_u8<R: Read>(r: &mut R, section: &'static str) -> Result<u8, PersistError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b).map_err(|e| truncated(e, section))?;
    Ok(b[0])
}

fn read_f32<R: Read>(r: &mut R, section: &'static str) -> Result<f32, PersistError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(|e| truncated(e, section))?;
    Ok(f32::from_le_bytes(b))
}

/// Run `f` over exactly `len` bytes of `r`; trailing unconsumed bytes
/// are a typed error (a block that lied about its length).
fn read_section<R: Read, T>(
    r: &mut R,
    len: u64,
    what: &'static str,
    f: impl FnOnce(&mut io::Take<&mut R>) -> Result<T, PersistError>,
) -> Result<T, PersistError> {
    let mut sect = r.take(len);
    let v = f(&mut sect)?;
    if sect.limit() != 0 {
        return Err(PersistError::Header {
            reason: format!("{what} section left {} undecoded bytes", sect.limit()),
        });
    }
    Ok(v)
}

fn write_config<W: Write + ?Sized>(
    out: &mut W,
    algorithm: Option<Algorithm>,
    threads: usize,
    compaction: CompactionPolicy,
) -> Result<(), PersistError> {
    if let Some(a) = algorithm {
        out.write_all(&[algorithm_code(a)])?;
    }
    out.write_all(&(threads as u32).to_le_bytes())?;
    out.write_all(&compaction.fraction.to_le_bytes())?;
    out.write_all(&(compaction.min_entries as u64).to_le_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------
// Per-family save/load bodies (the meat of `Backend::save`).
// ---------------------------------------------------------------------

pub(crate) fn save_undirected(index: &BatchIndex, out: &mut dyn Write) -> Result<(), PersistError> {
    let config = index.config();
    write_config(
        out,
        Some(config.algorithm),
        config.threads,
        config.compaction,
    )?;
    out.write_all(&graph_bin_len(index.graph()).to_le_bytes())?;
    write_graph_bin(index.graph(), &mut *out)?;
    out.write_all(&labelling_encoded_len(index.labelling()).to_le_bytes())?;
    write_labelling(index.labelling(), &mut *out)?;
    Ok(())
}

fn load_undirected<R: Read>(r: &mut R) -> Result<BatchIndex, PersistError> {
    let algorithm = algorithm_from_code(read_u8(r, "config")?)?;
    let threads = read_u32(r, "config")? as usize;
    let fraction = read_f32(r, "config")?;
    let min_entries = read_u64(r, "config")? as usize;
    let glen = read_u64(r, "graph length")?;
    let graph = read_section(r, glen, "graph", |s| Ok(read_graph_bin(s)?))?;
    let llen = read_u64(r, "labelling length")?;
    let lab = read_section(r, llen, "labelling", |s| Ok(read_labelling(s)?))?;
    let config = IndexConfig {
        selection: LandmarkSelection::Explicit(lab.landmarks().to_vec()),
        algorithm,
        threads: threads.max(1),
        compaction: CompactionPolicy::new(fraction, min_entries),
    };
    Ok(BatchIndex::from_parts(graph, lab, config)?)
}

pub(crate) fn save_directed(
    index: &DirectedBatchIndex,
    out: &mut dyn Write,
) -> Result<(), PersistError> {
    let config = index.config();
    write_config(
        out,
        Some(config.algorithm),
        config.threads,
        config.compaction,
    )?;
    out.write_all(&digraph_bin_len(index.graph()).to_le_bytes())?;
    write_digraph_bin(index.graph(), &mut *out)?;
    for lab in [index.forward_labelling(), index.backward_labelling()] {
        out.write_all(&labelling_encoded_len(lab).to_le_bytes())?;
        write_labelling(lab, &mut *out)?;
    }
    Ok(())
}

fn load_directed<R: Read>(r: &mut R) -> Result<DirectedBatchIndex, PersistError> {
    let algorithm = algorithm_from_code(read_u8(r, "config")?)?;
    let threads = read_u32(r, "config")? as usize;
    let fraction = read_f32(r, "config")?;
    let min_entries = read_u64(r, "config")? as usize;
    let glen = read_u64(r, "graph length")?;
    let graph = read_section(r, glen, "graph", |s| Ok(read_digraph_bin(s)?))?;
    let flen = read_u64(r, "forward labelling length")?;
    let fwd = read_section(r, flen, "forward labelling", |s| Ok(read_labelling(s)?))?;
    let blen = read_u64(r, "backward labelling length")?;
    let bwd = read_section(r, blen, "backward labelling", |s| Ok(read_labelling(s)?))?;
    let config = IndexConfig {
        selection: LandmarkSelection::Explicit(fwd.landmarks().to_vec()),
        algorithm,
        threads: threads.max(1),
        compaction: CompactionPolicy::new(fraction, min_entries),
    };
    Ok(DirectedBatchIndex::from_parts(graph, fwd, bwd, config)?)
}

pub(crate) fn save_weighted(
    index: &WeightedBatchIndex,
    out: &mut dyn Write,
) -> Result<(), PersistError> {
    write_config(out, None, index.threads(), index.compaction())?;
    out.write_all(&weighted_bin_len(index.graph()).to_le_bytes())?;
    write_weighted_bin(index.graph(), &mut *out)?;
    out.write_all(&labelling_encoded_len(index.labelling()).to_le_bytes())?;
    write_labelling(index.labelling(), &mut *out)?;
    Ok(())
}

fn load_weighted<R: Read>(r: &mut R) -> Result<WeightedBatchIndex, PersistError> {
    let threads = read_u32(r, "config")? as usize;
    let fraction = read_f32(r, "config")?;
    let min_entries = read_u64(r, "config")? as usize;
    let glen = read_u64(r, "graph length")?;
    let graph = read_section(r, glen, "graph", |s| Ok(read_weighted_bin(s)?))?;
    let llen = read_u64(r, "labelling length")?;
    let lab = read_section(r, llen, "labelling", |s| Ok(read_labelling(s)?))?;
    Ok(WeightedBatchIndex::from_parts(graph, lab)?
        .with_threads(threads.max(1))
        .with_compaction(CompactionPolicy::new(fraction, min_entries)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{build_backend, GraphSource};
    use batchhl_graph::generators::barabasi_albert;
    use batchhl_graph::weighted::WeightedGraph;
    use batchhl_graph::DynamicDiGraph;

    fn sources() -> Vec<GraphSource> {
        let und = barabasi_albert(80, 3, 11);
        let mut dir = DynamicDiGraph::new(40);
        let mut wtd = WeightedGraph::new(40);
        for (u, v) in barabasi_albert(40, 2, 5).edges() {
            dir.insert_edge(u, v);
            if (u + v) % 3 != 0 {
                dir.insert_edge(v, u);
            }
            wtd.insert_edge(u, v, 1 + (u + 2 * v) % 5);
        }
        vec![
            GraphSource::Undirected(und),
            GraphSource::Directed(dir),
            GraphSource::Weighted(wtd),
        ]
    }

    #[test]
    fn checkpoint_roundtrips_all_families() {
        for source in sources() {
            let family = source.family();
            let config = IndexConfig {
                selection: LandmarkSelection::TopDegree(4),
                algorithm: Algorithm::BhlPlus,
                threads: 2,
                compaction: CompactionPolicy::new(0.5, 16),
            };
            let mut backend = build_backend(source, config).unwrap();
            let meta = CheckpointMeta {
                batch_seq: 7,
                version: 3,
            };
            let mut buf = Vec::new();
            write_checkpoint(backend.as_ref(), meta, &mut buf).unwrap();
            let (mut loaded, got_meta) = read_checkpoint(buf.as_slice()).unwrap();
            assert_eq!(got_meta, meta, "{family}");
            assert_eq!(loaded.family(), family);
            assert_eq!(loaded.num_vertices(), backend.num_vertices());
            let n = backend.num_vertices() as u32;
            for s in (0..n).step_by(3) {
                for t in (0..n).step_by(7) {
                    assert_eq!(
                        loaded.query(s, t),
                        backend.query(s, t),
                        "{family} ({s},{t})"
                    );
                }
            }
            // Serialization is deterministic: save(load(x)) == x.
            let mut again = Vec::new();
            write_checkpoint(loaded.as_ref(), got_meta, &mut again).unwrap();
            assert_eq!(again, buf, "{family}: byte-stable reserialization");
        }
    }

    #[test]
    fn corruption_yields_typed_errors() {
        let config = IndexConfig {
            selection: LandmarkSelection::TopDegree(3),
            ..IndexConfig::default()
        };
        let backend =
            build_backend(GraphSource::Undirected(barabasi_albert(30, 2, 3)), config).unwrap();
        let mut buf = Vec::new();
        write_checkpoint(backend.as_ref(), CheckpointMeta::default(), &mut buf).unwrap();

        assert!(matches!(
            read_checkpoint(&b"NOPE"[..]),
            Err(PersistError::BadMagic { .. })
        ));
        let mut v = buf.clone();
        v[4] = 9; // format version
        assert!(matches!(
            read_checkpoint(v.as_slice()),
            Err(PersistError::UnsupportedVersion { found: 9 })
        ));
        let mut v = buf.clone();
        v[5] = 7; // family code
        assert!(matches!(
            read_checkpoint(v.as_slice()),
            Err(PersistError::Header { .. })
        ));
        // A flipped payload byte is caught by the CRC trailer (flip a
        // label byte deep in the body — structure still parses).
        let mut v = buf.clone();
        let deep = v.len() - 10;
        v[deep] ^= 0x01;
        let err = read_checkpoint(v.as_slice()).map(|_| ()).unwrap_err();
        assert!(
            matches!(err, PersistError::ChecksumMismatch { .. }),
            "got {err:?}"
        );
        // Truncation anywhere is typed, never a panic.
        for cut in [3, 9, 17, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_checkpoint(&buf[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }
}
