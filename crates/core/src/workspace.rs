//! Reusable per-landmark workspace for batch search and batch repair.
//!
//! One `UpdateWorkspace` serves every landmark of every batch: all
//! members reset sparsely (epoch bump or touched-list walk), so the
//! steady-state update path performs no allocation. Parallel updates
//! (BHLₚ) give each thread its own workspace.

use batchhl_common::{DialQueue, EpochCache, LandmarkLength, LexDialQueue, SparseBitSet, Vertex};
use batchhl_hcl::Labelling;

/// Scratch state shared by Algorithms 2, 3 and 4.
#[derive(Debug, Default)]
pub struct UpdateWorkspace {
    /// `V_aff` — affected-vertex set of the current landmark.
    pub aff: SparseBitSet,
    /// Queue for the basic search (Algorithm 2).
    pub queue: DialQueue,
    /// Queue for the improved search (Algorithm 3).
    pub lex_queue: LexDialQueue,
    /// Queue for repair (Algorithm 4), keyed by distance bound.
    pub repair_queue: DialQueue,
    /// Memo of `d^L_G(r, ·)` lookups for the current landmark — the
    /// "store distances for all unaffected neighbours" optimization the
    /// paper uses to drop the `l` factor from Algorithm 4's complexity.
    pub dl_cache: EpochCache,
    /// `D_bou` of Algorithm 4 (landmark distance bounds), epoch-stamped.
    pub bounds: EpochCache,
}

impl UpdateWorkspace {
    pub fn new(n: usize) -> Self {
        UpdateWorkspace {
            aff: SparseBitSet::new(n),
            queue: DialQueue::new(),
            lex_queue: LexDialQueue::new(),
            repair_queue: DialQueue::new(),
            dl_cache: EpochCache::new(n),
            bounds: EpochCache::new(n),
        }
    }

    /// Make room for `n` vertices (cheap when already large enough).
    pub fn grow(&mut self, n: usize) {
        self.aff.grow(n);
        self.dl_cache.grow(n);
        self.bounds.grow(n);
    }

    /// Reset everything for the next landmark.
    pub fn reset(&mut self) {
        self.aff.clear();
        self.queue.clear();
        self.lex_queue.clear();
        self.repair_queue.clear();
        self.dl_cache.clear();
        self.bounds.clear();
    }
}

/// Memoized `d^L_G(r_i, v)` lookup against the *old* labelling.
///
/// The search phase touches every neighbour of every affected vertex
/// with this oracle; batch repair then re-reads exactly those vertices,
/// hitting the cache.
#[inline]
pub fn dl_old(lab: &Labelling, i: usize, v: Vertex, cache: &mut EpochCache) -> LandmarkLength {
    if let Some(key) = cache.get(v as usize) {
        return LandmarkLength::from_key(key);
    }
    let ll = lab.landmark_dist(i, v);
    cache.set(v as usize, ll.key());
    ll
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_graph::generators::path;
    use batchhl_hcl::build_labelling;

    #[test]
    fn dl_old_caches_correctly() {
        let g = path(6);
        let lab = build_labelling(&g, vec![0, 3]).unwrap();
        let mut cache = EpochCache::new(6);
        for v in 0..6u32 {
            let fresh = lab.landmark_dist(0, v);
            let first = dl_old(&lab, 0, v, &mut cache);
            let second = dl_old(&lab, 0, v, &mut cache);
            assert_eq!(first, fresh);
            assert_eq!(second, fresh);
        }
        // Cache must not leak across landmarks: caller clears.
        cache.clear();
        let v1_for_lm1 = dl_old(&lab, 1, 1, &mut cache);
        assert_eq!(v1_for_lm1, lab.landmark_dist(1, 1));
    }

    #[test]
    fn workspace_reset_and_grow() {
        let mut ws = UpdateWorkspace::new(4);
        ws.aff.insert(3);
        ws.queue.push(1, 3);
        ws.bounds.set(3, 42);
        ws.reset();
        assert!(!ws.aff.contains(3));
        assert!(ws.queue.is_empty());
        assert_eq!(ws.bounds.get(3), None);
        ws.grow(100);
        ws.aff.insert(99);
        assert!(ws.aff.contains(99));
    }
}
