//! Concurrent query handles over published index generations.
//!
//! A reader is a `Send + Sync` value obtained from an index
//! (`BatchIndex::reader` and the directed/weighted counterparts). It
//! owns a [`ReaderHandle`] onto the index's
//! [`LabelStore`] plus its private search
//! workspace, so any number of readers can run queries on their own
//! threads, lock-free in steady state, while the single writer applies
//! batches and publishes new generations.
//!
//! One generic [`GenReader`] serves every index variant: a snapshot
//! type describes how to answer a query against itself (the
//! [`SnapshotQuery`] trait — which search engine it needs and which
//! query path to run), and the reader supplies the pin/refresh
//! machinery once. [`Reader`], [`DirectedReader`] and
//! [`WeightedReader`] are aliases.
//!
//! Two query modes:
//!
//! * [`GenReader::query`] / [`GenReader::query_dist`] — follow
//!   publications: each call re-pins the freshest generation (one
//!   atomic version load when nothing changed).
//! * [`GenReader::pin`] + [`GenReader::query_dist_pinned`] — freeze one
//!   generation and answer a whole batch of queries against it, for
//!   workloads that need cross-query consistency.
//!
//! Every answer is exact for the generation it was computed on: a
//! reader never observes a half-applied batch, because generations are
//! immutable snapshots swapped in atomically.

use crate::directed::{directed_distances_from, directed_query_dist, DirectedSnapshot};
use crate::index::IndexSnapshot;
use crate::weighted::{
    weighted_distances_from, weighted_query_dist, weighted_top_k, WeightedSnapshot,
};
use batchhl_common::{Dist, Vertex, INF};
use batchhl_graph::bfs::BiBfs;
use batchhl_graph::weighted::BiDijkstra;
use batchhl_hcl::{LabelStore, QueryEngine, ReaderHandle, Versioned};
use std::fmt::Debug;
use std::sync::{Arc, Mutex, RwLock};

/// How a snapshot type answers distance queries against itself.
///
/// Single-pair queries and the batched one-to-many plan are both part
/// of the contract so every consumer of a snapshot — the owning index,
/// [`GenReader`] handles, [`SharedReader`] handles and the type-erased
/// [`crate::backend::Backend`] — serves the identical query surface.
pub trait SnapshotQuery {
    /// The reusable search workspace a reader keeps per handle.
    type Engine: Default + Debug + Send + Sync;

    /// Exact distance on this snapshot, `INF` when disconnected or out
    /// of this generation's vertex range.
    fn snapshot_query_dist(&self, engine: &mut Self::Engine, s: Vertex, t: Vertex) -> Dist;

    /// One-source-to-many-targets distances on this snapshot (aligned
    /// with `targets`, `INF` for disconnected/out-of-range): builds one
    /// source-side label plan and reuses it across every target, and
    /// for large target sets replaces the per-target bidirectional
    /// searches with a single bounded sweep.
    fn snapshot_distances_from(
        &self,
        engine: &mut Self::Engine,
        s: Vertex,
        targets: &[Vertex],
    ) -> Vec<Dist>;

    /// The `k` vertices closest to `s` (excluding `s`), nondecreasing
    /// by distance — a capped sweep of the full snapshot graph.
    fn snapshot_top_k(&self, engine: &mut Self::Engine, s: Vertex, k: usize)
        -> Vec<(Vertex, Dist)>;
}

// Every snapshot answers over its frozen CSR view (`snapshot.view`),
// not the dynamic writer graph it also carries: reader traversal is
// sequential array access.
impl SnapshotQuery for IndexSnapshot {
    type Engine = QueryEngine;

    fn snapshot_query_dist(&self, engine: &mut QueryEngine, s: Vertex, t: Vertex) -> Dist {
        let n = self.view.num_vertices();
        if (s as usize) >= n || (t as usize) >= n {
            return INF;
        }
        engine.query_dist(&self.lab, &self.view, s, t)
    }

    fn snapshot_distances_from(
        &self,
        engine: &mut QueryEngine,
        s: Vertex,
        targets: &[Vertex],
    ) -> Vec<Dist> {
        engine.distances_from(&self.lab, &self.view, s, targets)
    }

    fn snapshot_top_k(&self, engine: &mut QueryEngine, s: Vertex, k: usize) -> Vec<(Vertex, Dist)> {
        engine.top_k_closest(&self.view, s, k)
    }
}

impl SnapshotQuery for DirectedSnapshot {
    type Engine = BiBfs;

    fn snapshot_query_dist(&self, engine: &mut BiBfs, s: Vertex, t: Vertex) -> Dist {
        directed_query_dist(&self.view, &self.fwd, &self.bwd, engine, s, t)
    }

    fn snapshot_distances_from(
        &self,
        engine: &mut BiBfs,
        s: Vertex,
        targets: &[Vertex],
    ) -> Vec<Dist> {
        directed_distances_from(&self.view, &self.fwd, &self.bwd, engine, s, targets)
    }

    fn snapshot_top_k(&self, engine: &mut BiBfs, s: Vertex, k: usize) -> Vec<(Vertex, Dist)> {
        batchhl_hcl::query::bfs_top_k(engine, &self.view, s, k)
    }
}

impl SnapshotQuery for WeightedSnapshot {
    type Engine = BiDijkstra;

    fn snapshot_query_dist(&self, engine: &mut BiDijkstra, s: Vertex, t: Vertex) -> Dist {
        weighted_query_dist(&self.view, &self.lab, engine, s, t)
    }

    fn snapshot_distances_from(
        &self,
        engine: &mut BiDijkstra,
        s: Vertex,
        targets: &[Vertex],
    ) -> Vec<Dist> {
        weighted_distances_from(&self.view, &self.lab, engine, s, targets)
    }

    fn snapshot_top_k(&self, engine: &mut BiDijkstra, s: Vertex, k: usize) -> Vec<(Vertex, Dist)> {
        weighted_top_k(&self.view, engine, s, k)
    }
}

/// Batched pair queries against one snapshot: sort the pair indices by
/// source, answer each group of pairs sharing a source through
/// [`SnapshotQuery::snapshot_distances_from`] (one source plan per
/// group), and scatter the answers back into request order. Singleton
/// groups take the plain per-pair path — a plan would cost more than
/// it saves.
pub(crate) fn query_many_on<S: SnapshotQuery>(
    snap: &S,
    engine: &mut S::Engine,
    pairs: &[(Vertex, Vertex)],
) -> Vec<Option<Dist>> {
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    order.sort_unstable_by_key(|&k| pairs[k].0);
    let mut out = vec![None; pairs.len()];
    let mut targets: Vec<Vertex> = Vec::new();
    let mut group = 0;
    while group < order.len() {
        let s = pairs[order[group]].0;
        let end = order[group..]
            .iter()
            .position(|&k| pairs[k].0 != s)
            .map_or(order.len(), |p| group + p);
        if end - group == 1 {
            let (s, t) = pairs[order[group]];
            let d = snap.snapshot_query_dist(engine, s, t);
            out[order[group]] = (d != INF).then_some(d);
        } else {
            targets.clear();
            targets.extend(order[group..end].iter().map(|&k| pairs[k].1));
            let dists = snap.snapshot_distances_from(engine, s, &targets);
            for (&k, d) in order[group..end].iter().zip(dists) {
                out[k] = (d != INF).then_some(d);
            }
        }
        group = end;
    }
    out
}

/// Concurrent query handle over published generations of snapshot type
/// `S`.
#[derive(Debug)]
pub struct GenReader<S: SnapshotQuery> {
    handle: ReaderHandle<S>,
    engine: S::Engine,
}

/// Concurrent query handle over an undirected [`crate::BatchIndex`].
pub type Reader = GenReader<IndexSnapshot>;

/// Concurrent query handle over a [`crate::DirectedBatchIndex`].
pub type DirectedReader = GenReader<DirectedSnapshot>;

/// Concurrent query handle over a [`crate::WeightedBatchIndex`].
pub type WeightedReader = GenReader<WeightedSnapshot>;

impl<S: SnapshotQuery> Clone for GenReader<S> {
    fn clone(&self) -> Self {
        GenReader {
            handle: self.handle.clone(),
            engine: S::Engine::default(),
        }
    }
}

impl<S: SnapshotQuery> GenReader<S> {
    pub(crate) fn new(handle: ReaderHandle<S>) -> Self {
        GenReader {
            handle,
            engine: S::Engine::default(),
        }
    }

    /// Version of the generation the last query ran against.
    pub fn version(&self) -> u64 {
        self.handle.pinned().version()
    }

    /// Re-pin the freshest generation and return it.
    pub fn pin(&mut self) -> Arc<Versioned<S>> {
        Arc::clone(self.handle.current())
    }

    /// Exact distance on the freshest published generation; `None` when
    /// disconnected (or out of range for that generation).
    pub fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        let d = self.query_dist(s, t);
        (d != INF).then_some(d)
    }

    /// As [`GenReader::query`], returning `INF` for disconnected pairs.
    pub fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        self.handle.current();
        self.query_dist_pinned(s, t)
    }

    /// Query the pinned generation without refreshing (see
    /// [`GenReader::pin`]).
    pub fn query_dist_pinned(&mut self, s: Vertex, t: Vertex) -> Dist {
        let snap = self.handle.pinned();
        snap.value().snapshot_query_dist(&mut self.engine, s, t)
    }

    /// Batched pair queries: re-pins the freshest generation **once**
    /// for the whole call (every answer is from the same generation),
    /// groups the pairs by source and reuses the per-source label plan
    /// across each group. Order of results matches `pairs`.
    pub fn query_many(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>> {
        let snap = Arc::clone(self.handle.current());
        query_many_on(snap.value(), &mut self.engine, pairs)
    }

    /// One-source-to-many-targets distances against the freshest
    /// generation (pinned once for the whole call); `None` marks
    /// disconnected or out-of-range endpoints.
    pub fn distances_from(&mut self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>> {
        let snap = Arc::clone(self.handle.current());
        snap.value()
            .snapshot_distances_from(&mut self.engine, s, targets)
            .into_iter()
            .map(|d| (d != INF).then_some(d))
            .collect()
    }

    /// The `k` vertices closest to `s` (excluding `s`) on the freshest
    /// generation, nondecreasing by distance.
    pub fn top_k_closest(&mut self, s: Vertex, k: usize) -> Vec<(Vertex, Dist)> {
        let snap = Arc::clone(self.handle.current());
        snap.value().snapshot_top_k(&mut self.engine, s, k)
    }
}

/// A `Send + Sync` query handle whose queries take **`&self`**: one
/// value can be shared by reference across any number of serving
/// threads (no per-thread clone, no `&mut`), which is the shape the
/// type-erased oracle reader needs.
///
/// Freshness works by *interior re-pinning*: each call compares the
/// store's atomic version counter against a cached generation behind a
/// `RwLock` — a read-lock in steady state, a write-lock only in the
/// instant after the writer publishes. Search workspaces are recycled
/// through a small lock-guarded pool, so concurrent callers never
/// serialize on a single engine and batched calls allocate nothing in
/// steady state.
#[derive(Debug)]
pub struct SharedReader<S: SnapshotQuery> {
    store: LabelStore<S>,
    cached: RwLock<Arc<Versioned<S>>>,
    engines: Mutex<Vec<S::Engine>>,
}

/// Engines retained for reuse per [`SharedReader`]; more concurrent
/// callers than this simply allocate a fresh workspace.
const ENGINE_POOL_CAP: usize = 16;

impl<S: SnapshotQuery> Clone for SharedReader<S> {
    fn clone(&self) -> Self {
        SharedReader::new(self.store.clone())
    }
}

impl<S: SnapshotQuery> SharedReader<S> {
    pub(crate) fn new(store: LabelStore<S>) -> Self {
        let cached = RwLock::new(store.snapshot());
        SharedReader {
            store,
            cached,
            engines: Mutex::new(Vec::new()),
        }
    }

    /// The version of the freshest published generation.
    pub fn version(&self) -> u64 {
        self.store.version()
    }

    /// Pin the freshest generation (one atomic load when nothing
    /// changed; refreshes the interior cache otherwise).
    pub fn pin(&self) -> Arc<Versioned<S>> {
        let published = self.store.version();
        {
            let cached = self.cached.read().expect("reader cache poisoned");
            if cached.version() == published {
                return Arc::clone(&cached);
            }
        }
        let fresh = self.store.snapshot();
        let mut cached = self.cached.write().expect("reader cache poisoned");
        // Another thread may have refreshed further; keep the newest.
        if fresh.version() > cached.version() {
            *cached = Arc::clone(&fresh);
            fresh
        } else {
            Arc::clone(&cached)
        }
    }

    fn with_engine<R>(&self, f: impl FnOnce(&mut S::Engine) -> R) -> R {
        let mut engine = self
            .engines
            .lock()
            .expect("engine pool poisoned")
            .pop()
            .unwrap_or_default();
        let out = f(&mut engine);
        let mut pool = self.engines.lock().expect("engine pool poisoned");
        if pool.len() < ENGINE_POOL_CAP {
            pool.push(engine);
        }
        out
    }

    /// Exact distance on the freshest generation; `None` when
    /// disconnected (or out of range for that generation).
    pub fn query(&self, s: Vertex, t: Vertex) -> Option<Dist> {
        let d = self.query_dist(s, t);
        (d != INF).then_some(d)
    }

    /// As [`SharedReader::query`], returning `INF` for disconnected.
    pub fn query_dist(&self, s: Vertex, t: Vertex) -> Dist {
        let snap = self.pin();
        self.with_engine(|engine| snap.value().snapshot_query_dist(engine, s, t))
    }

    /// Batched pair queries against one pinned generation (see
    /// [`GenReader::query_many`]).
    pub fn query_many(&self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>> {
        let snap = self.pin();
        self.with_engine(|engine| query_many_on(snap.value(), engine, pairs))
    }

    /// One-source-to-many-targets distances against one pinned
    /// generation (see [`GenReader::distances_from`]).
    pub fn distances_from(&self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>> {
        let snap = self.pin();
        self.with_engine(|engine| {
            snap.value()
                .snapshot_distances_from(engine, s, targets)
                .into_iter()
                .map(|d| (d != INF).then_some(d))
                .collect()
        })
    }

    /// The `k` vertices closest to `s` (excluding `s`), nondecreasing
    /// by distance.
    pub fn top_k_closest(&self, s: Vertex, k: usize) -> Vec<(Vertex, Dist)> {
        let snap = self.pin();
        self.with_engine(|engine| snap.value().snapshot_top_k(engine, s, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{Algorithm, BatchIndex, IndexConfig};
    use batchhl_graph::generators::{barabasi_albert, path};
    use batchhl_graph::Batch;
    use batchhl_hcl::{oracle, LandmarkSelection};

    fn config(k: usize) -> IndexConfig {
        IndexConfig {
            selection: LandmarkSelection::TopDegree(k),
            algorithm: Algorithm::BhlPlus,
            threads: 1,
            ..IndexConfig::default()
        }
    }

    #[test]
    fn reader_is_send_sync_and_matches_owner() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Reader>();
        assert_send_sync::<DirectedReader>();
        assert_send_sync::<WeightedReader>();

        let g = barabasi_albert(80, 2, 3);
        let mut index = BatchIndex::build(g, config(4));
        let mut reader = index.reader();
        for s in (0..80u32).step_by(9) {
            for t in (0..80u32).step_by(5) {
                assert_eq!(reader.query_dist(s, t), index.query_dist(s, t));
            }
        }
    }

    #[test]
    fn reader_follows_batches_and_pins() {
        let g = path(6);
        let mut index = BatchIndex::build(g, config(1));
        let mut live = index.reader();
        let mut frozen = index.reader();
        frozen.pin();
        assert_eq!(live.query(0, 5), Some(5));

        let mut b = Batch::new();
        b.insert(0, 5);
        index.apply_batch(&b);

        assert_eq!(live.query(0, 5), Some(1), "follows the publication");
        assert_eq!(live.version(), 1);
        assert_eq!(frozen.query_dist_pinned(0, 5), 5, "pinned stays stale");
        assert_eq!(frozen.version(), 0);
        assert_eq!(frozen.query(0, 5), Some(1), "query() re-pins");
    }

    #[test]
    fn reader_handles_vertex_growth_and_range() {
        let g = path(4);
        let mut index = BatchIndex::build(g, config(1));
        let mut reader = index.reader();
        assert_eq!(reader.query(0, 9), None, "out of range is disconnected");
        let mut b = Batch::new();
        b.insert(3, 9);
        index.apply_batch(&b);
        oracle::check_minimal(index.graph(), index.labelling()).unwrap();
        assert_eq!(reader.query(0, 9), Some(4), "0-1-2-3-9");
    }

    #[test]
    fn batched_reader_queries_match_per_pair() {
        let g = barabasi_albert(90, 3, 11);
        let mut index = BatchIndex::build(g, config(5));
        let mut reader = index.reader();
        let pairs: Vec<(u32, u32)> = (0..90u32)
            .flat_map(|s| [(s % 7, s), (s, (s * 13) % 90)])
            .collect();
        let batched = reader.query_many(&pairs);
        for (&(s, t), &got) in pairs.iter().zip(&batched) {
            assert_eq!(got, index.query(s, t), "({s},{t})");
        }
        let targets: Vec<u32> = (0..90).collect();
        for s in [0u32, 3, 41] {
            let many = reader.distances_from(s, &targets);
            for (&t, &got) in targets.iter().zip(&many) {
                assert_eq!(got, index.query(s, t), "({s},{t})");
            }
            let top = reader.top_k_closest(s, 5);
            assert_eq!(top.len(), 5);
            assert!(top.windows(2).all(|w| w[0].1 <= w[1].1));
            for &(v, d) in &top {
                assert_eq!(index.query(s, v), Some(d));
            }
        }
    }

    #[test]
    fn shared_reader_serves_by_shared_reference() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedReader<IndexSnapshot>>();

        let g = path(6);
        let mut index = BatchIndex::build(g, config(1));
        let shared = index.shared_reader();
        assert_eq!(shared.query(0, 5), Some(5));
        let mut b = Batch::new();
        b.insert(0, 5);
        index.apply_batch(&b);
        // &self queries re-pin internally — no &mut anywhere.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shared = &shared;
                scope.spawn(move || {
                    assert_eq!(shared.query(0, 5), Some(1));
                    assert_eq!(shared.query_many(&[(0, 5), (0, 4)]), vec![Some(1), Some(2)]);
                    assert_eq!(shared.distances_from(5, &[0, 3]), vec![Some(1), Some(2)]);
                });
            }
        });
        assert_eq!(shared.version(), 1);
        assert_eq!(shared.top_k_closest(0, 2), vec![(1, 1), (5, 1)]);
    }

    #[test]
    fn cloned_readers_are_independent() {
        let g = path(5);
        let mut index = BatchIndex::build(g, config(1));
        let mut a = index.reader();
        let b_reader = a.clone();
        let mut b = b_reader;
        let mut batch = Batch::new();
        batch.insert(0, 4);
        index.apply_batch(&batch);
        assert_eq!(a.query(0, 4), Some(1));
        // The clone still works and refreshes on its own schedule.
        assert_eq!(b.query_dist_pinned(0, 4), 4);
        assert_eq!(b.query(0, 4), Some(1));
    }
}
