//! Concurrent query handles over published index generations.
//!
//! A reader is a `Send + Sync` value obtained from an index
//! (`BatchIndex::reader` and the directed/weighted counterparts). It
//! owns a [`ReaderHandle`] onto the index's
//! [`LabelStore`](batchhl_hcl::LabelStore) plus its private search
//! workspace, so any number of readers can run queries on their own
//! threads, lock-free in steady state, while the single writer applies
//! batches and publishes new generations.
//!
//! One generic [`GenReader`] serves every index variant: a snapshot
//! type describes how to answer a query against itself (the
//! [`SnapshotQuery`] trait — which search engine it needs and which
//! query path to run), and the reader supplies the pin/refresh
//! machinery once. [`Reader`], [`DirectedReader`] and
//! [`WeightedReader`] are aliases.
//!
//! Two query modes:
//!
//! * [`GenReader::query`] / [`GenReader::query_dist`] — follow
//!   publications: each call re-pins the freshest generation (one
//!   atomic version load when nothing changed).
//! * [`GenReader::pin`] + [`GenReader::query_dist_pinned`] — freeze one
//!   generation and answer a whole batch of queries against it, for
//!   workloads that need cross-query consistency.
//!
//! Every answer is exact for the generation it was computed on: a
//! reader never observes a half-applied batch, because generations are
//! immutable snapshots swapped in atomically.

use crate::directed::{directed_query_dist, DirectedSnapshot};
use crate::index::IndexSnapshot;
use crate::weighted::{weighted_query_dist, WeightedSnapshot};
use batchhl_common::{Dist, Vertex, INF};
use batchhl_graph::bfs::BiBfs;
use batchhl_graph::weighted::BiDijkstra;
use batchhl_hcl::{QueryEngine, ReaderHandle, Versioned};
use std::fmt::Debug;
use std::sync::Arc;

/// How a snapshot type answers distance queries against itself.
pub trait SnapshotQuery {
    /// The reusable search workspace a reader keeps per handle.
    type Engine: Default + Debug + Send + Sync;

    /// Exact distance on this snapshot, `INF` when disconnected or out
    /// of this generation's vertex range.
    fn snapshot_query_dist(&self, engine: &mut Self::Engine, s: Vertex, t: Vertex) -> Dist;
}

// Every snapshot answers over its frozen CSR view (`snapshot.view`),
// not the dynamic writer graph it also carries: reader traversal is
// sequential array access.
impl SnapshotQuery for IndexSnapshot {
    type Engine = QueryEngine;

    fn snapshot_query_dist(&self, engine: &mut QueryEngine, s: Vertex, t: Vertex) -> Dist {
        let n = self.view.num_vertices();
        if (s as usize) >= n || (t as usize) >= n {
            return INF;
        }
        engine.query_dist(&self.lab, &self.view, s, t)
    }
}

impl SnapshotQuery for DirectedSnapshot {
    type Engine = BiBfs;

    fn snapshot_query_dist(&self, engine: &mut BiBfs, s: Vertex, t: Vertex) -> Dist {
        directed_query_dist(&self.view, &self.fwd, &self.bwd, engine, s, t)
    }
}

impl SnapshotQuery for WeightedSnapshot {
    type Engine = BiDijkstra;

    fn snapshot_query_dist(&self, engine: &mut BiDijkstra, s: Vertex, t: Vertex) -> Dist {
        weighted_query_dist(&self.view, &self.lab, engine, s, t)
    }
}

/// Concurrent query handle over published generations of snapshot type
/// `S`.
#[derive(Debug)]
pub struct GenReader<S: SnapshotQuery> {
    handle: ReaderHandle<S>,
    engine: S::Engine,
}

/// Concurrent query handle over an undirected [`crate::BatchIndex`].
pub type Reader = GenReader<IndexSnapshot>;

/// Concurrent query handle over a [`crate::DirectedBatchIndex`].
pub type DirectedReader = GenReader<DirectedSnapshot>;

/// Concurrent query handle over a [`crate::WeightedBatchIndex`].
pub type WeightedReader = GenReader<WeightedSnapshot>;

impl<S: SnapshotQuery> Clone for GenReader<S> {
    fn clone(&self) -> Self {
        GenReader {
            handle: self.handle.clone(),
            engine: S::Engine::default(),
        }
    }
}

impl<S: SnapshotQuery> GenReader<S> {
    pub(crate) fn new(handle: ReaderHandle<S>) -> Self {
        GenReader {
            handle,
            engine: S::Engine::default(),
        }
    }

    /// Version of the generation the last query ran against.
    pub fn version(&self) -> u64 {
        self.handle.pinned().version()
    }

    /// Re-pin the freshest generation and return it.
    pub fn pin(&mut self) -> Arc<Versioned<S>> {
        Arc::clone(self.handle.current())
    }

    /// Exact distance on the freshest published generation; `None` when
    /// disconnected (or out of range for that generation).
    pub fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        let d = self.query_dist(s, t);
        (d != INF).then_some(d)
    }

    /// As [`GenReader::query`], returning `INF` for disconnected pairs.
    pub fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        self.handle.current();
        self.query_dist_pinned(s, t)
    }

    /// Query the pinned generation without refreshing (see
    /// [`GenReader::pin`]).
    pub fn query_dist_pinned(&mut self, s: Vertex, t: Vertex) -> Dist {
        let snap = self.handle.pinned();
        snap.value().snapshot_query_dist(&mut self.engine, s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{Algorithm, BatchIndex, IndexConfig};
    use batchhl_graph::generators::{barabasi_albert, path};
    use batchhl_graph::Batch;
    use batchhl_hcl::{oracle, LandmarkSelection};

    fn config(k: usize) -> IndexConfig {
        IndexConfig {
            selection: LandmarkSelection::TopDegree(k),
            algorithm: Algorithm::BhlPlus,
            threads: 1,
        }
    }

    #[test]
    fn reader_is_send_sync_and_matches_owner() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Reader>();
        assert_send_sync::<DirectedReader>();
        assert_send_sync::<WeightedReader>();

        let g = barabasi_albert(80, 2, 3);
        let mut index = BatchIndex::build(g, config(4));
        let mut reader = index.reader();
        for s in (0..80u32).step_by(9) {
            for t in (0..80u32).step_by(5) {
                assert_eq!(reader.query_dist(s, t), index.query_dist(s, t));
            }
        }
    }

    #[test]
    fn reader_follows_batches_and_pins() {
        let g = path(6);
        let mut index = BatchIndex::build(g, config(1));
        let mut live = index.reader();
        let mut frozen = index.reader();
        frozen.pin();
        assert_eq!(live.query(0, 5), Some(5));

        let mut b = Batch::new();
        b.insert(0, 5);
        index.apply_batch(&b);

        assert_eq!(live.query(0, 5), Some(1), "follows the publication");
        assert_eq!(live.version(), 1);
        assert_eq!(frozen.query_dist_pinned(0, 5), 5, "pinned stays stale");
        assert_eq!(frozen.version(), 0);
        assert_eq!(frozen.query(0, 5), Some(1), "query() re-pins");
    }

    #[test]
    fn reader_handles_vertex_growth_and_range() {
        let g = path(4);
        let mut index = BatchIndex::build(g, config(1));
        let mut reader = index.reader();
        assert_eq!(reader.query(0, 9), None, "out of range is disconnected");
        let mut b = Batch::new();
        b.insert(3, 9);
        index.apply_batch(&b);
        oracle::check_minimal(index.graph(), index.labelling()).unwrap();
        assert_eq!(reader.query(0, 9), Some(4), "0-1-2-3-9");
    }

    #[test]
    fn cloned_readers_are_independent() {
        let g = path(5);
        let mut index = BatchIndex::build(g, config(1));
        let mut a = index.reader();
        let b_reader = a.clone();
        let mut b = b_reader;
        let mut batch = Batch::new();
        batch.insert(0, 4);
        index.apply_batch(&batch);
        assert_eq!(a.query(0, 4), Some(1));
        // The clone still works and refreshes on its own schedule.
        assert_eq!(b.query_dist_pinned(0, 4), 4);
        assert_eq!(b.query(0, 4), Some(1));
    }
}
