//! Directed BatchHL (Section 6).
//!
//! Directed graphs keep **two** labellings: a forward one on `G`
//! (entries `(r, d(r→v))`, highway `δ_Hf(r_i, r_j) = d(r_i→r_j)`) and a
//! backward one that is simply the forward structure of the *reversed*
//! graph (entries `(r, d(v→r))`). Batch search and batch repair run
//! twice per update — once per direction — reusing the exact undirected
//! machinery through the [`AdjacencyView`] abstraction:
//!
//! * the search anchors only arc *heads* (`directed = true`): an arc
//!   `a→b` can only carry `r`-paths through it in its own direction;
//! * repair reads bounds from in-neighbours and relaxes out-neighbours,
//!   which on the reversed view becomes the mirror image.
//!
//! A query `d(s, t)` combines `d(s→r_i)` (backward labels of `s`),
//! `δ_Hf(r_i, r_j)` and `d(r_j→t)` (forward labels of `t`) into the
//! upper bound of Eq. 3, then refines with a directed bounded
//! bidirectional BFS on `G[V \ R]`.

use crate::index::run_landmarks_parallel;
use crate::repair::batch_repair;
use crate::search::batch_search;
use crate::search_improved::batch_search_improved;
use crate::stats::UpdateStats;
use crate::workspace::UpdateWorkspace;
use batchhl_common::{Dist, Vertex, INF};
use batchhl_graph::bfs::BiBfs;
use batchhl_graph::digraph::ReversedView;
use batchhl_graph::{AdjacencyView, Batch, DynamicDiGraph, Update};
use batchhl_hcl::{build_labelling_parallel, Labelling, NO_LABEL};
use std::time::Instant;

pub use crate::index::{Algorithm, IndexConfig};

/// Batch-dynamic distance index over a directed graph.
pub struct DirectedBatchIndex {
    graph: DynamicDiGraph,
    /// Forward labelling on `G` — answers `d(r → v)`.
    fwd: Labelling,
    /// Backward labelling (forward labelling of `Gᵀ`) — answers `d(v → r)`.
    bwd: Labelling,
    fwd_shadow: Labelling,
    bwd_shadow: Labelling,
    config: IndexConfig,
    ws: UpdateWorkspace,
    bibfs: BiBfs,
}

impl Clone for DirectedBatchIndex {
    fn clone(&self) -> Self {
        let n = self.graph.num_vertices();
        DirectedBatchIndex {
            graph: self.graph.clone(),
            fwd: self.fwd.clone(),
            bwd: self.bwd.clone(),
            fwd_shadow: self.fwd_shadow.clone(),
            bwd_shadow: self.bwd_shadow.clone(),
            config: self.config.clone(),
            ws: UpdateWorkspace::new(n),
            bibfs: BiBfs::new(n),
        }
    }
}

impl DirectedBatchIndex {
    pub fn build(graph: DynamicDiGraph, config: IndexConfig) -> Self {
        let landmarks = config.selection.select_directed(&graph);
        let threads = config.threads.max(1);
        let fwd = build_labelling_parallel(&graph, landmarks.clone(), threads);
        let bwd = build_labelling_parallel(&ReversedView(&graph), landmarks, threads);
        let n = graph.num_vertices();
        DirectedBatchIndex {
            fwd_shadow: fwd.clone(),
            bwd_shadow: bwd.clone(),
            graph,
            fwd,
            bwd,
            config,
            ws: UpdateWorkspace::new(n),
            bibfs: BiBfs::new(n),
        }
    }

    pub fn with_defaults(graph: DynamicDiGraph) -> Self {
        Self::build(graph, IndexConfig::default())
    }

    pub fn graph(&self) -> &DynamicDiGraph {
        &self.graph
    }

    pub fn forward_labelling(&self) -> &Labelling {
        &self.fwd
    }

    pub fn backward_labelling(&self) -> &Labelling {
        &self.bwd
    }

    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Combined logical size of both labellings in bytes.
    pub fn size_bytes(&self) -> usize {
        self.fwd.size_bytes() + self.bwd.size_bytes()
    }

    /// Exact directed distance `d(s → t)`; `None` if unreachable.
    pub fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        let d = self.query_dist(s, t);
        (d != INF).then_some(d)
    }

    /// As [`DirectedBatchIndex::query`] with `INF` for unreachable.
    pub fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        let n = self.graph.num_vertices();
        if (s as usize) >= n || (t as usize) >= n {
            return INF;
        }
        if s == t {
            return 0;
        }
        // Landmark endpoints: exact via the highway cover property.
        if let Some(i) = self.fwd.landmark_index(s) {
            return self.fwd.landmark_to_vertex(i, t);
        }
        if let Some(j) = self.bwd.landmark_index(t) {
            return self.bwd.landmark_to_vertex(j, s);
        }
        let bound = self.upper_bound(s, t);
        let fwd = &self.fwd;
        let found = self
            .bibfs
            .run(&self.graph, s, t, bound, |v| !fwd.is_landmark(v));
        found.unwrap_or(bound)
    }

    /// Eq. 3 for directed graphs: `min_{i,j} d(s→r_i) + δ_Hf(r_i, r_j)
    /// + d(r_j→t)` over the backward labels of `s` and forward labels
    /// of `t`.
    pub fn upper_bound(&self, s: Vertex, t: Vertex) -> Dist {
        let r = self.fwd.num_landmarks();
        let mut best = u64::from(INF);
        for i in 0..r {
            let ls = self.bwd.label(i, s);
            if ls == NO_LABEL {
                continue;
            }
            for j in 0..r {
                let h = self.fwd.highway(i, j);
                if h == INF {
                    continue;
                }
                let lt = self.fwd.label(j, t);
                if lt == NO_LABEL {
                    continue;
                }
                best = best.min(ls as u64 + h as u64 + lt as u64);
            }
        }
        best.min(u64::from(INF)) as Dist
    }

    /// Apply a batch of *directed* updates (Algorithm 1, run once per
    /// direction).
    pub fn apply_batch(&mut self, batch: &Batch) -> UpdateStats {
        let start = Instant::now();
        let norm = batch.normalize_directed(&self.graph);
        let mut stats = UpdateStats {
            passes: 1,
            ..Default::default()
        };
        if norm.is_empty() {
            stats.elapsed = start.elapsed();
            return stats;
        }
        stats.applied = self.graph.apply_batch(&norm);
        stats.insertions = norm.num_insertions();
        stats.deletions = norm.num_deletions();

        let n = self.graph.num_vertices();
        for lab in [
            &mut self.fwd,
            &mut self.bwd,
            &mut self.fwd_shadow,
            &mut self.bwd_shadow,
        ] {
            lab.ensure_vertices(n);
        }
        self.ws.grow(n);

        // Backward pass sees every arc reversed.
        let rev_updates: Vec<Update> = norm
            .updates()
            .iter()
            .map(|u| match *u {
                Update::Insert(a, b) => Update::Insert(b, a),
                Update::Delete(a, b) => Update::Delete(b, a),
            })
            .collect();

        let improved = self.config.algorithm.improved_search();
        let threads = self.config.threads.max(1);

        let fwd_aff = run_direction(
            &self.fwd_shadow,
            &self.graph,
            norm.updates(),
            improved,
            threads,
            &mut self.fwd,
            &mut self.ws,
        );
        sync_shadow(&mut self.fwd_shadow, &self.fwd, &fwd_aff);
        let rev = ReversedView(&self.graph);
        let bwd_aff = run_direction(
            &self.bwd_shadow,
            &rev,
            &rev_updates,
            improved,
            threads,
            &mut self.bwd,
            &mut self.ws,
        );
        sync_shadow(&mut self.bwd_shadow, &self.bwd, &bwd_aff);

        let r = self.fwd.num_landmarks();
        stats.affected_per_landmark = (0..r)
            .map(|i| fwd_aff[i].len() + bwd_aff[i].len())
            .collect();
        stats.affected_total = stats.affected_per_landmark.iter().sum();
        stats.elapsed = start.elapsed();
        stats
    }

    /// Rebuild both labellings from scratch.
    pub fn rebuild(&mut self) {
        let landmarks = self.fwd.landmarks().to_vec();
        let threads = self.config.threads.max(1);
        self.fwd = build_labelling_parallel(&self.graph, landmarks.clone(), threads);
        self.bwd = build_labelling_parallel(&ReversedView(&self.graph), landmarks, threads);
        self.fwd_shadow = self.fwd.clone();
        self.bwd_shadow = self.bwd.clone();
    }
}

/// Search + repair for one direction over all landmarks.
fn run_direction<A: AdjacencyView + Sync>(
    old: &Labelling,
    g: &A,
    updates: &[Update],
    improved: bool,
    threads: usize,
    new_lab: &mut Labelling,
    ws: &mut UpdateWorkspace,
) -> Vec<Vec<Vertex>> {
    let r = new_lab.num_landmarks();
    if threads > 1 && r > 1 {
        return run_landmarks_parallel(old, g, updates, improved, true, threads, new_lab);
    }
    let mut affected = Vec::with_capacity(r);
    for i in 0..r {
        ws.reset();
        if improved {
            batch_search_improved(old, g, updates, i, true, ws);
        } else {
            batch_search(old, g, updates, i, true, ws);
        }
        let (label_row, highway_row) = new_lab.row_mut(i);
        batch_repair(old, g, i, label_row, highway_row, ws);
        affected.push(ws.aff.inserted().to_vec());
    }
    affected
}

fn sync_shadow(shadow: &mut Labelling, lab: &Labelling, affected: &[Vec<Vertex>]) {
    let r = lab.num_landmarks();
    for (i, aff) in affected.iter().enumerate() {
        for &v in aff {
            shadow.set_label(i, v, lab.label(i, v));
        }
        for j in 0..r {
            shadow.set_highway_row(i, j, lab.highway(i, j));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_hcl::{oracle, LandmarkSelection};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn config(algorithm: Algorithm, k: usize) -> IndexConfig {
        IndexConfig {
            selection: LandmarkSelection::TopDegree(k),
            algorithm,
            threads: 1,
        }
    }

    fn random_digraph(n: usize, m: usize, seed: u64) -> DynamicDiGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = DynamicDiGraph::new(n);
        while g.num_edges() < m {
            let a = rng.gen_range(0..n as Vertex);
            let b = rng.gen_range(0..n as Vertex);
            if a != b {
                g.insert_edge(a, b);
            }
        }
        g
    }

    fn random_batch(g: &DynamicDiGraph, size: usize, rng: &mut StdRng) -> Batch {
        let n = g.num_vertices() as Vertex;
        let mut b = Batch::new();
        for _ in 0..size {
            let x = rng.gen_range(0..n);
            let y = rng.gen_range(0..n);
            if x == y {
                continue;
            }
            if g.has_edge(x, y) {
                b.delete(x, y);
            } else {
                b.insert(x, y);
            }
        }
        b
    }

    fn assert_both_minimal(index: &DirectedBatchIndex) {
        oracle::check_minimal(index.graph(), index.forward_labelling())
            .unwrap_or_else(|e| panic!("forward: {e}"));
        oracle::check_minimal(&ReversedView(index.graph()), index.backward_labelling())
            .unwrap_or_else(|e| panic!("backward: {e}"));
    }

    #[test]
    fn construction_is_minimal_both_ways() {
        let g = random_digraph(60, 180, 3);
        let index = DirectedBatchIndex::build(g, config(Algorithm::BhlPlus, 5));
        assert_both_minimal(&index);
    }

    #[test]
    fn queries_match_bfs_exhaustively() {
        let g = random_digraph(50, 160, 7);
        let truth = oracle::all_pairs_bfs(&g);
        let mut index = DirectedBatchIndex::build(g, config(Algorithm::BhlPlus, 5));
        for s in 0..50u32 {
            for t in 0..50u32 {
                assert_eq!(
                    index.query_dist(s, t),
                    truth[s as usize][t as usize],
                    "query({s},{t})"
                );
            }
        }
    }

    #[test]
    fn updates_track_rebuild() {
        for (alg, seed) in [
            (Algorithm::Bhl, 1u64),
            (Algorithm::BhlPlus, 2),
            (Algorithm::BhlPlus, 3),
            (Algorithm::Bhl, 4),
        ] {
            let g = random_digraph(60, 170, seed);
            let mut index = DirectedBatchIndex::build(g, config(alg, 5));
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF00);
            for round in 0..4 {
                let batch = random_batch(index.graph(), 12, &mut rng);
                index.apply_batch(&batch);
                oracle::check_minimal(index.graph(), index.forward_labelling())
                    .unwrap_or_else(|e| panic!("{alg:?}/{seed} fwd round {round}: {e}"));
                oracle::check_minimal(&ReversedView(index.graph()), index.backward_labelling())
                    .unwrap_or_else(|e| panic!("{alg:?}/{seed} bwd round {round}: {e}"));
            }
        }
    }

    #[test]
    fn queries_stay_exact_under_updates() {
        let g = random_digraph(40, 120, 11);
        let mut index = DirectedBatchIndex::build(g, config(Algorithm::BhlPlus, 4));
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..4 {
            let batch = random_batch(index.graph(), 10, &mut rng);
            index.apply_batch(&batch);
            let truth = oracle::all_pairs_bfs(index.graph());
            for s in 0..40u32 {
                for t in 0..40u32 {
                    assert_eq!(index.query_dist(s, t), truth[s as usize][t as usize]);
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = random_digraph(80, 240, 13);
        let mut rng = StdRng::seed_from_u64(77);
        let batch = random_batch(&g, 16, &mut rng);
        let mut seq = DirectedBatchIndex::build(g.clone(), config(Algorithm::BhlPlus, 6));
        seq.apply_batch(&batch);
        let mut cfg = config(Algorithm::BhlPlus, 6);
        cfg.threads = 4;
        let mut par = DirectedBatchIndex::build(g, cfg);
        par.apply_batch(&batch);
        assert_eq!(seq.fwd, par.fwd);
        assert_eq!(seq.bwd, par.bwd);
    }

    #[test]
    fn one_way_reachability() {
        // 0→1→2, landmark picks highest total degree (vertex 1).
        let g = DynamicDiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut index = DirectedBatchIndex::build(g, config(Algorithm::BhlPlus, 1));
        assert_eq!(index.query(0, 2), Some(2));
        assert_eq!(index.query(2, 0), None);
        // Add the return arc and re-check.
        let mut b = Batch::new();
        b.insert(2, 0);
        index.apply_batch(&b);
        assert_eq!(index.query(2, 0), Some(1));
        assert_both_minimal(&index);
    }
}
