//! Directed BatchHL (Section 6).
//!
//! Directed graphs keep **two** labellings: a forward one on `G`
//! (entries `(r, d(r→v))`, highway `δ_Hf(r_i, r_j) = d(r_i→r_j)`) and a
//! backward one that is simply the forward structure of the *reversed*
//! graph (entries `(r, d(v→r))`). Both passes run through the unified
//! update engine ([`crate::engine`]) with the same BFS kernel the
//! undirected index uses — the backward pass just hands it the
//! generic `Reversed` adapter and arc-reversed updates:
//!
//! * the search anchors only arc *heads* (`directed = true`): an arc
//!   `a→b` can only carry `r`-paths through it in its own direction;
//! * repair reads bounds from in-neighbours and relaxes out-neighbours,
//!   which on the reversed view becomes the mirror image.
//!
//! A query `d(s, t)` combines `d(s→r_i)` (backward labels of `s`),
//! `δ_Hf(r_i, r_j)` and `d(r_j→t)` (forward labels of `t`) into the
//! upper bound of Eq. 3, then refines with a directed bounded
//! bidirectional BFS on `G[V \ R]`.
//!
//! Like the undirected index, the directed index publishes immutable
//! `(graph, forward, backward)` generations; [`DirectedBatchIndex::reader`]
//! hands out concurrent [`DirectedReader`] query handles.

use crate::engine::{self, BfsKernel};
use crate::reader::{DirectedReader, SharedReader, SnapshotQuery};
use crate::stats::UpdateStats;
use crate::workspace::UpdateWorkspace;
use batchhl_common::{Dist, Vertex, INF};
use batchhl_graph::bfs::BiBfs;
use batchhl_graph::{AdjacencyView, Batch, CsrDiDelta, DynamicDiGraph, Reversed, Update};
use batchhl_hcl::{
    build_labelling_parallel, upper_bound_pair_patched, LabelError, LabelStore, Labelling,
    PatchedLabels, SourcePlan, Versioned,
};
use std::sync::Arc;
use std::time::Instant;

pub use crate::index::{Algorithm, CompactionPolicy, IndexConfig};

/// Batched directed calls switch to a single forward sweep once the
/// adaptive threshold of unresolved targets is reached (mirrors
/// [`batchhl_hcl::sweep_min_targets`]).
use batchhl_hcl::sweep_min_targets;

/// One immutable generation of the directed index. `graph` is the
/// writer's mutation substrate; `view` is the frozen two-direction CSR
/// (+ overlay) that queries and both update passes traverse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectedSnapshot {
    pub graph: DynamicDiGraph,
    /// Forward labelling on `G` — answers `d(r → v)`.
    pub fwd: Labelling,
    /// Backward labelling (forward labelling of `Gᵀ`) — answers `d(v → r)`.
    pub bwd: Labelling,
    pub view: CsrDiDelta,
}

impl DirectedSnapshot {
    fn placeholder() -> Self {
        let lab = Labelling::empty(0, Vec::new()).expect("empty labelling is valid");
        let graph = DynamicDiGraph::new(0);
        DirectedSnapshot {
            view: CsrDiDelta::from_adjacency(&graph),
            graph,
            fwd: lab.clone(),
            bwd: lab,
        }
    }
}

/// What one pass changed — enough to replay it onto a recycled buffer.
#[derive(Debug)]
struct PassLog {
    norm: Batch,
    fwd_aff: engine::AffectedLists,
    bwd_aff: engine::AffectedLists,
}

/// Batch-dynamic distance index over a directed graph.
pub struct DirectedBatchIndex {
    work: DirectedSnapshot,
    store: LabelStore<DirectedSnapshot>,
    recycler: engine::Recycler<DirectedSnapshot, PassLog>,
    config: IndexConfig,
    ws: UpdateWorkspace,
    bibfs: BiBfs,
}

impl Clone for DirectedBatchIndex {
    fn clone(&self) -> Self {
        let n = self.work.graph.num_vertices();
        DirectedBatchIndex {
            work: self.work.clone(),
            store: LabelStore::new(self.work.clone()),
            recycler: engine::Recycler::new(),
            config: self.config.clone(),
            ws: UpdateWorkspace::new(n),
            bibfs: BiBfs::new(n),
        }
    }
}

impl DirectedBatchIndex {
    pub fn build(graph: DynamicDiGraph, config: IndexConfig) -> Self {
        let landmarks = config.selection.select_directed(&graph);
        let threads = config.threads.max(1);
        // Both construction passes run over the frozen CSR snapshot.
        let view = CsrDiDelta::from_adjacency(&graph);
        let fwd = build_labelling_parallel(&view, landmarks.clone(), threads)
            .expect("selected landmarks are valid");
        let bwd = build_labelling_parallel(&Reversed(&view), landmarks, threads)
            .expect("selected landmarks are valid");
        let n = graph.num_vertices();
        let work = DirectedSnapshot {
            graph,
            fwd,
            bwd,
            view,
        };
        DirectedBatchIndex {
            store: LabelStore::new(work.clone()),
            work,
            recycler: engine::Recycler::new(),
            config,
            ws: UpdateWorkspace::new(n),
            bibfs: BiBfs::new(n),
        }
    }

    pub fn with_defaults(graph: DynamicDiGraph) -> Self {
        Self::build(graph, IndexConfig::default())
    }

    /// Assemble an index from externally persisted parts (the directed
    /// load path of `crate::persist`): a graph plus previously
    /// constructed forward and backward labellings.
    ///
    /// Performs structural validation (dimensions, landmark agreement
    /// between the two directions, highway diagonals); it does *not*
    /// prove the labellings match the graph — pair with
    /// `oracle::check_minimal` when provenance is in doubt.
    pub fn from_parts(
        graph: DynamicDiGraph,
        fwd: Labelling,
        bwd: Labelling,
        config: IndexConfig,
    ) -> Result<Self, LabelError> {
        let n = graph.num_vertices();
        for lab in [&fwd, &bwd] {
            if lab.num_vertices() != n {
                return Err(LabelError::VertexCountMismatch {
                    labelling: lab.num_vertices(),
                    graph: n,
                });
            }
            for i in 0..lab.num_landmarks() {
                if lab.highway(i, i) != 0 {
                    return Err(LabelError::CorruptHighwayDiagonal { index: i });
                }
            }
        }
        if fwd.landmarks() != bwd.landmarks() {
            return Err(LabelError::ShapeMismatch {
                what: "backward landmark list",
                expected: fwd.num_landmarks(),
                found: bwd.num_landmarks(),
            });
        }
        let view = CsrDiDelta::from_adjacency(&graph);
        let work = DirectedSnapshot {
            graph,
            fwd,
            bwd,
            view,
        };
        Ok(DirectedBatchIndex {
            store: LabelStore::new(work.clone()),
            work,
            recycler: engine::Recycler::new(),
            config,
            ws: UpdateWorkspace::new(n),
            bibfs: BiBfs::new(n),
        })
    }

    pub fn graph(&self) -> &DynamicDiGraph {
        &self.work.graph
    }

    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    pub fn forward_labelling(&self) -> &Labelling {
        &self.work.fwd
    }

    pub fn backward_labelling(&self) -> &Labelling {
        &self.work.bwd
    }

    pub fn num_vertices(&self) -> usize {
        self.work.graph.num_vertices()
    }

    /// Combined logical size of both labellings in bytes.
    pub fn size_bytes(&self) -> usize {
        self.work.fwd.size_bytes() + self.work.bwd.size_bytes()
    }

    /// The most recently published generation (what readers see).
    pub fn published(&self) -> Arc<Versioned<DirectedSnapshot>> {
        self.store.snapshot()
    }

    /// The version number of the published generation.
    pub fn version(&self) -> u64 {
        self.store.version()
    }

    /// A `Send + Sync` query handle over the published generations.
    pub fn reader(&self) -> DirectedReader {
        DirectedReader::new(self.store.reader())
    }

    /// A `Send + Sync` query handle whose queries take `&self` (see
    /// [`SharedReader`]).
    pub fn shared_reader(&self) -> SharedReader<DirectedSnapshot> {
        SharedReader::new(self.store.clone())
    }

    /// Tune the CSR compaction policy of both direction overlays
    /// (normally set up front through [`IndexConfig::compaction`]).
    pub fn set_compaction(&mut self, policy: CompactionPolicy) {
        self.config.compaction = policy;
        self.work.view.set_policy(policy);
    }

    /// Exact directed distance `d(s → t)`; `None` if unreachable.
    pub fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        let d = self.query_dist(s, t);
        (d != INF).then_some(d)
    }

    /// As [`DirectedBatchIndex::query`] with `INF` for unreachable.
    pub fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        directed_query_dist(
            &self.work.view,
            &self.work.fwd,
            &self.work.bwd,
            &mut self.bibfs,
            s,
            t,
        )
    }

    /// Eq. 3 for directed graphs: `min_{i,j} d(s→r_i) + δ_Hf(r_i, r_j)
    /// + d(r_j→t)` over the backward labels of `s` and forward labels
    /// of `t`.
    pub fn upper_bound(&self, s: Vertex, t: Vertex) -> Dist {
        directed_upper_bound(&self.work.fwd, &self.work.bwd, s, t)
    }

    /// Batched pair queries (order of results matches `pairs`); pairs
    /// sharing a source reuse one [`SourcePlan`] over `s`'s backward
    /// labels.
    pub fn query_many(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>> {
        crate::reader::query_many_on(&self.work, &mut self.bibfs, pairs)
    }

    /// One-source-to-many-targets directed distances `d(s → t)`;
    /// `None` marks unreachable or out-of-range endpoints.
    pub fn distances_from(&mut self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>> {
        self.work
            .snapshot_distances_from(&mut self.bibfs, s, targets)
            .into_iter()
            .map(|d| (d != INF).then_some(d))
            .collect()
    }

    /// The `k` vertices closest to `s` by forward distance `d(s → v)`
    /// (excluding `s`), nondecreasing by distance.
    pub fn top_k_closest(&mut self, s: Vertex, k: usize) -> Vec<(Vertex, Dist)> {
        self.work.snapshot_top_k(&mut self.bibfs, s, k)
    }

    /// Apply a batch of *directed* updates (Algorithm 1, run once per
    /// direction through the unified engine).
    pub fn apply_batch(&mut self, batch: &Batch) -> UpdateStats {
        let start = Instant::now();
        let norm = batch.normalize_directed(&self.work.graph);
        let mut stats = UpdateStats {
            passes: 1,
            ..Default::default()
        };
        if norm.is_empty() {
            stats.elapsed = start.elapsed();
            return stats;
        }
        let old = self.store.snapshot();

        stats.applied = self.work.graph.apply_batch(&norm);
        stats.insertions = norm.num_insertions();
        stats.deletions = norm.num_deletions();

        let n = self.work.graph.num_vertices();
        self.work.fwd.ensure_vertices(n);
        self.work.bwd.ensure_vertices(n);
        self.ws.grow(n);

        // Freeze the batch's arcs into the two-direction CSR view; the
        // forward and backward searches below traverse it. The policy is
        // re-applied every pass because publish/recycle may have swapped
        // in a buffer that predates a setter call.
        self.work.view.set_policy(self.config.compaction);
        let graph = &self.work.graph;
        self.work.view.absorb_arcs(graph, &arc_list(&norm));

        // Backward pass sees every arc reversed.
        let rev_updates: Vec<Update> = norm
            .updates()
            .iter()
            .map(|u| match *u {
                Update::Insert(a, b) => Update::Insert(b, a),
                Update::Delete(a, b) => Update::Delete(b, a),
            })
            .collect();

        let kernel = BfsKernel {
            improved: self.config.algorithm.improved_search(),
            directed: true,
        };
        let threads = self.config.threads;

        let mut grown_fwd = None;
        let oracle_fwd = engine::oracle_for(&old.fwd, n, &mut grown_fwd);
        let fwd_aff = engine::run_landmarks(
            &kernel,
            oracle_fwd,
            &self.work.view,
            norm.updates(),
            &mut self.work.fwd,
            threads,
            &mut self.ws,
        );
        let mut grown_bwd = None;
        let oracle_bwd = engine::oracle_for(&old.bwd, n, &mut grown_bwd);
        let bwd_aff = engine::run_landmarks(
            &kernel,
            oracle_bwd,
            &Reversed(&self.work.view),
            &rev_updates,
            &mut self.work.bwd,
            threads,
            &mut self.ws,
        );

        let r = self.work.fwd.num_landmarks();
        stats.affected_per_landmark = (0..r)
            .map(|i| fwd_aff[i].len() + bwd_aff[i].len())
            .collect();
        stats.affected_total = stats.affected_per_landmark.iter().sum();

        // Publish and recycle a retired generation's buffers.
        engine::publish_pass(
            &self.store,
            &mut self.recycler,
            &mut self.work,
            DirectedSnapshot::placeholder(),
            old,
            PassLog {
                norm,
                fwd_aff,
                bwd_aff,
            },
            |buf, fresh, log| {
                buf.graph.apply_batch(&log.norm);
                let graph = &buf.graph;
                buf.view.absorb_arcs(graph, &arc_list(&log.norm));
                engine::sync_affected(&fresh.fwd, &mut buf.fwd, &log.fwd_aff);
                engine::sync_affected(&fresh.bwd, &mut buf.bwd, &log.bwd_aff);
            },
        );

        stats.elapsed = start.elapsed();
        stats
    }

    /// Rebuild both labellings from scratch and publish the result.
    pub fn rebuild(&mut self) {
        let landmarks = self.work.fwd.landmarks().to_vec();
        let threads = self.config.threads.max(1);
        self.work.fwd = build_labelling_parallel(&self.work.view, landmarks.clone(), threads)
            .expect("existing landmarks are valid");
        self.work.bwd = build_labelling_parallel(&Reversed(&self.work.view), landmarks, threads)
            .expect("existing landmarks are valid");
        self.store.publish(self.work.clone());
        // Retained retired buffers predate the rebuild.
        self.recycler.clear();
    }

    /// Roll the writer back to the generation captured in `snap` and
    /// republish it (see `BatchIndex::restore_generation`; same
    /// contract, directed snapshot).
    pub(crate) fn restore_generation(&mut self, snap: &DirectedSnapshot) {
        self.work = snap.clone();
        self.work.view.set_policy(self.config.compaction);
        self.store.publish(self.work.clone());
        self.recycler.clear();
        let n = self.work.graph.num_vertices();
        self.ws = UpdateWorkspace::new(n);
        self.bibfs = BiBfs::new(n);
    }
}

/// The arcs of a normalized batch as `(tail, head)` pairs — what the
/// CSR view's absorption re-freezes.
fn arc_list(norm: &Batch) -> Vec<(Vertex, Vertex)> {
    norm.updates().iter().map(|u| u.endpoints()).collect()
}

/// The directed query path, shared by the owning index and its readers
/// (generic so readers traverse the published CSR view).
pub(crate) fn directed_query_dist<A: AdjacencyView>(
    graph: &A,
    fwd: &Labelling,
    bwd: &Labelling,
    bibfs: &mut BiBfs,
    s: Vertex,
    t: Vertex,
) -> Dist {
    let n = graph.num_vertices();
    if (s as usize) >= n || (t as usize) >= n {
        return INF;
    }
    if s == t {
        return 0;
    }
    // Landmark endpoints: exact via the highway cover property.
    if let Some(i) = fwd.landmark_index(s) {
        return fwd.landmark_to_vertex(i, t);
    }
    if let Some(j) = bwd.landmark_index(t) {
        return bwd.landmark_to_vertex(j, s);
    }
    let bound = directed_upper_bound(fwd, bwd, s, t);
    let found = bibfs.run(graph, s, t, bound, |v| !fwd.is_landmark(v));
    found.unwrap_or(bound)
}

/// The directed one-to-many path, shared by the owning index and its
/// readers: one [`SourcePlan`] over the backward labels of `s` prices
/// every target's Eq. 3 bound in `O(|R|)`, and once
/// [`sweep_min_targets`] targets need search refinement a single
/// bounded forward BFS sweep of `G[V\R]` from `s` replaces the
/// per-target bidirectional searches.
pub(crate) fn directed_distances_from<A: AdjacencyView>(
    graph: &A,
    fwd: &Labelling,
    bwd: &Labelling,
    bibfs: &mut BiBfs,
    s: Vertex,
    targets: &[Vertex],
) -> Vec<Dist> {
    let n = graph.num_vertices();
    let mut out = vec![INF; targets.len()];
    if (s as usize) >= n {
        return out;
    }
    // A landmark source is exact from the forward labelling (Eq. 2).
    if let Some(i) = fwd.landmark_index(s) {
        for (slot, &t) in out.iter_mut().zip(targets) {
            if (t as usize) < n {
                *slot = fwd.landmark_to_vertex(i, t);
            }
        }
        return out;
    }
    let plan = SourcePlan::new(bwd, fwd, s);
    let mut refine: Vec<usize> = Vec::new();
    for (k, &t) in targets.iter().enumerate() {
        if (t as usize) >= n {
            continue;
        }
        if t == s {
            out[k] = 0;
            continue;
        }
        if let Some(j) = bwd.landmark_index(t) {
            out[k] = bwd.landmark_to_vertex(j, s);
            continue;
        }
        out[k] = plan.bound_to(fwd, t);
        refine.push(k);
    }
    if refine.len() >= sweep_min_targets(n) {
        let horizon = refine.iter().map(|&k| out[k]).max().unwrap_or(0);
        bibfs.sweep(graph, s, horizon, usize::MAX, |v| !fwd.is_landmark(v));
        for &k in &refine {
            out[k] = out[k].min(bibfs.sweep_dist(targets[k]));
        }
    } else {
        for &k in &refine {
            let bound = out[k];
            let found = bibfs.run(graph, s, targets[k], bound, |v| !fwd.is_landmark(v));
            out[k] = found.unwrap_or(bound);
        }
    }
    out
}

/// Eq. 3 over a backward/forward labelling pair: the shared packed
/// implementation with `s` priced from the backward labels and the
/// highway + target labels from the forward labelling.
pub(crate) fn directed_upper_bound(fwd: &Labelling, bwd: &Labelling, s: Vertex, t: Vertex) -> Dist {
    batchhl_hcl::upper_bound_pair(bwd, fwd, fwd, s, t)
}

/// As [`directed_query_dist`] over patched labelling views — the
/// per-pair path of a directed what-if session. `graph` is the
/// session's private two-direction overlay.
pub(crate) fn directed_query_dist_patched<A: AdjacencyView>(
    graph: &A,
    fwd: &PatchedLabels<'_>,
    bwd: &PatchedLabels<'_>,
    bibfs: &mut BiBfs,
    s: Vertex,
    t: Vertex,
) -> Dist {
    let n = graph.num_vertices();
    if (s as usize) >= n || (t as usize) >= n {
        return INF;
    }
    if s == t {
        return 0;
    }
    if let Some(i) = fwd.landmark_index(s) {
        return fwd.landmark_to_vertex(i, t);
    }
    if let Some(j) = bwd.landmark_index(t) {
        return bwd.landmark_to_vertex(j, s);
    }
    let bound = upper_bound_pair_patched(bwd, fwd, fwd, s, t);
    let found = bibfs.run(graph, s, t, bound, |v| !fwd.is_landmark(v));
    found.unwrap_or(bound)
}

/// As [`directed_distances_from`] over patched labelling views, with
/// the same landmark-source, sweep-vs-search and range handling.
pub(crate) fn directed_distances_from_patched<A: AdjacencyView>(
    graph: &A,
    fwd: &PatchedLabels<'_>,
    bwd: &PatchedLabels<'_>,
    bibfs: &mut BiBfs,
    s: Vertex,
    targets: &[Vertex],
) -> Vec<Dist> {
    let n = graph.num_vertices();
    let mut out = vec![INF; targets.len()];
    if (s as usize) >= n {
        return out;
    }
    if let Some(i) = fwd.landmark_index(s) {
        for (slot, &t) in out.iter_mut().zip(targets) {
            if (t as usize) < n {
                *slot = fwd.landmark_to_vertex(i, t);
            }
        }
        return out;
    }
    let plan = SourcePlan::new_patched(bwd, fwd, s);
    let mut refine: Vec<usize> = Vec::new();
    for (k, &t) in targets.iter().enumerate() {
        if (t as usize) >= n {
            continue;
        }
        if t == s {
            out[k] = 0;
            continue;
        }
        if let Some(j) = bwd.landmark_index(t) {
            out[k] = bwd.landmark_to_vertex(j, s);
            continue;
        }
        out[k] = plan.bound_to_patched(fwd, t);
        refine.push(k);
    }
    if refine.len() >= sweep_min_targets(n) {
        let horizon = refine.iter().map(|&k| out[k]).max().unwrap_or(0);
        bibfs.sweep(graph, s, horizon, usize::MAX, |v| !fwd.is_landmark(v));
        for &k in &refine {
            out[k] = out[k].min(bibfs.sweep_dist(targets[k]));
        }
    } else {
        for &k in &refine {
            let bound = out[k];
            let found = bibfs.run(graph, s, targets[k], bound, |v| !fwd.is_landmark(v));
            out[k] = found.unwrap_or(bound);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_hcl::{oracle, LandmarkSelection};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn config(algorithm: Algorithm, k: usize) -> IndexConfig {
        IndexConfig {
            selection: LandmarkSelection::TopDegree(k),
            algorithm,
            threads: 1,
            ..IndexConfig::default()
        }
    }

    fn random_digraph(n: usize, m: usize, seed: u64) -> DynamicDiGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = DynamicDiGraph::new(n);
        while g.num_edges() < m {
            let a = rng.gen_range(0..n as Vertex);
            let b = rng.gen_range(0..n as Vertex);
            if a != b {
                g.insert_edge(a, b);
            }
        }
        g
    }

    fn random_batch(g: &DynamicDiGraph, size: usize, rng: &mut StdRng) -> Batch {
        let n = g.num_vertices() as Vertex;
        let mut b = Batch::new();
        for _ in 0..size {
            let x = rng.gen_range(0..n);
            let y = rng.gen_range(0..n);
            if x == y {
                continue;
            }
            if g.has_edge(x, y) {
                b.delete(x, y);
            } else {
                b.insert(x, y);
            }
        }
        b
    }

    fn assert_both_minimal(index: &DirectedBatchIndex) {
        oracle::check_minimal(index.graph(), index.forward_labelling())
            .unwrap_or_else(|e| panic!("forward: {e}"));
        oracle::check_minimal(&Reversed(index.graph()), index.backward_labelling())
            .unwrap_or_else(|e| panic!("backward: {e}"));
    }

    #[test]
    fn construction_is_minimal_both_ways() {
        let g = random_digraph(60, 180, 3);
        let index = DirectedBatchIndex::build(g, config(Algorithm::BhlPlus, 5));
        assert_both_minimal(&index);
    }

    #[test]
    fn queries_match_bfs_exhaustively() {
        let g = random_digraph(50, 160, 7);
        let truth = oracle::all_pairs_bfs(&g);
        let mut index = DirectedBatchIndex::build(g, config(Algorithm::BhlPlus, 5));
        for s in 0..50u32 {
            for t in 0..50u32 {
                assert_eq!(
                    index.query_dist(s, t),
                    truth[s as usize][t as usize],
                    "query({s},{t})"
                );
            }
        }
    }

    #[test]
    fn updates_track_rebuild() {
        for (alg, seed) in [
            (Algorithm::Bhl, 1u64),
            (Algorithm::BhlPlus, 2),
            (Algorithm::BhlPlus, 3),
            (Algorithm::Bhl, 4),
        ] {
            let g = random_digraph(60, 170, seed);
            let mut index = DirectedBatchIndex::build(g, config(alg, 5));
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF00);
            for round in 0..4 {
                let batch = random_batch(index.graph(), 12, &mut rng);
                index.apply_batch(&batch);
                oracle::check_minimal(index.graph(), index.forward_labelling())
                    .unwrap_or_else(|e| panic!("{alg:?}/{seed} fwd round {round}: {e}"));
                oracle::check_minimal(&Reversed(index.graph()), index.backward_labelling())
                    .unwrap_or_else(|e| panic!("{alg:?}/{seed} bwd round {round}: {e}"));
                let published = index.published();
                assert_eq!(&published.fwd, index.forward_labelling());
                assert_eq!(&published.bwd, index.backward_labelling());
                assert_eq!(&published.graph, index.graph());
            }
        }
    }

    #[test]
    fn queries_stay_exact_under_updates() {
        let g = random_digraph(40, 120, 11);
        let mut index = DirectedBatchIndex::build(g, config(Algorithm::BhlPlus, 4));
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..4 {
            let batch = random_batch(index.graph(), 10, &mut rng);
            index.apply_batch(&batch);
            let truth = oracle::all_pairs_bfs(index.graph());
            for s in 0..40u32 {
                for t in 0..40u32 {
                    assert_eq!(index.query_dist(s, t), truth[s as usize][t as usize]);
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = random_digraph(80, 240, 13);
        let mut rng = StdRng::seed_from_u64(77);
        let batch = random_batch(&g, 16, &mut rng);
        let mut seq = DirectedBatchIndex::build(g.clone(), config(Algorithm::BhlPlus, 6));
        seq.apply_batch(&batch);
        let mut cfg = config(Algorithm::BhlPlus, 6);
        cfg.threads = 4;
        let mut par = DirectedBatchIndex::build(g, cfg);
        par.apply_batch(&batch);
        assert_eq!(seq.work.fwd, par.work.fwd);
        assert_eq!(seq.work.bwd, par.work.bwd);
    }

    #[test]
    fn one_way_reachability() {
        // 0→1→2, landmark picks highest total degree (vertex 1).
        let g = DynamicDiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut index = DirectedBatchIndex::build(g, config(Algorithm::BhlPlus, 1));
        assert_eq!(index.query(0, 2), Some(2));
        assert_eq!(index.query(2, 0), None);
        // Add the return arc and re-check.
        let mut b = Batch::new();
        b.insert(2, 0);
        index.apply_batch(&b);
        assert_eq!(index.query(2, 0), Some(1));
        assert_both_minimal(&index);
    }

    #[test]
    fn directed_reader_follows_and_matches_owner() {
        let g = random_digraph(50, 150, 21);
        let mut index = DirectedBatchIndex::build(g, config(Algorithm::BhlPlus, 4));
        let mut reader = index.reader();
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..3 {
            let batch = random_batch(index.graph(), 8, &mut rng);
            index.apply_batch(&batch);
            for s in (0..50u32).step_by(7) {
                for t in (0..50u32).step_by(9) {
                    assert_eq!(reader.query_dist(s, t), index.query_dist(s, t));
                }
            }
        }
        assert_eq!(reader.version(), index.version());
    }
}
