//! # BatchHL — batch-dynamic highway cover labelling
//!
//! The primary contribution of *"BatchHL: Answering Distance Queries on
//! Batch-Dynamic Networks at Scale"* (SIGMOD 2022): maintain the unique
//! minimal highway cover labelling of a graph under **batches** of edge
//! insertions and deletions, in two phases per landmark (Algorithm 1):
//!
//! 1. **Batch search** finds a superset of the vertices whose label or
//!    landmark distance is affected by the batch — either the basic
//!    unified search (Algorithm 2, [`search`]) or the improved search
//!    with landmark-length pruning (Algorithm 3, [`search_improved`]);
//! 2. **Batch repair** (Algorithm 4, [`repair`]) recomputes the affected
//!    labels from the boundary of unaffected vertices inward, restoring
//!    correctness *and minimality* (Theorem 5.21).
//!
//! The public entry point is [`index::BatchIndex`] (undirected) and
//! [`directed::DirectedBatchIndex`] (Section 6), configured by
//! [`index::IndexConfig`] with an [`index::Algorithm`] variant:
//!
//! | Variant | Paper name | Meaning |
//! |---------|-----------|---------|
//! | [`Algorithm::Bhl`] | BHL | basic batch search + batch repair |
//! | [`Algorithm::BhlPlus`] | BHL⁺ | improved batch search + batch repair |
//! | [`Algorithm::BhlS`] | BHLₛ | deletions and insertions as separate sub-batches |
//! | [`Algorithm::Uhl`] | UHL | one update at a time, basic search |
//! | [`Algorithm::UhlPlus`] | UHL⁺ | one update at a time, improved search |
//!
//! Setting `threads > 1` in the config runs search + repair with
//! landmark-level parallelism (BHLₚ, Section 6): label rows of distinct
//! landmarks are disjoint, so threads share nothing but read-only state.
//!
//! # Architecture: generations, readers and the unified engine
//!
//! Serving distance queries *at scale* means queries must not contend
//! with `apply_batch`. The crate is built around two ideas:
//!
//! **Generations.** Every index owns a mutable *working snapshot*
//! (graph + labelling) and a [`batchhl_hcl::LabelStore`] of published,
//! immutable generations. `apply_batch` plays Algorithm 1 against that
//! split: the published generation is the read-only old labelling `Γ`,
//! the working snapshot is repaired in place into `Γ′`, and a single
//! atomic swap publishes it. The retired generation's buffers are
//! recycled when no reader holds them (`Arc::try_unwrap`), with only
//! the affected entries re-synced — `O(affected + batch)` per pass, the
//! same asymptotics the paper's in-place variant has.
//!
//! **Readers.** [`BatchIndex::reader`] (and the directed/weighted
//! counterparts) returns a `Send + Sync` [`reader::Reader`]: a handle
//! that pins a generation and answers queries lock-free against it,
//! re-pinning with one atomic version check when the writer publishes.
//! A reader never sees a half-applied batch; pinned readers can serve a
//! consistent stale view for as long as they need it.
//!
//! **One engine.** The per-landmark search→repair orchestration —
//! sequential or landmark-parallel — is implemented once in
//! [`engine`], generic over an [`engine::UpdateKernel`] describing the
//! search space: BFS over an adjacency view (undirected, and both
//! directions of the directed index through the generic `Reversed`
//! adapter) or Dijkstra over a weighted adjacency view. The undirected,
//! directed and weighted indexes are thin compositions of the store,
//! the engine and their query path; the weighted index inherits
//! landmark-parallel updates from the shared engine.
//!
//! **CSR snapshot views.** Every generation carries, next to the
//! dynamic writer graph, a frozen CSR view of it
//! ([`batchhl_graph::csr`]): flat `offsets`/`neighbors` arrays plus the
//! per-batch delta overlay of the vertices recent batches touched.
//! All traversal hot paths — reader queries, the owner query path, the
//! update kernels' landmark searches and repair relaxations, and full
//! construction — run over that view, turning the per-vertex pointer
//! chase of `Vec<Vec<_>>` adjacency into sequential array scans.
//! `apply_batch` freezes only the batch's endpoints into the overlay
//! (`O(Σ deg(endpoint))`) and compacts into a fresh base CSR when the
//! overlay crosses the configured [`index::CompactionPolicy`] (the
//! `compaction` field of [`index::IndexConfig`], shared by every index
//! family); consecutive generations share the base behind an `Arc`.
//! [`index::BatchIndex::new_reordered`] additionally renumbers vertices
//! by decreasing degree at construction so hub neighbourhoods pack into
//! the front of the CSR arrays.
//!
//! ```
//! use batchhl_core::index::{Algorithm, BatchIndex, IndexConfig};
//! use batchhl_graph::{generators, Batch};
//!
//! let g = generators::barabasi_albert(500, 3, 42);
//! let mut index = BatchIndex::build(g, IndexConfig::default());
//! let d0 = index.query(3, 77);
//!
//! let mut batch = Batch::new();
//! batch.insert(3, 77); // arbitrary mix of insertions/deletions
//! let stats = index.apply_batch(&batch);
//! assert!(stats.applied >= 1);
//! assert_eq!(index.query(3, 77), Some(1));
//! # let _ = d0;
//! ```

pub mod admission;
pub mod backend;
pub mod directed;
pub mod engine;
pub mod index;
pub mod paths;
pub mod persist;
pub mod reader;
pub mod repair;
pub mod search;
pub mod search_improved;
pub mod snapshot;
pub mod stats;
pub mod wal;
pub mod weighted;
pub mod whatif;
pub mod workspace;

pub use admission::validate_batch;
pub use backend::{
    build_backend, load_backend, Backend, BackendFamily, BackendReader, Edit, GraphSource,
    OracleError,
};
pub use directed::{DirectedBatchIndex, DirectedSnapshot};
pub use index::{Algorithm, BatchIndex, CompactionPolicy, IndexConfig, IndexSnapshot};
pub use persist::{CheckpointMeta, PersistError};
pub use reader::{DirectedReader, Reader, SharedReader, SnapshotQuery, WeightedReader};
pub use stats::UpdateStats;
pub use wal::{recover_wal, TxnId, WalRecord, WalRecovery, WalWriter};
pub use weighted::{WeightedBatchIndex, WeightedSnapshot};
pub use whatif::{DirectedWhatIf, SnapshotWhatIf, WeightedWhatIf, WhatIf, WhatIfQuery};
