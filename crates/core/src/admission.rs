//! Batch admission: semantic validation of an edit list *before* it is
//! made durable.
//!
//! The write-ahead log appends a batch before the index applies it, so
//! anything the WAL accepts will be replayed on every future restart. A
//! batch the repair engine would choke on must therefore be refused up
//! front — once logged it would poison replay forever. [`validate_batch`]
//! is that gate: `UpdateSession::commit` runs it before the WAL append,
//! and a refused batch leaves the oracle (answers, generation counter,
//! WAL bytes) completely untouched.
//!
//! # What is refused
//!
//! * **Self-loops** — `a == b` on any edit kind. Distance semantics
//!   never use them and the normalizers drop them silently, which would
//!   let `applied` counts drift from what was logged.
//! * **Vertex-id overflow** — an endpoint equal to `u32::MAX`: the
//!   vertex count `n = id + 1` would overflow the `u32` id domain.
//! * **Dangling references** — [`Edit::Remove`] / [`Edit::SetWeight`]
//!   naming a vertex that neither exists nor is introduced by an
//!   earlier insert in the same batch. There is nothing they could
//!   refer to; silently ignoring them hides caller bugs.
//! * **Bad weights** (weighted family) — zero weights (the index
//!   requires positive weights) and clamp-unsafe weights
//!   `≥ CLAMP_SAFE_MAX`, which leave the SIMD kernels' clamped domain
//!   (see [`batchhl_hcl::kernel`]).
//! * **Conflicting duplicates** — two edits addressing the same edge
//!   (same unordered pair on undirected/weighted backends, same arc on
//!   directed ones) that are not byte-identical: `Insert(a,b)` +
//!   `Remove(a,b)` in one batch has no defined order. Exact duplicates
//!   are admitted — the normalizers collapse them deterministically.
//!
//! Family capability checks (weight-carrying edits on unweighted
//! backends) are layered in via [`edits_supported`], so one call
//! subsumes both gates.

use crate::backend::{edits_supported, BackendFamily, Edit, OracleError};
use batchhl_common::Vertex;
use batchhl_graph::weighted::Weight;
use batchhl_hcl::kernel::CLAMP_SAFE_MAX;
use std::collections::HashMap;

/// Validate `edits` as one batch against a backend of `family` with
/// `num_vertices` vertices, without applying anything.
///
/// Returns the first offense as [`OracleError::InvalidBatch`] carrying
/// the index of the offending edit. See the module docs for the rules.
pub fn validate_batch(
    family: BackendFamily,
    num_vertices: usize,
    edits: &[Edit],
) -> Result<(), OracleError> {
    edits_supported(family, edits)?;
    let reject = |index: usize, reason: String| Err(OracleError::InvalidBatch { index, reason });
    // Vertices known so far: the current graph plus everything an
    // earlier insert of this batch introduces.
    let mut known = num_vertices as u64;
    let mut seen: HashMap<(Vertex, Vertex), (usize, Edit)> = HashMap::with_capacity(edits.len());
    for (i, &e) in edits.iter().enumerate() {
        let (a, b) = endpoints(e);
        if a == b {
            return reject(i, format!("self-loop on vertex {a}"));
        }
        if a == Vertex::MAX || b == Vertex::MAX {
            return reject(i, format!("vertex id {} overflows the id domain", a.max(b)));
        }
        match e {
            Edit::Insert(..) | Edit::InsertWeighted(..) => {
                known = known.max(a.max(b) as u64 + 1);
            }
            Edit::Remove(..) | Edit::SetWeight(..) => {
                let hi = a.max(b);
                if hi as u64 >= known {
                    return reject(
                        i,
                        format!("references vertex {hi} outside the graph ({known} vertices)"),
                    );
                }
            }
        }
        if family == BackendFamily::Weighted {
            if let Some(w) = weight_of(e) {
                if w == 0 {
                    return reject(i, "zero edge weight (weights must be positive)".into());
                }
                if w >= CLAMP_SAFE_MAX {
                    return reject(
                        i,
                        format!("weight {w} is outside the clamp-safe domain (< {CLAMP_SAFE_MAX})"),
                    );
                }
            }
        }
        // Duplicate detection on the canonical edge key. Orientation is
        // irrelevant on undirected families, identity on directed ones.
        let key = if family == BackendFamily::Directed {
            (a, b)
        } else {
            (a.min(b), a.max(b))
        };
        let canon = canonicalize(e, family);
        match seen.get(&key) {
            Some(&(first, prior)) if prior != canon => {
                return reject(
                    i,
                    format!(
                        "conflicts with edit {first} on the same {}",
                        if family == BackendFamily::Directed {
                            "arc"
                        } else {
                            "edge"
                        }
                    ),
                );
            }
            Some(_) => {} // exact duplicate: normalizes away downstream
            None => {
                seen.insert(key, (i, canon));
            }
        }
    }
    Ok(())
}

fn endpoints(e: Edit) -> (Vertex, Vertex) {
    match e {
        Edit::Insert(a, b)
        | Edit::InsertWeighted(a, b, _)
        | Edit::Remove(a, b)
        | Edit::SetWeight(a, b, _) => (a, b),
    }
}

fn weight_of(e: Edit) -> Option<Weight> {
    match e {
        Edit::InsertWeighted(_, _, w) | Edit::SetWeight(_, _, w) => Some(w),
        // A bare insert is weight 1 on the weighted family: always safe.
        Edit::Insert(..) | Edit::Remove(..) => None,
    }
}

/// Normalize an edit so that byte-identical *meaning* compares equal:
/// endpoints sorted on undirected families, and `Insert` unified with
/// the `InsertWeighted` form it is shorthand for.
fn canonicalize(e: Edit, family: BackendFamily) -> Edit {
    let sort = |a: Vertex, b: Vertex| {
        if family == BackendFamily::Directed {
            (a, b)
        } else {
            (a.min(b), a.max(b))
        }
    };
    match e {
        Edit::Insert(a, b) => {
            let (a, b) = sort(a, b);
            Edit::InsertWeighted(a, b, 1)
        }
        Edit::InsertWeighted(a, b, w) => {
            let (a, b) = sort(a, b);
            Edit::InsertWeighted(a, b, w)
        }
        Edit::Remove(a, b) => {
            let (a, b) = sort(a, b);
            Edit::Remove(a, b)
        }
        Edit::SetWeight(a, b, w) => {
            let (a, b) = sort(a, b);
            Edit::SetWeight(a, b, w)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const U: BackendFamily = BackendFamily::Undirected;
    const D: BackendFamily = BackendFamily::Directed;
    const W: BackendFamily = BackendFamily::Weighted;

    fn idx(r: Result<(), OracleError>) -> usize {
        match r {
            Err(OracleError::InvalidBatch { index, .. }) => index,
            other => panic!("expected InvalidBatch, got {other:?}"),
        }
    }

    #[test]
    fn clean_batches_pass_on_every_family() {
        let edits = [Edit::Insert(0, 5), Edit::Remove(1, 2), Edit::Insert(5, 6)];
        for fam in [U, D, W] {
            validate_batch(fam, 6, &edits).unwrap();
        }
        validate_batch(
            W,
            6,
            &[Edit::InsertWeighted(0, 5, 9), Edit::SetWeight(1, 2, 3)],
        )
        .unwrap();
    }

    #[test]
    fn self_loops_are_rejected() {
        for fam in [U, D, W] {
            let r = validate_batch(fam, 4, &[Edit::Insert(0, 1), Edit::Insert(2, 2)]);
            assert_eq!(idx(r), 1, "{fam}");
        }
    }

    #[test]
    fn id_overflow_is_rejected() {
        let r = validate_batch(U, 4, &[Edit::Insert(0, Vertex::MAX)]);
        assert_eq!(idx(r), 0);
    }

    #[test]
    fn dangling_remove_and_set_weight_are_rejected() {
        assert_eq!(idx(validate_batch(U, 4, &[Edit::Remove(0, 9)])), 0);
        assert_eq!(idx(validate_batch(W, 4, &[Edit::SetWeight(0, 9, 2)])), 0);
        // …but a reference introduced by an earlier insert is fine.
        validate_batch(U, 4, &[Edit::Insert(3, 9), Edit::Remove(3, 9)]).unwrap_err(); // conflict!
        validate_batch(U, 4, &[Edit::Insert(3, 9), Edit::Remove(9, 2)]).unwrap();
    }

    #[test]
    fn weighted_rejects_zero_and_clamp_unsafe_weights() {
        assert_eq!(
            idx(validate_batch(W, 4, &[Edit::InsertWeighted(0, 1, 0)])),
            0
        );
        assert_eq!(
            idx(validate_batch(
                W,
                4,
                &[Edit::SetWeight(0, 1, CLAMP_SAFE_MAX)]
            )),
            0
        );
        validate_batch(W, 4, &[Edit::InsertWeighted(0, 1, CLAMP_SAFE_MAX - 1)]).unwrap();
        // Unweighted families never reach the weight rule.
        validate_batch(U, 4, &[Edit::InsertWeighted(0, 1, 1)]).unwrap();
    }

    #[test]
    fn conflicting_duplicates_are_rejected_exact_duplicates_pass() {
        // Same unordered edge, different meaning.
        let r = validate_batch(U, 4, &[Edit::Insert(0, 1), Edit::Remove(1, 0)]);
        assert_eq!(idx(r), 1);
        // Exact duplicate (orientation-insensitive on undirected).
        validate_batch(U, 4, &[Edit::Insert(0, 1), Edit::Insert(1, 0)]).unwrap();
        // `Insert` and `InsertWeighted(.., 1)` mean the same thing.
        validate_batch(W, 4, &[Edit::Insert(0, 1), Edit::InsertWeighted(1, 0, 1)]).unwrap();
        // Same weighted edge, two different weights: ambiguous.
        let r = validate_batch(
            W,
            4,
            &[Edit::InsertWeighted(0, 1, 2), Edit::InsertWeighted(0, 1, 3)],
        );
        assert_eq!(idx(r), 1);
        // On the directed family opposite arcs are distinct edges.
        validate_batch(D, 4, &[Edit::Insert(0, 1), Edit::Remove(1, 0)]).unwrap();
        let r = validate_batch(D, 4, &[Edit::Insert(0, 1), Edit::Remove(0, 1)]);
        assert_eq!(idx(r), 1);
    }

    #[test]
    fn weight_capability_still_layered_in() {
        assert!(matches!(
            validate_batch(U, 4, &[Edit::SetWeight(0, 1, 2)]),
            Err(OracleError::WeightedEditsUnsupported { .. })
        ));
    }
}
