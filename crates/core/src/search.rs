//! Batch search (Algorithm 2): find the CP-affected vertices.
//!
//! The "shared pattern" of Section 5.1 unifies insertions and deletions:
//! a vertex `v` is affected w.r.t. landmark `r` iff some shortest path
//! between them in `G ∪ G′` crosses an updated edge, and every such path
//! can be traced on `G′` starting from the update's *anchor* (the
//! endpoint farther from `r`) with starting distance
//! `d_G(r, pre-anchor) + 1`. The search therefore runs a single
//! Dijkstra-like pass over the anchors of the whole batch, pruning any
//! vertex `w` whose old distance beats the traced path
//! (`d + 1 ≤ d_G(r, w)` keeps, else prunes), and never expanding a
//! vertex twice even when multiple updates affect it — the batch-level
//! saving that Figure 2 quantifies.
//!
//! The result is the set of *composite-path-affected* vertices
//! (Definition 5.7, Lemma 5.8): a superset of the truly affected ones,
//! at most the old-distance-consistent reach of the anchors.

use crate::workspace::{dl_old, UpdateWorkspace};
use batchhl_common::dist_add1;
use batchhl_graph::{AdjacencyView, Update};
use batchhl_hcl::Labelling;

/// Run Algorithm 2 for landmark `i` over the *old* labelling `lab`
/// (the `d_G(r, ·)` oracle) and the *new* graph `g` (`G′`).
///
/// `directed` restricts anchors to arc heads (Section 6); undirected
/// graphs treat whichever endpoint is farther as the anchor.
///
/// On return `ws.aff` holds `V_aff⁺`; the caller passes it straight to
/// batch repair. `ws.dl_cache` retains the old-distance memo that
/// repair's boundary initialization reuses.
pub fn batch_search<A: AdjacencyView>(
    lab: &Labelling,
    g: &A,
    batch: &[Update],
    i: usize,
    directed: bool,
    ws: &mut UpdateWorkspace,
) {
    ws.aff.clear();
    ws.queue.clear();

    // Seed the queue with anchors (lines 2–6). Updates with equidistant
    // endpoints are trivial w.r.t. r (Lemma 5.2) and skipped.
    for u in batch {
        let (a, b) = u.endpoints();
        let da = dl_old(lab, i, a, &mut ws.dl_cache).dist();
        let db = dl_old(lab, i, b, &mut ws.dl_cache).dist();
        if da < db {
            ws.queue.push(dist_add1(da), b);
        } else if db < da && !directed {
            ws.queue.push(dist_add1(db), a);
        }
    }

    // Unified traversal (lines 7–13).
    while let Some((d, v)) = ws.queue.pop() {
        if !ws.aff.insert(v) {
            continue;
        }
        let dnext = dist_add1(d);
        for &w in g.out_neighbors(v) {
            let dw_old = dl_old(lab, i, w, &mut ws.dl_cache).dist();
            if dnext <= dw_old {
                ws.queue.push(dnext, w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_common::Vertex;
    use batchhl_graph::{Batch, DynamicGraph};
    use batchhl_hcl::build_labelling;

    /// Apply a batch and return (old labelling, new graph, normalized
    /// updates).
    fn setup(
        g0: &DynamicGraph,
        landmarks: Vec<Vertex>,
        batch: Batch,
    ) -> (Labelling, DynamicGraph, Batch) {
        let lab = build_labelling(g0, landmarks).unwrap();
        let norm = batch.normalize(g0);
        let mut g1 = g0.clone();
        g1.apply_batch(&norm);
        (lab, g1, norm)
    }

    fn affected(lab: &Labelling, g1: &DynamicGraph, batch: &Batch, i: usize) -> Vec<Vertex> {
        let mut ws = UpdateWorkspace::new(g1.num_vertices());
        batch_search(lab, g1, batch.updates(), i, false, &mut ws);
        let mut v: Vec<Vertex> = ws.aff.iter().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn figure3_worked_example() {
        // Figure 3(a): r-a, a-b?, ... reconstructed from the table:
        // d_G(r,·) = a:1 b:3 c:2 d:3 e:4 f:5 g:6, with updates
        // +(a,b), +(d,e), -(a,c), -(b,e). Affected = {b,c,d,e,f,g}.
        // Edges of G: r-a, a-c, c-d, b-e(deleted), e-f, f-g, and b at
        // distance 3 via a-c? b's old distance is 3: path r-a-c-b? Use
        // edge c-b. Deleted (a,c) reroutes c via ... consistent graph:
        let mut g0 = DynamicGraph::new(8);
        let (r, a, b, c, d, e, f, gg) = (0u32, 1u32, 2u32, 3u32, 4u32, 5u32, 6u32, 7u32);
        for &(x, y) in &[(r, a), (a, c), (c, b), (c, d), (b, e), (e, f), (f, gg)] {
            g0.insert_edge(x, y);
        }
        // Old distances: a=1, c=2, b=3, d=3, e=4, f=5, g=6 — matches the
        // paper's table.
        let mut batch = Batch::new();
        batch.insert(a, b);
        batch.insert(d, e);
        batch.delete(a, c);
        batch.delete(b, e);
        let (lab, g1, norm) = setup(&g0, vec![r], batch);
        let aff = affected(&lab, &g1, &norm, 0);
        // Example 5.4: the affected set is {b, c, d, e, f, g}.
        assert_eq!(aff, vec![b, c, d, e, f, gg]);
    }

    #[test]
    fn trivial_update_affects_nothing() {
        // Cycle 0-1-2-3: inserting the chord (1, 3) with d(r,1) = d(r,3)
        // = 1 w.r.t. r = 0 is trivial (Lemma 5.2).
        let g0 = batchhl_graph::generators::cycle(4);
        let mut batch = Batch::new();
        batch.insert(1, 3);
        let (lab, g1, norm) = setup(&g0, vec![0], batch);
        assert!(affected(&lab, &g1, &norm, 0).is_empty());
    }

    #[test]
    fn insertion_affects_downstream_and_equal_length_rewires() {
        // Path 0-1-2-3-4, landmark 0; insert (0, 3): 3 and 4 get
        // closer, and 2 gains a *new* shortest path 0-3-2 of the same
        // length — affected per Definition 5.1. Vertex 1 is untouched.
        let g0 = batchhl_graph::generators::path(5);
        let mut batch = Batch::new();
        batch.insert(0, 3);
        let (lab, g1, norm) = setup(&g0, vec![0], batch);
        assert_eq!(affected(&lab, &g1, &norm, 0), vec![2, 3, 4]);
    }

    #[test]
    fn deletion_affects_cut_off_suffix() {
        // Path 0-1-2-3-4, landmark 0; delete (1, 2): 2, 3, 4 lose their
        // paths.
        let g0 = batchhl_graph::generators::path(5);
        let mut batch = Batch::new();
        batch.delete(1, 2);
        let (lab, g1, norm) = setup(&g0, vec![0], batch);
        assert_eq!(affected(&lab, &g1, &norm, 0), vec![2, 3, 4]);
    }

    #[test]
    fn batch_visits_shared_suffix_once_but_counts_it() {
        // Example 5.3 shape: two updates whose affected regions overlap;
        // the search returns the union without duplicates.
        let g0 = batchhl_graph::generators::path(7);
        let mut batch = Batch::new();
        batch.insert(0, 2); // shortens 2..6
        batch.insert(0, 3); // shortens 3..6 further
        let (lab, g1, norm) = setup(&g0, vec![0], batch);
        let aff = affected(&lab, &g1, &norm, 0);
        assert_eq!(aff, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn directed_mode_only_anchors_heads() {
        use batchhl_graph::DynamicDiGraph;
        // Arc path 0→1→2 plus arc 2→3; landmark 0. Insert arc (2, 0):
        // with undirected semantics vertex 0's side would anchor; in
        // directed mode d(0→2)=2 > d(0→0)=0 means anchor is 2? No:
        // endpoints (a=2, b=0): d(r→a)=2, d(r→b)=0 — not d(a) < d(b),
        // so nothing is pushed: the new arc 2→0 cannot shorten paths
        // *from* 0.
        let g0 = DynamicDiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let lab = build_labelling(&g0, vec![0]).unwrap();
        let mut g1 = g0.clone();
        g1.insert_edge(2, 0);
        let mut ws = UpdateWorkspace::new(4);
        batch_search(&lab, &g1, &[Update::Insert(2, 0)], 0, true, &mut ws);
        assert_eq!(ws.aff.iter().count(), 0);
        // But inserting 0→3 does affect 3 (2 → 1).
        let mut g2 = g0.clone();
        g2.insert_edge(0, 3);
        batch_search(&lab, &g2, &[Update::Insert(0, 3)], 0, true, &mut ws);
        let aff: Vec<Vertex> = ws.aff.iter().collect();
        assert_eq!(aff, vec![3]);
    }

    #[test]
    fn unreachable_vertices_become_affected_on_connection() {
        let g0 = DynamicGraph::from_edges(5, &[(0, 1), (2, 3), (3, 4)]);
        let mut batch = Batch::new();
        batch.insert(1, 2);
        let (lab, g1, norm) = setup(&g0, vec![0], batch);
        // The whole far component gains finite distances.
        assert_eq!(affected(&lab, &g1, &norm, 0), vec![2, 3, 4]);
    }
}
