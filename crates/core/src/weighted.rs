//! Weighted BatchHL (the Section 6 extension).
//!
//! "For weighted graphs, we can use pruned Dijkstra's algorithm in place
//! of pruned BFSs. We consider updates in the form of edge weight
//! increase or decrease instead of edge insertion or deletion. Our
//! methods can then handle weight increases in a similar way to edge
//! deletions, and weight decreases in a similar way to edge insertions."
//!
//! The machinery carries over with three changes:
//!
//! * construction runs a *flagged Dijkstra* per landmark (same landmark
//!   flags, heap-ordered settle),
//! * batch search seeds each update's anchors with
//!   `d_G(r, near) + min(w_old, w_new)` — the lighter of the two
//!   weights covers both the paths an increase destroys and the paths a
//!   decrease creates (insertion/deletion are the `w = ∞` edge cases) —
//!   and expands with the basic (Algorithm 2 style) pruning
//!   `d + w(v, u) ≤ d_G(r, u)`,
//! * batch repair pops by the full packed `(distance, landmark-flag)`
//!   key from a binary heap instead of a Dial queue (weights > 1 void
//!   the unit-bucket argument; the Dijkstra exchange argument of
//!   Lemma 5.20 still applies verbatim).
//!
//! Both phases plug into the unified update engine as the
//! `DijkstraKernel`: the per-landmark orchestration (sequential or
//! landmark-parallel) and the generation publish/recycle cycle are the
//! exact same code the unweighted indexes run. That unification also
//! gives the weighted index landmark-parallel updates
//! ([`WeightedBatchIndex::with_threads`]) and concurrent readers
//! ([`WeightedBatchIndex::reader`]) for free.
//!
//! The paper reports no weighted experiments, so the harness claims
//! none either; correctness is pinned the same way as the unweighted
//! index — the maintained labelling must equal the (unique) minimal
//! labelling rebuilt from scratch.

use crate::engine::{self, UpdateKernel};
use crate::index::CompactionPolicy;
use crate::reader::{SharedReader, SnapshotQuery, WeightedReader};
use crate::stats::UpdateStats;
use crate::workspace::dl_old;
use batchhl_common::{Dist, EpochCache, FxHashMap, LandmarkLength, SparseBitSet, Vertex, INF};
use batchhl_graph::weighted::{
    BiDijkstra, Weight, WeightedAdjacencyView, WeightedGraph, WeightedUpdate,
};
use batchhl_graph::WeightedCsrDelta;
use batchhl_hcl::{
    sweep_min_targets, LabelError, LabelStore, Labelling, PatchedLabels, SourcePlan, Versioned,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// A normalized weighted update: the edge plus its old/new weight
/// (`None` = absent on that side).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Effect {
    pub(crate) a: Vertex,
    pub(crate) b: Vertex,
    pub(crate) w_old: Option<Weight>,
    pub(crate) w_new: Option<Weight>,
}

/// One immutable generation of the weighted index. `graph` is the
/// writer's mutation substrate; `view` is the frozen weighted CSR
/// (+ overlay) that queries and the Dijkstra kernel traverse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedSnapshot {
    pub graph: WeightedGraph,
    pub lab: Labelling,
    pub view: WeightedCsrDelta,
}

impl WeightedSnapshot {
    fn placeholder() -> Self {
        let graph = WeightedGraph::new(0);
        WeightedSnapshot {
            view: WeightedCsrDelta::from_weighted(&graph),
            graph,
            lab: Labelling::empty(0, Vec::new()).expect("empty labelling is valid"),
        }
    }
}

/// What one pass changed — enough to replay it onto a recycled buffer.
#[derive(Debug)]
struct PassLog {
    effects: Vec<Effect>,
    affected: engine::AffectedLists,
}

/// Scratch state for one weighted search→repair pass.
#[derive(Debug, Default)]
pub(crate) struct DijkstraWorkspace {
    aff: SparseBitSet,
    dl_cache: EpochCache,
    bounds: EpochCache,
    heap: BinaryHeap<Reverse<(u64, Vertex)>>,
}

impl DijkstraWorkspace {
    fn new(n: usize) -> Self {
        DijkstraWorkspace {
            aff: SparseBitSet::new(n),
            dl_cache: EpochCache::new(n),
            bounds: EpochCache::new(n),
            heap: BinaryHeap::new(),
        }
    }

    fn grow(&mut self, n: usize) {
        self.aff.grow(n);
        self.dl_cache.grow(n);
        self.bounds.grow(n);
    }

    fn reset(&mut self) {
        self.aff.clear();
        self.dl_cache.clear();
        self.bounds.clear();
        self.heap.clear();
    }
}

/// The weighted search space for the unified engine: pruned Dijkstra
/// search plus heap-ordered repair.
pub(crate) struct DijkstraKernel;

impl<W: WeightedAdjacencyView + Sync> UpdateKernel<W> for DijkstraKernel {
    type Update = Effect;
    type Workspace = DijkstraWorkspace;

    fn workspace(&self, n: usize) -> DijkstraWorkspace {
        DijkstraWorkspace::new(n)
    }

    fn process_landmark(
        &self,
        old: &Labelling,
        g: &W,
        updates: &[Effect],
        i: usize,
        label_row: &mut [Dist],
        highway_row: &mut [Dist],
        ws: &mut DijkstraWorkspace,
    ) -> Vec<Vertex> {
        ws.reset();
        weighted_search(old, g, updates, i, ws);
        weighted_repair(old, g, i, label_row, highway_row, ws);
        ws.aff.inserted().to_vec()
    }
}

/// Weighted batch search for landmark `i` (Algorithm 2 analogue).
fn weighted_search<W: WeightedAdjacencyView>(
    old: &Labelling,
    g: &W,
    effects: &[Effect],
    i: usize,
    ws: &mut DijkstraWorkspace,
) {
    // All seed/expansion sums are taken in u64: distances saturate at
    // the `INF` sentinel, and a path of length ≥ INF is unrepresentable
    // (= unreachable), so such candidates are dropped rather than let a
    // u32 sum wrap around.
    for e in effects {
        let min_w = e
            .w_old
            .unwrap_or(Weight::MAX)
            .min(e.w_new.unwrap_or(Weight::MAX)) as u64;
        let da = dl_old(old, i, e.a, &mut ws.dl_cache).dist() as u64;
        let db = dl_old(old, i, e.b, &mut ws.dl_cache).dist() as u64;
        let inf = INF as u64;
        if da + min_w < inf && da + min_w <= db {
            ws.heap.push(Reverse((da + min_w, e.b)));
        }
        if db + min_w < inf && db + min_w <= da {
            ws.heap.push(Reverse((db + min_w, e.a)));
        }
    }
    while let Some(Reverse((d, v))) = ws.heap.pop() {
        if !ws.aff.insert(v) {
            continue;
        }
        for &(w, wt) in g.weighted_neighbors(v) {
            let nd = d + wt as u64;
            if nd < INF as u64 && nd <= dl_old(old, i, w, &mut ws.dl_cache).dist() as u64 {
                ws.heap.push(Reverse((nd, w)));
            }
        }
    }
}

/// Weighted batch repair for landmark `i` (Algorithm 4 analogue,
/// heap-ordered by the packed landmark-length key).
fn weighted_repair<W: WeightedAdjacencyView>(
    old: &Labelling,
    g: &W,
    i: usize,
    label_row: &mut [Dist],
    highway_row: &mut [Dist],
    ws: &mut DijkstraWorkspace,
) {
    ws.heap.clear();
    ws.bounds.clear();
    for idx in 0..ws.aff.inserted().len() {
        let v = ws.aff.inserted()[idx];
        let v_is_lm = old.is_landmark(v);
        let mut best = LandmarkLength::INFINITE;
        for &(w, wt) in g.weighted_neighbors(v) {
            if ws.aff.contains(w) {
                continue;
            }
            let cand = dl_old(old, i, w, &mut ws.dl_cache).extend_by(wt, v_is_lm);
            if cand < best {
                best = cand;
            }
        }
        ws.bounds.set(v as usize, best.key());
        if !best.is_infinite() {
            ws.heap.push(Reverse((best.key(), v)));
        }
    }
    while let Some(Reverse((key, v))) = ws.heap.pop() {
        if !ws.aff.contains(v) {
            continue;
        }
        let bound = LandmarkLength::from_key(ws.bounds.get(v as usize).expect("queued ⇒ bounded"));
        if bound.key() != key {
            continue; // stale
        }
        ws.aff.remove(v);
        crate::repair::finalize(old, i, v, bound, label_row, highway_row);
        for &(w, wt) in g.weighted_neighbors(v) {
            if !ws.aff.contains(w) {
                continue;
            }
            let cand = bound.extend_by(wt, old.is_landmark(w));
            let cur = ws
                .bounds
                .get(w as usize)
                .map(LandmarkLength::from_key)
                .unwrap_or(LandmarkLength::INFINITE);
            if cand < cur {
                ws.bounds.set(w as usize, cand.key());
                if !cand.is_infinite() {
                    ws.heap.push(Reverse((cand.key(), w)));
                }
            }
        }
    }
    for idx in 0..ws.aff.inserted().len() {
        let v = ws.aff.inserted()[idx];
        if ws.aff.contains(v) {
            ws.aff.remove(v);
            crate::repair::finalize(old, i, v, LandmarkLength::INFINITE, label_row, highway_row);
        }
    }
}

/// Batch-dynamic distance index over a positively weighted graph.
pub struct WeightedBatchIndex {
    work: WeightedSnapshot,
    store: LabelStore<WeightedSnapshot>,
    recycler: engine::Recycler<WeightedSnapshot, PassLog>,
    threads: usize,
    compaction: CompactionPolicy,
    ws: DijkstraWorkspace,
    engine: BiDijkstra,
}

impl Clone for WeightedBatchIndex {
    fn clone(&self) -> Self {
        let n = self.work.graph.num_vertices();
        WeightedBatchIndex {
            work: self.work.clone(),
            store: LabelStore::new(self.work.clone()),
            recycler: engine::Recycler::new(),
            threads: self.threads,
            compaction: self.compaction,
            ws: DijkstraWorkspace::new(n),
            engine: BiDijkstra::new(n),
        }
    }
}

impl WeightedBatchIndex {
    /// Build with `k` top-degree landmarks.
    pub fn build(graph: WeightedGraph, k: usize) -> Self {
        let mut order = graph.vertices_by_degree();
        order.truncate(k.min(graph.num_vertices()));
        Self::build_with_landmarks(graph, order).expect("top-degree landmarks are valid")
    }

    /// Build over an explicit landmark set; fails on invalid landmarks
    /// (out of range or duplicated).
    pub fn build_with_landmarks(
        graph: WeightedGraph,
        landmarks: Vec<Vertex>,
    ) -> Result<Self, LabelError> {
        let n = graph.num_vertices();
        let mut lab = Labelling::empty(n, landmarks.clone())?;
        // Construction Dijkstras run over the frozen CSR snapshot.
        let view = WeightedCsrDelta::from_weighted(&graph);
        for i in 0..landmarks.len() {
            flagged_dijkstra(&view, &lab, i)
                .into_iter()
                .for_each(|(v, ll)| write_entry(&mut lab, i, v, ll));
        }
        let work = WeightedSnapshot { graph, lab, view };
        Ok(WeightedBatchIndex {
            store: LabelStore::new(work.clone()),
            work,
            recycler: engine::Recycler::new(),
            threads: 1,
            compaction: CompactionPolicy::default(),
            ws: DijkstraWorkspace::new(n),
            engine: BiDijkstra::new(n),
        })
    }

    /// Assemble an index from externally persisted parts (the weighted
    /// load path of `crate::persist`): a graph plus a previously
    /// constructed labelling.
    ///
    /// Performs structural validation (dimensions, highway diagonal);
    /// it does *not* prove the labelling matches the graph.
    pub fn from_parts(graph: WeightedGraph, lab: Labelling) -> Result<Self, LabelError> {
        let n = graph.num_vertices();
        if lab.num_vertices() != n {
            return Err(LabelError::VertexCountMismatch {
                labelling: lab.num_vertices(),
                graph: n,
            });
        }
        for i in 0..lab.num_landmarks() {
            if lab.highway(i, i) != 0 {
                return Err(LabelError::CorruptHighwayDiagonal { index: i });
            }
        }
        let view = WeightedCsrDelta::from_weighted(&graph);
        let work = WeightedSnapshot { graph, lab, view };
        Ok(WeightedBatchIndex {
            store: LabelStore::new(work.clone()),
            work,
            recycler: engine::Recycler::new(),
            threads: 1,
            compaction: CompactionPolicy::default(),
            ws: DijkstraWorkspace::new(n),
            engine: BiDijkstra::new(n),
        })
    }

    /// Use landmark-level parallelism for updates (the weighted BHLₚ —
    /// a capability the unified engine provides to every variant).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Worker threads used for landmark-parallel updates.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The CSR compaction policy of published views.
    pub fn compaction(&self) -> CompactionPolicy {
        self.compaction
    }

    /// Builder-style [`WeightedBatchIndex::set_compaction`].
    pub fn with_compaction(mut self, policy: CompactionPolicy) -> Self {
        self.set_compaction(policy);
        self
    }

    /// Tune the CSR compaction policy of the published weighted view —
    /// the same [`CompactionPolicy`] every index family takes.
    pub fn set_compaction(&mut self, policy: CompactionPolicy) {
        self.compaction = policy;
        self.work.view.set_policy(policy);
    }

    pub fn graph(&self) -> &WeightedGraph {
        &self.work.graph
    }

    pub fn labelling(&self) -> &Labelling {
        &self.work.lab
    }

    /// Roll the writer back to the generation captured in `snap` and
    /// republish it (see `BatchIndex::restore_generation`; same
    /// contract, weighted snapshot).
    pub(crate) fn restore_generation(&mut self, snap: &WeightedSnapshot) {
        self.work = snap.clone();
        self.work.view.set_policy(self.compaction);
        self.store.publish(self.work.clone());
        self.recycler.clear();
        let n = self.work.graph.num_vertices();
        self.ws = DijkstraWorkspace::new(n);
        self.engine = BiDijkstra::new(n);
    }

    pub fn num_vertices(&self) -> usize {
        self.work.graph.num_vertices()
    }

    /// The most recently published generation (what readers see).
    pub fn published(&self) -> Arc<Versioned<WeightedSnapshot>> {
        self.store.snapshot()
    }

    /// The version number of the published generation.
    pub fn version(&self) -> u64 {
        self.store.version()
    }

    /// A `Send + Sync` query handle over the published generations.
    pub fn reader(&self) -> WeightedReader {
        WeightedReader::new(self.store.reader())
    }

    /// A `Send + Sync` query handle whose queries take `&self` (see
    /// [`SharedReader`]).
    pub fn shared_reader(&self) -> SharedReader<WeightedSnapshot> {
        SharedReader::new(self.store.clone())
    }

    /// Exact weighted distance; `None` when disconnected.
    pub fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        let d = self.query_dist(s, t);
        (d != INF).then_some(d)
    }

    pub fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        weighted_query_dist(&self.work.view, &self.work.lab, &mut self.engine, s, t)
    }

    /// Batched pair queries (order of results matches `pairs`); pairs
    /// sharing a source reuse one [`SourcePlan`].
    pub fn query_many(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>> {
        crate::reader::query_many_on(&self.work, &mut self.engine, pairs)
    }

    /// One-source-to-many-targets weighted distances; `None` marks
    /// disconnected or out-of-range endpoints.
    pub fn distances_from(&mut self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>> {
        self.work
            .snapshot_distances_from(&mut self.engine, s, targets)
            .into_iter()
            .map(|d| (d != INF).then_some(d))
            .collect()
    }

    /// The `k` vertices closest to `s` (excluding `s`), nondecreasing
    /// by weighted distance.
    pub fn top_k_closest(&mut self, s: Vertex, k: usize) -> Vec<(Vertex, Dist)> {
        self.work.snapshot_top_k(&mut self.engine, s, k)
    }

    /// Apply a batch of weighted updates. Self-loops, invalid updates
    /// and repeated updates of the same edge (only the first counts)
    /// are dropped during normalization.
    pub fn apply_batch(&mut self, updates: &[WeightedUpdate]) -> UpdateStats {
        let start = Instant::now();
        let mut stats = UpdateStats {
            passes: 1,
            ..Default::default()
        };
        let effects = self.normalize(updates);
        if effects.is_empty() {
            stats.elapsed = start.elapsed();
            return stats;
        }
        let old = self.store.snapshot();
        apply_effects(&mut self.work.graph, &effects, Some(&mut stats));
        stats.applied = effects.len();

        let n = self.work.graph.num_vertices();
        self.work.lab.ensure_vertices(n);
        self.ws.grow(n);

        // Freeze the batch's endpoints into the weighted CSR view; the
        // Dijkstra searches below traverse it. The policy is re-applied
        // every pass because publish/recycle may have swapped in a
        // buffer that predates a setter call.
        self.work.view.set_policy(self.compaction);
        let graph = &self.work.graph;
        self.work
            .view
            .absorb_from(graph, effect_endpoints(&effects));
        let mut grown = None;
        let oracle = engine::oracle_for(&old.lab, n, &mut grown);

        let affected = engine::run_landmarks(
            &DijkstraKernel,
            oracle,
            &self.work.view,
            &effects,
            &mut self.work.lab,
            self.threads,
            &mut self.ws,
        );
        stats.affected_per_landmark = affected.iter().map(Vec::len).collect();
        stats.affected_total = stats.affected_per_landmark.iter().sum();

        // Publish and recycle, exactly as the unweighted indexes do.
        engine::publish_pass(
            &self.store,
            &mut self.recycler,
            &mut self.work,
            WeightedSnapshot::placeholder(),
            old,
            PassLog { effects, affected },
            |buf, fresh, log| {
                apply_effects(&mut buf.graph, &log.effects, None);
                let graph = &buf.graph;
                buf.view.absorb_from(graph, effect_endpoints(&log.effects));
                engine::sync_affected(&fresh.lab, &mut buf.lab, &log.affected);
            },
        );

        stats.elapsed = start.elapsed();
        stats
    }

    fn normalize(&self, updates: &[WeightedUpdate]) -> Vec<Effect> {
        normalize_weighted(&self.work.graph, updates)
    }
}

/// Normalize a weighted update batch against `graph`: canonicalize
/// endpoints, drop self-loops, duplicates (only the first update of an
/// edge counts) and invalid updates (inserting a present edge, deleting
/// or reweighting an absent one, no-op reweights). Shared by the
/// writer's commit path and read-only what-if sessions.
pub(crate) fn normalize_weighted(graph: &WeightedGraph, updates: &[WeightedUpdate]) -> Vec<Effect> {
    let mut seen: FxHashMap<(Vertex, Vertex), ()> = FxHashMap::default();
    let mut out = Vec::new();
    for u in updates {
        let u = u.canonical();
        let (a, b) = u.endpoints();
        if a == b || seen.contains_key(&(a, b)) {
            continue;
        }
        let in_range = (b as usize) < graph.num_vertices();
        let w_old = if in_range { graph.weight(a, b) } else { None };
        let effect = match u {
            WeightedUpdate::Insert(_, _, w) if w_old.is_none() => Effect {
                a,
                b,
                w_old: None,
                w_new: Some(w),
            },
            WeightedUpdate::Delete(..) if w_old.is_some() => Effect {
                a,
                b,
                w_old,
                w_new: None,
            },
            WeightedUpdate::SetWeight(_, _, w) if w_old.is_some() && w_old != Some(w) => Effect {
                a,
                b,
                w_old,
                w_new: Some(w),
            },
            _ => continue, // invalid
        };
        seen.insert((a, b), ());
        out.push(effect);
    }
    out
}

/// Distinct endpoints of a normalized effect list, sorted — the
/// vertices the weighted CSR overlay must re-freeze.
pub(crate) fn effect_endpoints(effects: &[Effect]) -> Vec<Vertex> {
    let mut touched: Vec<Vertex> = effects.iter().flat_map(|e| [e.a, e.b]).collect();
    touched.sort_unstable();
    touched.dedup();
    touched
}

/// The weighted query path, shared by the owning index and its readers
/// (generic so readers traverse the published CSR view; mirrors
/// `directed_query_dist`).
pub(crate) fn weighted_query_dist<W: WeightedAdjacencyView>(
    graph: &W,
    lab: &Labelling,
    engine: &mut BiDijkstra,
    s: Vertex,
    t: Vertex,
) -> Dist {
    let n = graph.num_vertices();
    if (s as usize) >= n || (t as usize) >= n {
        return INF;
    }
    if s == t {
        return 0;
    }
    match (lab.landmark_index(s), lab.landmark_index(t)) {
        (Some(i), Some(j)) => lab.highway(i, j),
        (Some(i), None) => lab.landmark_to_vertex(i, t),
        (None, Some(j)) => lab.landmark_to_vertex(j, s),
        (None, None) => {
            let bound = lab.upper_bound(s, t);
            engine
                .run(graph, s, t, bound, |v| !lab.is_landmark(v))
                .unwrap_or(bound)
        }
    }
}

/// The weighted one-to-many path, shared by the owning index and its
/// readers (mirrors the unweighted `QueryEngine::distances_from`): one
/// [`SourcePlan`] prices every target's Eq. 3 bound in `O(|R|)`, and
/// once [`sweep_min_targets`] targets need search refinement a single
/// bounded Dijkstra sweep of `G[V\R]` from `s` replaces the per-target
/// bidirectional searches.
pub(crate) fn weighted_distances_from<W: WeightedAdjacencyView>(
    graph: &W,
    lab: &Labelling,
    engine: &mut BiDijkstra,
    s: Vertex,
    targets: &[Vertex],
) -> Vec<Dist> {
    let n = graph.num_vertices();
    let mut out = vec![INF; targets.len()];
    if (s as usize) >= n {
        return out;
    }
    if let Some(i) = lab.landmark_index(s) {
        for (slot, &t) in out.iter_mut().zip(targets) {
            if (t as usize) < n {
                *slot = lab.landmark_to_vertex(i, t);
            }
        }
        return out;
    }
    let plan = SourcePlan::new(lab, lab, s);
    let mut refine: Vec<usize> = Vec::new();
    for (k, &t) in targets.iter().enumerate() {
        if (t as usize) >= n {
            continue;
        }
        if t == s {
            out[k] = 0;
            continue;
        }
        if let Some(j) = lab.landmark_index(t) {
            out[k] = lab.landmark_to_vertex(j, s);
            continue;
        }
        out[k] = plan.bound_to(lab, t);
        refine.push(k);
    }
    if refine.len() >= sweep_min_targets(n) {
        let horizon = refine.iter().map(|&k| out[k]).max().unwrap_or(0);
        engine.sweep(graph, s, horizon, usize::MAX, |v| !lab.is_landmark(v));
        for &k in &refine {
            out[k] = out[k].min(engine.sweep_dist(targets[k]));
        }
    } else {
        for &k in &refine {
            let bound = out[k];
            let found = engine.run(graph, s, targets[k], bound, |v| !lab.is_landmark(v));
            out[k] = found.unwrap_or(bound);
        }
    }
    out
}

/// As [`weighted_query_dist`] over a patched labelling view — the
/// per-pair path of a weighted what-if session. `graph` is the
/// session's private weighted overlay.
pub(crate) fn weighted_query_dist_patched<W: WeightedAdjacencyView>(
    graph: &W,
    pl: &PatchedLabels<'_>,
    engine: &mut BiDijkstra,
    s: Vertex,
    t: Vertex,
) -> Dist {
    let n = graph.num_vertices();
    if (s as usize) >= n || (t as usize) >= n {
        return INF;
    }
    if s == t {
        return 0;
    }
    match (pl.landmark_index(s), pl.landmark_index(t)) {
        (Some(i), Some(j)) => pl.highway(i, j),
        (Some(i), None) => pl.landmark_to_vertex(i, t),
        (None, Some(j)) => pl.landmark_to_vertex(j, s),
        (None, None) => {
            let bound = pl.upper_bound(s, t);
            engine
                .run(graph, s, t, bound, |v| !pl.is_landmark(v))
                .unwrap_or(bound)
        }
    }
}

/// As [`weighted_distances_from`] over a patched labelling view, with
/// the same landmark-source, sweep-vs-search and range handling.
pub(crate) fn weighted_distances_from_patched<W: WeightedAdjacencyView>(
    graph: &W,
    pl: &PatchedLabels<'_>,
    engine: &mut BiDijkstra,
    s: Vertex,
    targets: &[Vertex],
) -> Vec<Dist> {
    let n = graph.num_vertices();
    let mut out = vec![INF; targets.len()];
    if (s as usize) >= n {
        return out;
    }
    if let Some(i) = pl.landmark_index(s) {
        for (slot, &t) in out.iter_mut().zip(targets) {
            if (t as usize) < n {
                *slot = pl.landmark_to_vertex(i, t);
            }
        }
        return out;
    }
    let plan = SourcePlan::new_patched(pl, pl, s);
    let mut refine: Vec<usize> = Vec::new();
    for (k, &t) in targets.iter().enumerate() {
        if (t as usize) >= n {
            continue;
        }
        if t == s {
            out[k] = 0;
            continue;
        }
        if let Some(j) = pl.landmark_index(t) {
            out[k] = pl.landmark_to_vertex(j, s);
            continue;
        }
        out[k] = plan.bound_to_patched(pl, t);
        refine.push(k);
    }
    if refine.len() >= sweep_min_targets(n) {
        let horizon = refine.iter().map(|&k| out[k]).max().unwrap_or(0);
        engine.sweep(graph, s, horizon, usize::MAX, |v| !pl.is_landmark(v));
        for &k in &refine {
            out[k] = out[k].min(engine.sweep_dist(targets[k]));
        }
    } else {
        for &k in &refine {
            let bound = out[k];
            let found = engine.run(graph, s, targets[k], bound, |v| !pl.is_landmark(v));
            out[k] = found.unwrap_or(bound);
        }
    }
    out
}

/// The `k` vertices closest to `s` on the full weighted graph: a
/// capped Dijkstra sweep settles vertices in distance order.
///
/// The answer is canonicalized to (distance, vertex id) order before
/// the cut at `k`, matching [`batchhl_hcl::query::bfs_top_k`]: ties at
/// the boundary distance never depend on heap or adjacency iteration
/// order, so the same query answers identically across CSR compaction
/// and relabeling of an identical graph.
pub(crate) fn weighted_top_k<W: WeightedAdjacencyView>(
    graph: &W,
    engine: &mut BiDijkstra,
    s: Vertex,
    k: usize,
) -> Vec<(Vertex, Dist)> {
    if (s as usize) >= graph.num_vertices() || k == 0 {
        return Vec::new();
    }
    engine.sweep(graph, s, INF, k.saturating_add(1), |_| true);
    let mut out: Vec<(Vertex, Dist)> = engine
        .swept()
        .iter()
        .filter(|&&v| v != s)
        .map(|&v| (v, engine.sweep_dist(v)))
        .collect();
    out.sort_unstable_by_key(|&(v, d)| (d, v));
    out.truncate(k);
    out
}

/// Apply normalized effects to a graph (and optionally count them) —
/// used both for the working graph and when replaying the batch onto a
/// recycled generation buffer.
fn apply_effects(
    graph: &mut WeightedGraph,
    effects: &[Effect],
    mut stats: Option<&mut UpdateStats>,
) {
    for e in effects {
        match (e.w_old, e.w_new) {
            (None, Some(w)) => {
                graph.ensure_vertices(e.a.max(e.b) as usize + 1);
                graph.insert_edge(e.a, e.b, w);
                if let Some(s) = stats.as_deref_mut() {
                    s.insertions += 1;
                }
            }
            (Some(_), None) => {
                graph.remove_edge(e.a, e.b);
                if let Some(s) = stats.as_deref_mut() {
                    s.deletions += 1;
                }
            }
            (Some(_), Some(w)) => {
                graph.set_weight(e.a, e.b, w);
                // Weight changes count toward the kind they mimic.
                if let Some(s) = stats.as_deref_mut() {
                    if Some(w) < e.w_old {
                        s.insertions += 1;
                    } else {
                        s.deletions += 1;
                    }
                }
            }
            (None, None) => unreachable!("normalization keeps valid effects only"),
        }
    }
}

/// Flagged Dijkstra from landmark `i`: `(vertex, d^L)` for all reached
/// vertices, flags as in the flagged BFS of the unweighted build.
fn flagged_dijkstra<W: WeightedAdjacencyView>(
    g: &W,
    lab: &Labelling,
    i: usize,
) -> Vec<(Vertex, LandmarkLength)> {
    let n = g.num_vertices();
    let root = lab.landmark_vertex(i);
    let mut best: Vec<u64> = vec![LandmarkLength::INFINITE.key(); n];
    let mut heap: BinaryHeap<Reverse<(u64, Vertex)>> = BinaryHeap::new();
    best[root as usize] = LandmarkLength::ZERO.key();
    heap.push(Reverse((LandmarkLength::ZERO.key(), root)));
    while let Some(Reverse((key, v))) = heap.pop() {
        if key > best[v as usize] {
            continue;
        }
        let ll = LandmarkLength::from_key(key);
        for &(w, wt) in g.weighted_neighbors(v) {
            let cand = ll.extend_by(wt, lab.is_landmark(w));
            if cand.key() < best[w as usize] {
                best[w as usize] = cand.key();
                heap.push(Reverse((cand.key(), w)));
            }
        }
    }
    (0..n as Vertex)
        .filter(|&v| v != root)
        .map(|v| (v, LandmarkLength::from_key(best[v as usize])))
        .filter(|(_, ll)| !ll.is_infinite())
        .collect()
}

fn write_entry(lab: &mut Labelling, i: usize, v: Vertex, ll: LandmarkLength) {
    if let Some(j) = lab.landmark_index(v) {
        lab.set_highway_row(i, j, ll.dist());
    } else if !ll.through_landmark() {
        lab.set_label(i, v, ll.dist());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_common::SplitMix64;
    use batchhl_graph::weighted::dijkstra;

    /// Brute-force minimal weighted labelling via Dijkstra matrices.
    fn bruteforce(g: &WeightedGraph, landmarks: Vec<Vertex>) -> Labelling {
        let dists: Vec<Vec<Dist>> = landmarks.iter().map(|&r| dijkstra(g, r)).collect();
        let mut lab = Labelling::empty(g.num_vertices(), landmarks).expect("valid landmark set");
        let r = lab.num_landmarks();
        for (i, row) in dists.iter().enumerate() {
            for j in 0..r {
                lab.set_highway_row(i, j, row[lab.landmark_vertex(j) as usize]);
            }
        }
        for i in 0..r {
            for v in 0..g.num_vertices() as Vertex {
                if lab.is_landmark(v) || dists[i][v as usize] == INF {
                    continue;
                }
                let d = dists[i][v as usize];
                let covered = (0..r).any(|j| {
                    j != i
                        && dists[i][lab.landmark_vertex(j) as usize] != INF
                        && dists[j][v as usize] != INF
                        && dists[i][lab.landmark_vertex(j) as usize] as u64
                            + dists[j][v as usize] as u64
                            == d as u64
                });
                if !covered {
                    lab.set_label(i, v, d);
                }
            }
        }
        lab
    }

    fn random_weighted(n: usize, m: usize, seed: u64) -> WeightedGraph {
        let mut rng = SplitMix64::new(seed);
        let mut g = WeightedGraph::new(n);
        while g.num_edges() < m {
            let a = rng.below(n as u64) as Vertex;
            let b = rng.below(n as u64) as Vertex;
            if a != b {
                g.insert_edge(a, b, 1 + rng.below(9) as Weight);
            }
        }
        g
    }

    fn random_mixed_batch(
        idx: &WeightedBatchIndex,
        rng: &mut SplitMix64,
        n: u64,
    ) -> Vec<WeightedUpdate> {
        let mut batch = Vec::new();
        let edges: Vec<_> = idx.graph().edges().collect();
        for k in 0..8 {
            match k % 3 {
                0 => {
                    let (a, b, w) = edges[rng.below(edges.len() as u64) as usize];
                    let nw = 1 + ((w as u64 + rng.below(6)) % 9) as Weight;
                    batch.push(WeightedUpdate::SetWeight(a, b, nw));
                }
                1 => {
                    let (a, b, _) = edges[rng.below(edges.len() as u64) as usize];
                    batch.push(WeightedUpdate::Delete(a, b));
                }
                _ => {
                    let a = rng.below(n) as Vertex;
                    let b = rng.below(n) as Vertex;
                    if a != b {
                        batch.push(WeightedUpdate::Insert(a, b, 1 + rng.below(9) as Weight));
                    }
                }
            }
        }
        batch
    }

    #[test]
    fn construction_is_minimal() {
        for seed in 0..6 {
            let g = random_weighted(40, 90, seed);
            let idx = WeightedBatchIndex::build(g.clone(), 5);
            let want = bruteforce(&g, idx.labelling().landmarks().to_vec());
            assert_eq!(idx.labelling(), &want, "seed {seed}");
        }
    }

    #[test]
    fn queries_match_dijkstra() {
        let g = random_weighted(45, 100, 3);
        let mut idx = WeightedBatchIndex::build(g.clone(), 5);
        for s in 0..45u32 {
            let truth = dijkstra(&g, s);
            for t in 0..45u32 {
                assert_eq!(idx.query_dist(s, t), truth[t as usize], "({s},{t})");
            }
        }
    }

    #[test]
    fn weight_changes_track_rebuild() {
        for seed in 0..6u64 {
            let g = random_weighted(35, 80, seed);
            let mut idx = WeightedBatchIndex::build(g, 4);
            let mut rng = SplitMix64::new(seed ^ 0xAB);
            for round in 0..4 {
                let batch = random_mixed_batch(&idx, &mut rng, 35);
                idx.apply_batch(&batch);
                let want = bruteforce(idx.graph(), idx.labelling().landmarks().to_vec());
                assert_eq!(
                    idx.labelling(),
                    &want,
                    "seed {seed} round {round}: labelling diverged from rebuild"
                );
                assert_eq!(
                    &idx.published().lab,
                    idx.labelling(),
                    "published generation out of sync"
                );
            }
            // Queries stay exact at the end.
            let g = idx.graph().clone();
            for s in (0..35u32).step_by(5) {
                let truth = dijkstra(&g, s);
                for t in 0..35u32 {
                    assert_eq!(idx.query_dist(s, t), truth[t as usize]);
                }
            }
        }
    }

    #[test]
    fn parallel_weighted_updates_match_sequential() {
        let g = random_weighted(40, 100, 9);
        let mut seq = WeightedBatchIndex::build(g.clone(), 5);
        let mut par = WeightedBatchIndex::build(g, 5).with_threads(4);
        let mut rng = SplitMix64::new(0xBEEF);
        for _ in 0..3 {
            let batch = random_mixed_batch(&seq, &mut rng, 40);
            seq.apply_batch(&batch);
            par.apply_batch(&batch);
            assert_eq!(seq.labelling(), par.labelling());
        }
    }

    #[test]
    fn weighted_reader_matches_owner() {
        let g = random_weighted(40, 90, 15);
        let mut idx = WeightedBatchIndex::build(g, 5);
        let mut reader = idx.reader();
        let mut rng = SplitMix64::new(0xCAFE);
        let batch = random_mixed_batch(&idx, &mut rng, 40);
        idx.apply_batch(&batch);
        for s in (0..40u32).step_by(3) {
            for t in (0..40u32).step_by(7) {
                assert_eq!(reader.query_dist(s, t), idx.query_dist(s, t), "({s},{t})");
            }
        }
        assert_eq!(reader.version(), 1);
    }

    #[test]
    fn weight_increase_behaves_like_deletion() {
        // Path 0 -1- 1 -1- 2; landmark 0. Bumping (0,1) to 5 must
        // raise d(0,2) to 6 and keep labels minimal.
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
        let mut idx = WeightedBatchIndex::build_with_landmarks(g, vec![0]).unwrap();
        assert_eq!(idx.query(0, 2), Some(2));
        idx.apply_batch(&[WeightedUpdate::SetWeight(0, 1, 5)]);
        assert_eq!(idx.query(0, 2), Some(6));
        assert_eq!(idx.query(1, 2), Some(1));
    }

    #[test]
    fn weight_decrease_behaves_like_insertion() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 9), (1, 2, 1)]);
        let mut idx = WeightedBatchIndex::build_with_landmarks(g, vec![0]).unwrap();
        assert_eq!(idx.query(0, 2), Some(10));
        idx.apply_batch(&[WeightedUpdate::SetWeight(0, 1, 2)]);
        assert_eq!(idx.query(0, 2), Some(3));
    }

    #[test]
    fn constructor_rejects_bad_landmarks() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 2)]);
        assert!(WeightedBatchIndex::build_with_landmarks(g.clone(), vec![7]).is_err());
        assert!(WeightedBatchIndex::build_with_landmarks(g, vec![0, 0]).is_err());
    }

    #[test]
    fn normalization_rules() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 2)]);
        let mut idx = WeightedBatchIndex::build(g, 2);
        let stats = idx.apply_batch(&[
            WeightedUpdate::Insert(0, 1, 5),    // exists: invalid
            WeightedUpdate::SetWeight(0, 1, 2), // unchanged: invalid
            WeightedUpdate::Delete(2, 3),       // absent: invalid
            WeightedUpdate::Insert(1, 1, 4),    // self-loop
            WeightedUpdate::Insert(2, 3, 4),    // valid
            WeightedUpdate::SetWeight(2, 3, 7), // same edge twice: dropped
        ]);
        assert_eq!(stats.applied, 1);
        assert_eq!(idx.graph().weight(2, 3), Some(4));
    }
}
