//! Weighted BatchHL (the Section 6 extension).
//!
//! "For weighted graphs, we can use pruned Dijkstra's algorithm in place
//! of pruned BFSs. We consider updates in the form of edge weight
//! increase or decrease instead of edge insertion or deletion. Our
//! methods can then handle weight increases in a similar way to edge
//! deletions, and weight decreases in a similar way to edge insertions."
//!
//! The machinery carries over with three changes:
//!
//! * construction runs a *flagged Dijkstra* per landmark (same landmark
//!   flags, heap-ordered settle),
//! * batch search seeds each update's anchors with
//!   `d_G(r, near) + min(w_old, w_new)` — the lighter of the two
//!   weights covers both the paths an increase destroys and the paths a
//!   decrease creates (insertion/deletion are the `w = ∞` edge cases) —
//!   and expands with the basic (Algorithm 2 style) pruning
//!   `d + w(v, u) ≤ d_G(r, u)`,
//! * batch repair pops by the full packed `(distance, landmark-flag)`
//!   key from a binary heap instead of a Dial queue (weights > 1 void
//!   the unit-bucket argument; the Dijkstra exchange argument of
//!   Lemma 5.20 still applies verbatim).
//!
//! The paper reports no weighted experiments, so the harness claims
//! none either; correctness is pinned the same way as the unweighted
//! index — the maintained labelling must equal the (unique) minimal
//! labelling rebuilt from scratch.

use crate::stats::UpdateStats;
use batchhl_common::{
    Dist, EpochCache, FxHashMap, LandmarkLength, SparseBitSet, Vertex, INF,
};
use batchhl_graph::weighted::{BiDijkstra, Weight, WeightedGraph, WeightedUpdate};
use batchhl_hcl::Labelling;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// A normalized weighted update: the edge plus its old/new weight
/// (`None` = absent on that side).
#[derive(Debug, Clone, Copy)]
struct Effect {
    a: Vertex,
    b: Vertex,
    w_old: Option<Weight>,
    w_new: Option<Weight>,
}

/// Batch-dynamic distance index over a positively weighted graph.
pub struct WeightedBatchIndex {
    graph: WeightedGraph,
    lab: Labelling,
    shadow: Labelling,
    aff: SparseBitSet,
    dl_cache: EpochCache,
    bounds: EpochCache,
    engine: BiDijkstra,
}

impl WeightedBatchIndex {
    /// Build with `k` top-degree landmarks.
    pub fn build(graph: WeightedGraph, k: usize) -> Self {
        let mut order = graph.vertices_by_degree();
        order.truncate(k.min(graph.num_vertices()));
        Self::build_with_landmarks(graph, order)
    }

    pub fn build_with_landmarks(graph: WeightedGraph, landmarks: Vec<Vertex>) -> Self {
        let n = graph.num_vertices();
        let mut lab = Labelling::empty(n, landmarks.clone());
        for i in 0..landmarks.len() {
            flagged_dijkstra(&graph, &lab, i, &mut Vec::new())
                .into_iter()
                .for_each(|(v, ll)| write_entry(&mut lab, i, v, ll));
        }
        let shadow = lab.clone();
        WeightedBatchIndex {
            graph,
            lab,
            shadow,
            aff: SparseBitSet::new(n),
            dl_cache: EpochCache::new(n),
            bounds: EpochCache::new(n),
            engine: BiDijkstra::new(n),
        }
    }

    pub fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    pub fn labelling(&self) -> &Labelling {
        &self.lab
    }

    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Exact weighted distance; `None` when disconnected.
    pub fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        let d = self.query_dist(s, t);
        (d != INF).then_some(d)
    }

    pub fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        let n = self.graph.num_vertices();
        if (s as usize) >= n || (t as usize) >= n {
            return INF;
        }
        if s == t {
            return 0;
        }
        match (self.lab.landmark_index(s), self.lab.landmark_index(t)) {
            (Some(i), Some(j)) => self.lab.highway(i, j),
            (Some(i), None) => self.lab.landmark_to_vertex(i, t),
            (None, Some(j)) => self.lab.landmark_to_vertex(j, s),
            (None, None) => {
                let bound = self.lab.upper_bound(s, t);
                let lab = &self.lab;
                self.engine
                    .run(&self.graph, s, t, bound, |v| !lab.is_landmark(v))
                    .unwrap_or(bound)
            }
        }
    }

    /// Apply a batch of weighted updates. Self-loops, invalid updates
    /// and repeated updates of the same edge (only the first counts)
    /// are dropped during normalization.
    pub fn apply_batch(&mut self, updates: &[WeightedUpdate]) -> UpdateStats {
        let start = Instant::now();
        let mut stats = UpdateStats {
            passes: 1,
            ..Default::default()
        };
        let effects = self.normalize(updates);
        if effects.is_empty() {
            stats.elapsed = start.elapsed();
            return stats;
        }
        // Apply to the graph.
        for e in &effects {
            match (e.w_old, e.w_new) {
                (None, Some(w)) => {
                    self.graph.ensure_vertices(e.a.max(e.b) as usize + 1);
                    self.graph.insert_edge(e.a, e.b, w);
                    stats.insertions += 1;
                }
                (Some(_), None) => {
                    self.graph.remove_edge(e.a, e.b);
                    stats.deletions += 1;
                }
                (Some(_), Some(w)) => {
                    self.graph.set_weight(e.a, e.b, w);
                    // Weight changes count toward the kind they mimic.
                    if Some(w) < e.w_old {
                        stats.insertions += 1;
                    } else {
                        stats.deletions += 1;
                    }
                }
                (None, None) => unreachable!("normalization keeps valid effects only"),
            }
        }
        stats.applied = effects.len();

        let n = self.graph.num_vertices();
        self.lab.ensure_vertices(n);
        self.shadow.ensure_vertices(n);
        self.aff.grow(n);
        self.dl_cache.grow(n);
        self.bounds.grow(n);

        let r = self.lab.num_landmarks();
        let mut affected = Vec::with_capacity(r);
        for i in 0..r {
            self.search(i, &effects);
            self.repair(i);
            affected.push(self.aff.inserted().to_vec());
        }
        for (i, aff) in affected.iter().enumerate() {
            for &v in aff {
                let d = self.lab.label(i, v);
                self.shadow.set_label(i, v, d);
            }
            for j in 0..r {
                self.shadow.set_highway_row(i, j, self.lab.highway(i, j));
            }
        }
        stats.affected_per_landmark = affected.iter().map(Vec::len).collect();
        stats.affected_total = stats.affected_per_landmark.iter().sum();
        stats.elapsed = start.elapsed();
        stats
    }

    fn normalize(&self, updates: &[WeightedUpdate]) -> Vec<Effect> {
        let mut seen: FxHashMap<(Vertex, Vertex), ()> = FxHashMap::default();
        let mut out = Vec::new();
        for u in updates {
            let u = u.canonical();
            let (a, b) = u.endpoints();
            if a == b || seen.contains_key(&(a, b)) {
                continue;
            }
            let in_range = (b as usize) < self.graph.num_vertices();
            let w_old = if in_range { self.graph.weight(a, b) } else { None };
            let effect = match u {
                WeightedUpdate::Insert(_, _, w) if w_old.is_none() => Effect {
                    a,
                    b,
                    w_old: None,
                    w_new: Some(w),
                },
                WeightedUpdate::Delete(..) if w_old.is_some() => Effect {
                    a,
                    b,
                    w_old,
                    w_new: None,
                },
                WeightedUpdate::SetWeight(_, _, w) if w_old.is_some() && w_old != Some(w) => {
                    Effect {
                        a,
                        b,
                        w_old,
                        w_new: Some(w),
                    }
                }
                _ => continue, // invalid
            };
            seen.insert((a, b), ());
            out.push(effect);
        }
        out
    }

    /// Weighted batch search for landmark `i` (Algorithm 2 analogue).
    fn search(&mut self, i: usize, effects: &[Effect]) {
        self.aff.clear();
        self.dl_cache.clear();
        let mut heap: BinaryHeap<Reverse<(Dist, Vertex)>> = BinaryHeap::new();
        for e in effects {
            let min_w = e.w_old.unwrap_or(Weight::MAX).min(e.w_new.unwrap_or(Weight::MAX));
            let da = self.dl_old(i, e.a).dist();
            let db = self.dl_old(i, e.b).dist();
            if da != INF && da.saturating_add(min_w) <= db {
                heap.push(Reverse((da + min_w, e.b)));
            }
            if db != INF && db.saturating_add(min_w) <= da {
                heap.push(Reverse((db + min_w, e.a)));
            }
        }
        while let Some(Reverse((d, v))) = heap.pop() {
            if !self.aff.insert(v) {
                continue;
            }
            for k in 0..self.graph.neighbors(v).len() {
                let (w, wt) = self.graph.neighbors(v)[k];
                let nd = d.saturating_add(wt);
                if nd <= self.dl_old(i, w).dist() {
                    heap.push(Reverse((nd, w)));
                }
            }
        }
    }

    /// Weighted batch repair for landmark `i` (Algorithm 4 analogue,
    /// heap-ordered by the packed landmark-length key).
    fn repair(&mut self, i: usize) {
        self.bounds.clear();
        let mut heap: BinaryHeap<Reverse<(u64, Vertex)>> = BinaryHeap::new();
        for idx in 0..self.aff.inserted().len() {
            let v = self.aff.inserted()[idx];
            let v_is_lm = self.lab.is_landmark(v);
            let mut best = LandmarkLength::INFINITE;
            for k in 0..self.graph.neighbors(v).len() {
                let (w, wt) = self.graph.neighbors(v)[k];
                if self.aff.contains(w) {
                    continue;
                }
                let cand = self.dl_old(i, w).extend_by(wt, v_is_lm);
                if cand < best {
                    best = cand;
                }
            }
            self.bounds.set(v as usize, best.key());
            if !best.is_infinite() {
                heap.push(Reverse((best.key(), v)));
            }
        }
        while let Some(Reverse((key, v))) = heap.pop() {
            if !self.aff.contains(v) {
                continue;
            }
            let bound = LandmarkLength::from_key(self.bounds.get(v as usize).expect("bounded"));
            if bound.key() != key {
                continue; // stale
            }
            self.aff.remove(v);
            self.finalize(i, v, bound);
            for k in 0..self.graph.neighbors(v).len() {
                let (w, wt) = self.graph.neighbors(v)[k];
                if !self.aff.contains(w) {
                    continue;
                }
                let cand = bound.extend_by(wt, self.lab.is_landmark(w));
                let cur = self
                    .bounds
                    .get(w as usize)
                    .map(LandmarkLength::from_key)
                    .unwrap_or(LandmarkLength::INFINITE);
                if cand < cur {
                    self.bounds.set(w as usize, cand.key());
                    if !cand.is_infinite() {
                        heap.push(Reverse((cand.key(), w)));
                    }
                }
            }
        }
        for idx in 0..self.aff.inserted().len() {
            let v = self.aff.inserted()[idx];
            if self.aff.contains(v) {
                self.aff.remove(v);
                self.finalize(i, v, LandmarkLength::INFINITE);
            }
        }
    }

    fn finalize(&mut self, i: usize, v: Vertex, dl: LandmarkLength) {
        if let Some(j) = self.lab.landmark_index(v) {
            let d = if dl.is_infinite() { INF } else { dl.dist() };
            self.lab.set_highway_row(i, j, d);
            self.lab.remove_label(i, v);
        } else if dl.is_infinite() || dl.through_landmark() {
            self.lab.remove_label(i, v);
        } else {
            self.lab.set_label(i, v, dl.dist());
        }
    }

    fn dl_old(&mut self, i: usize, v: Vertex) -> LandmarkLength {
        if let Some(key) = self.dl_cache.get(v as usize) {
            return LandmarkLength::from_key(key);
        }
        let ll = self.shadow.landmark_dist(i, v);
        self.dl_cache.set(v as usize, ll.key());
        ll
    }
}

/// Flagged Dijkstra from landmark `i`: `(vertex, d^L)` for all reached
/// vertices, flags as in the flagged BFS of the unweighted build.
fn flagged_dijkstra(
    g: &WeightedGraph,
    lab: &Labelling,
    i: usize,
    scratch: &mut Vec<(Vertex, LandmarkLength)>,
) -> Vec<(Vertex, LandmarkLength)> {
    scratch.clear();
    let n = g.num_vertices();
    let root = lab.landmark_vertex(i);
    let mut best: Vec<u64> = vec![LandmarkLength::INFINITE.key(); n];
    let mut heap: BinaryHeap<Reverse<(u64, Vertex)>> = BinaryHeap::new();
    best[root as usize] = LandmarkLength::ZERO.key();
    heap.push(Reverse((LandmarkLength::ZERO.key(), root)));
    while let Some(Reverse((key, v))) = heap.pop() {
        if key > best[v as usize] {
            continue;
        }
        let ll = LandmarkLength::from_key(key);
        for &(w, wt) in g.neighbors(v) {
            let cand = ll.extend_by(wt, lab.is_landmark(w));
            if cand.key() < best[w as usize] {
                best[w as usize] = cand.key();
                heap.push(Reverse((cand.key(), w)));
            }
        }
    }
    (0..n as Vertex)
        .filter(|&v| v != root)
        .map(|v| (v, LandmarkLength::from_key(best[v as usize])))
        .filter(|(_, ll)| !ll.is_infinite())
        .collect()
}

fn write_entry(lab: &mut Labelling, i: usize, v: Vertex, ll: LandmarkLength) {
    if let Some(j) = lab.landmark_index(v) {
        lab.set_highway_row(i, j, ll.dist());
    } else if !ll.through_landmark() {
        lab.set_label(i, v, ll.dist());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_common::SplitMix64;
    use batchhl_graph::weighted::dijkstra;

    /// Brute-force minimal weighted labelling via Dijkstra matrices.
    fn bruteforce(g: &WeightedGraph, landmarks: Vec<Vertex>) -> Labelling {
        let dists: Vec<Vec<Dist>> = landmarks.iter().map(|&r| dijkstra(g, r)).collect();
        let mut lab = Labelling::empty(g.num_vertices(), landmarks);
        let r = lab.num_landmarks();
        for (i, row) in dists.iter().enumerate() {
            for j in 0..r {
                lab.set_highway_row(i, j, row[lab.landmark_vertex(j) as usize]);
            }
        }
        for i in 0..r {
            for v in 0..g.num_vertices() as Vertex {
                if lab.is_landmark(v) || dists[i][v as usize] == INF {
                    continue;
                }
                let d = dists[i][v as usize];
                let covered = (0..r).any(|j| {
                    j != i
                        && dists[i][lab.landmark_vertex(j) as usize] != INF
                        && dists[j][v as usize] != INF
                        && dists[i][lab.landmark_vertex(j) as usize] as u64
                            + dists[j][v as usize] as u64
                            == d as u64
                });
                if !covered {
                    lab.set_label(i, v, d);
                }
            }
        }
        lab
    }

    fn random_weighted(n: usize, m: usize, seed: u64) -> WeightedGraph {
        let mut rng = SplitMix64::new(seed);
        let mut g = WeightedGraph::new(n);
        while g.num_edges() < m {
            let a = rng.below(n as u64) as Vertex;
            let b = rng.below(n as u64) as Vertex;
            if a != b {
                g.insert_edge(a, b, 1 + rng.below(9) as Weight);
            }
        }
        g
    }

    #[test]
    fn construction_is_minimal() {
        for seed in 0..6 {
            let g = random_weighted(40, 90, seed);
            let idx = WeightedBatchIndex::build(g.clone(), 5);
            let want = bruteforce(&g, idx.labelling().landmarks().to_vec());
            assert_eq!(idx.labelling(), &want, "seed {seed}");
        }
    }

    #[test]
    fn queries_match_dijkstra() {
        let g = random_weighted(45, 100, 3);
        let mut idx = WeightedBatchIndex::build(g.clone(), 5);
        for s in 0..45u32 {
            let truth = dijkstra(&g, s);
            for t in 0..45u32 {
                assert_eq!(idx.query_dist(s, t), truth[t as usize], "({s},{t})");
            }
        }
    }

    #[test]
    fn weight_changes_track_rebuild() {
        for seed in 0..6u64 {
            let g = random_weighted(35, 80, seed);
            let mut idx = WeightedBatchIndex::build(g, 4);
            let mut rng = SplitMix64::new(seed ^ 0xAB);
            for round in 0..4 {
                let mut batch = Vec::new();
                // Mixed batch: weight bumps, cuts and fresh edges.
                let edges: Vec<_> = idx.graph().edges().collect();
                for k in 0..8 {
                    match k % 3 {
                        0 => {
                            let (a, b, w) = edges[rng.below(edges.len() as u64) as usize];
                            let nw = 1 + ((w as u64 + rng.below(6)) % 9) as Weight;
                            batch.push(WeightedUpdate::SetWeight(a, b, nw));
                        }
                        1 => {
                            let (a, b, _) = edges[rng.below(edges.len() as u64) as usize];
                            batch.push(WeightedUpdate::Delete(a, b));
                        }
                        _ => {
                            let a = rng.below(35) as Vertex;
                            let b = rng.below(35) as Vertex;
                            if a != b {
                                batch.push(WeightedUpdate::Insert(
                                    a,
                                    b,
                                    1 + rng.below(9) as Weight,
                                ));
                            }
                        }
                    }
                }
                idx.apply_batch(&batch);
                let want = bruteforce(idx.graph(), idx.labelling().landmarks().to_vec());
                assert_eq!(
                    idx.labelling(),
                    &want,
                    "seed {seed} round {round}: labelling diverged from rebuild"
                );
            }
            // Queries stay exact at the end.
            let g = idx.graph().clone();
            for s in (0..35u32).step_by(5) {
                let truth = dijkstra(&g, s);
                for t in 0..35u32 {
                    assert_eq!(idx.query_dist(s, t), truth[t as usize]);
                }
            }
        }
    }

    #[test]
    fn weight_increase_behaves_like_deletion() {
        // Path 0 -1- 1 -1- 2; landmark 0. Bumping (0,1) to 5 must
        // raise d(0,2) to 6 and keep labels minimal.
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
        let mut idx = WeightedBatchIndex::build_with_landmarks(g, vec![0]);
        assert_eq!(idx.query(0, 2), Some(2));
        idx.apply_batch(&[WeightedUpdate::SetWeight(0, 1, 5)]);
        assert_eq!(idx.query(0, 2), Some(6));
        assert_eq!(idx.query(1, 2), Some(1));
    }

    #[test]
    fn weight_decrease_behaves_like_insertion() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 9), (1, 2, 1)]);
        let mut idx = WeightedBatchIndex::build_with_landmarks(g, vec![0]);
        assert_eq!(idx.query(0, 2), Some(10));
        idx.apply_batch(&[WeightedUpdate::SetWeight(0, 1, 2)]);
        assert_eq!(idx.query(0, 2), Some(3));
    }

    #[test]
    fn normalization_rules() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 2)]);
        let mut idx = WeightedBatchIndex::build(g, 2);
        let stats = idx.apply_batch(&[
            WeightedUpdate::Insert(0, 1, 5),    // exists: invalid
            WeightedUpdate::SetWeight(0, 1, 2), // unchanged: invalid
            WeightedUpdate::Delete(2, 3),       // absent: invalid
            WeightedUpdate::Insert(1, 1, 4),    // self-loop
            WeightedUpdate::Insert(2, 3, 4),    // valid
            WeightedUpdate::SetWeight(2, 3, 7), // same edge twice: dropped
        ]);
        assert_eq!(stats.applied, 1);
        assert_eq!(idx.graph().weight(2, 3), Some(4));
    }
}
