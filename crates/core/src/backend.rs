//! The type-erased backend surface behind the `DistanceOracle` facade.
//!
//! The workspace grows three index families — [`BatchIndex`]
//! (undirected), [`DirectedBatchIndex`] and [`WeightedBatchIndex`] —
//! whose public methods historically mirrored each other call for
//! call. [`Backend`] states that contract *once*: a facade caller
//! picks a family at **runtime** (from the kind of graph it feeds the
//! builder), and everything downstream — queries, batched query plans,
//! the update session, reader handles — goes through `Box<dyn
//! Backend>` with no per-family code.
//!
//! The mutation side is normalized too: every family consumes the same
//! [`Edit`] list, committed as one batch. Unweighted families reject
//! weight-carrying edits with [`OracleError::WeightedEditsUnsupported`]
//! rather than silently dropping the weight.

use crate::directed::DirectedBatchIndex;
use crate::index::{BatchIndex, CompactionPolicy, IndexConfig};
use crate::persist::{self, CheckpointMeta, PersistError};
use crate::reader::SharedReader;
use crate::stats::UpdateStats;
use crate::weighted::WeightedBatchIndex;
use crate::whatif::WhatIfQuery;
use batchhl_common::{Dist, Vertex};
use batchhl_graph::weighted::{Weight, WeightedGraph, WeightedUpdate};
use batchhl_graph::{Batch, DynamicDiGraph, DynamicGraph};
use batchhl_hcl::{LabelError, LandmarkSelection};
use std::fmt;

/// Which index family a backend (or a graph source) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendFamily {
    /// Unweighted undirected graphs — [`BatchIndex`].
    Undirected,
    /// Unweighted directed graphs — [`DirectedBatchIndex`].
    Directed,
    /// Positively weighted undirected graphs — [`WeightedBatchIndex`].
    Weighted,
}

impl BackendFamily {
    pub fn as_str(self) -> &'static str {
        match self {
            BackendFamily::Undirected => "undirected",
            BackendFamily::Directed => "directed",
            BackendFamily::Weighted => "weighted",
        }
    }
}

impl fmt::Display for BackendFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A graph handed to the oracle builder. The variant decides the
/// backend family; the `From` impls let callers pass any of the three
/// graph types directly.
#[derive(Debug, Clone)]
pub enum GraphSource {
    Undirected(DynamicGraph),
    Directed(DynamicDiGraph),
    Weighted(WeightedGraph),
}

impl GraphSource {
    pub fn family(&self) -> BackendFamily {
        match self {
            GraphSource::Undirected(_) => BackendFamily::Undirected,
            GraphSource::Directed(_) => BackendFamily::Directed,
            GraphSource::Weighted(_) => BackendFamily::Weighted,
        }
    }

    pub fn num_vertices(&self) -> usize {
        match self {
            GraphSource::Undirected(g) => g.num_vertices(),
            GraphSource::Directed(g) => g.num_vertices(),
            GraphSource::Weighted(g) => g.num_vertices(),
        }
    }
}

impl From<DynamicGraph> for GraphSource {
    fn from(g: DynamicGraph) -> Self {
        GraphSource::Undirected(g)
    }
}

impl From<DynamicDiGraph> for GraphSource {
    fn from(g: DynamicDiGraph) -> Self {
        GraphSource::Directed(g)
    }
}

impl From<WeightedGraph> for GraphSource {
    fn from(g: WeightedGraph) -> Self {
        GraphSource::Weighted(g)
    }
}

/// One edit accumulated by an oracle update session. Directed backends
/// read `(a, b)` as the arc `a → b`; undirected backends as the edge
/// `{a, b}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edit {
    /// Add an edge/arc (unit weight on the weighted family).
    Insert(Vertex, Vertex),
    /// Add a weighted edge. Unweighted families accept `w == 1` and
    /// reject anything else.
    InsertWeighted(Vertex, Vertex, Weight),
    /// Remove an edge/arc.
    Remove(Vertex, Vertex),
    /// Change the weight of an existing edge (weighted family only).
    SetWeight(Vertex, Vertex, Weight),
}

/// Why an oracle operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The builder's declared family (`directed(..)` / `weighted(..)`)
    /// contradicts the graph source that was handed to `build`.
    SourceMismatch {
        declared: BackendFamily,
        source: BackendFamily,
    },
    /// A weight-carrying edit ([`Edit::SetWeight`], or
    /// [`Edit::InsertWeighted`] with weight ≠ 1) was committed to an
    /// unweighted backend.
    WeightedEditsUnsupported { family: BackendFamily },
    /// The labelling could not be constructed (invalid landmark set).
    Label(LabelError),
    /// The durability layer failed to make a commit durable (e.g. the
    /// write-ahead log could not be appended or synced). The batch was
    /// **not** applied. Carries the rendered [`crate::persist::PersistError`].
    Durability { reason: String },
    /// Batch admission refused the edit list before anything was logged
    /// or applied: `index` is the position of the first offending edit
    /// (see [`crate::admission::validate_batch`] for the rules). The
    /// oracle is untouched.
    InvalidBatch { index: usize, reason: String },
    /// A panic was caught while the batch was being applied. The batch
    /// was rolled back (readers keep the pre-batch generation, a WAL
    /// abort record cancels the logged batch) and the oracle's write
    /// path is poisoned until recovery.
    CommitPanicked { reason: String },
    /// The write path is unavailable after an earlier contained failure;
    /// reads still serve the last good generation. Clear with
    /// `Oracle::recover()` or by re-opening from disk.
    WritesPoisoned { reason: String },
    /// A deep integrity audit found the index inconsistent with the
    /// graph it claims to describe.
    Integrity { reason: String },
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::SourceMismatch { declared, source } => write!(
                f,
                "builder declared a {declared} oracle but the graph source is {source}"
            ),
            OracleError::WeightedEditsUnsupported { family } => write!(
                f,
                "weight-carrying edits are not supported by the {family} backend"
            ),
            OracleError::Label(e) => write!(f, "labelling construction failed: {e}"),
            OracleError::Durability { reason } => {
                write!(f, "commit could not be made durable: {reason}")
            }
            OracleError::InvalidBatch { index, reason } => {
                write!(f, "batch refused at edit {index}: {reason}")
            }
            OracleError::CommitPanicked { reason } => {
                write!(f, "commit panicked and was rolled back: {reason}")
            }
            OracleError::WritesPoisoned { reason } => {
                write!(f, "write path unavailable until recovery: {reason}")
            }
            OracleError::Integrity { reason } => {
                write!(f, "integrity audit failed: {reason}")
            }
        }
    }
}

impl std::error::Error for OracleError {}

impl From<LabelError> for OracleError {
    fn from(e: LabelError) -> Self {
        OracleError::Label(e)
    }
}

/// One batch-dynamic index family, type-erased for the
/// `DistanceOracle` facade.
///
/// Every method takes concrete types only (the trait is object-safe);
/// queries take `&mut self` because the owner answers against its
/// *working* snapshot with a reusable search workspace, while
/// [`Backend::reader`] hands out `&self`-querying [`BackendReader`]
/// handles for serving threads.
///
/// # Adding a fourth backend
///
/// A new family (say, a directed *weighted* index, or an approximate
/// sketch index) plugs in without touching the facade:
///
/// 1. Give the index a snapshot type and implement
///    [`crate::reader::SnapshotQuery`] for it — the three query-plan
///    methods (`snapshot_query_dist`, `snapshot_distances_from`,
///    `snapshot_top_k`) are the whole query surface; the generic
///    machinery (readers, grouped `query_many`, generation pinning)
///    is inherited.
/// 2. Implement `Backend` for the index type, mapping [`Edit`] lists
///    onto its native batch type in `commit_edits` (reject edit kinds
///    the family cannot express with a typed [`OracleError`] instead
///    of dropping them).
/// 3. Return a [`SharedReader`] over the index's `LabelStore` from
///    `reader` — `SharedReader<S>` already implements
///    [`BackendReader`] for any `SnapshotQuery` snapshot.
/// 4. Add a [`GraphSource`] variant (plus a `From` impl) and a match
///    arm in [`build_backend`]; the builder then reaches the new
///    family with no new facade API.
///
/// Invariants expected by the facade: `commit_edits` applies the whole
/// list as **one** batch per the index's configured algorithm
/// (atomicity of the published generation), queries answer against the
/// newest committed state, and `version` increases with every
/// published pass.
pub trait Backend: Send {
    /// Which family this backend is (useful for diagnostics).
    fn family(&self) -> BackendFamily;

    /// Number of vertices in the current working snapshot.
    fn num_vertices(&self) -> usize;

    /// Version of the newest published generation.
    fn version(&self) -> u64;

    /// Logical label entries across the index's labelling(s).
    fn label_entries(&self) -> usize;

    /// Logical labelling size in bytes (Table 4's metric).
    fn label_size_bytes(&self) -> usize;

    /// Exact distance; `None` when disconnected/unreachable or out of
    /// range. Directed backends answer `d(s → t)`.
    fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist>;

    /// Batched pair queries (order preserved; pairs sharing a source
    /// reuse one source plan).
    fn query_many(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>>;

    /// One-source-to-many-targets distances (one source plan + at most
    /// one sweep for the whole call).
    fn distances_from(&mut self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>>;

    /// The `k` vertices closest to `s` (excluding `s`), nondecreasing
    /// by distance.
    fn top_k_closest(&mut self, s: Vertex, k: usize) -> Vec<(Vertex, Dist)>;

    /// Out-neighbours of `v` in the current working snapshot (weights
    /// dropped on the weighted family; empty when out of range).
    fn neighbors(&self, v: Vertex) -> Vec<Vertex>;

    /// Degree of `v` (out-degree on directed backends; 0 out of range).
    fn degree(&self, v: Vertex) -> usize;

    /// Apply an accumulated edit list as **one** batch (normalization,
    /// search and repair per the configured algorithm) and publish the
    /// next generation.
    fn commit_edits(&mut self, edits: &[Edit]) -> Result<UpdateStats, OracleError>;

    /// A `Send + Sync` handle with the same query-plan surface, whose
    /// queries take `&self` (interior re-pinning; see
    /// [`SharedReader`]).
    fn reader(&self) -> Box<dyn BackendReader>;

    /// Tune the CSR compaction policy of published views.
    fn set_compaction(&mut self, policy: CompactionPolicy);

    /// Serialize this backend's family body (graph, labelling(s), and
    /// update configuration) for a `BHL2` checkpoint. Callers normally
    /// go through [`crate::persist::write_checkpoint`], which frames the
    /// body with the format header and CRC-32 trailer; the counterpart
    /// [`load_backend`] reads the framed form back.
    fn save(&self, out: &mut dyn std::io::Write) -> Result<(), PersistError>;

    /// Capture a rollback token for the *currently published*
    /// generation. Cheap: the token pins the published `Arc`, whose CSR
    /// base and label buffers are shared across generations.
    ///
    /// The facade captures a token before `commit_edits` and, if the
    /// commit fails or panics mid-way, hands it back to [`restore`] —
    /// which is why it is an opaque `Any` rather than a family-specific
    /// type (the trait must stay object-safe).
    ///
    /// [`restore`]: Backend::restore
    fn rollback_token(&self) -> Box<dyn std::any::Any + Send>;

    /// Restore the backend to the generation captured by a
    /// [`rollback_token`], discarding the (possibly half-applied)
    /// working state and republishing the captured content under a
    /// fresh version number. Errors only if `token` came from a
    /// different backend family.
    ///
    /// [`rollback_token`]: Backend::rollback_token
    fn restore(&mut self, token: Box<dyn std::any::Any + Send>) -> Result<(), OracleError>;

    /// Deep audit of the live index against ground truth:
    /// family-specific structural checks (the labelling must equal the
    /// minimal highway-cover labelling on the unweighted families) plus
    /// `samples` sampled single-source truth sweeps (BFS / Dijkstra)
    /// compared against the index's own answers. Expensive — intended
    /// for operators and tests, not the hot path.
    fn verify_integrity(&mut self, samples: usize) -> Result<(), OracleError>;
}

/// Deterministically sample `k` distinct source vertices for the
/// integrity audit's truth sweeps.
fn audit_sources(n: usize, k: usize) -> Vec<Vertex> {
    let mut order: Vec<Vertex> = (0..n as Vertex).collect();
    batchhl_common::rng::SplitMix64::new(0x5EED_AD17).shuffle(&mut order);
    order.truncate(k);
    order
}

/// Compare one source's truth vector against the index's answers.
fn audit_source<Q: FnMut(Vertex) -> Option<Dist>>(
    s: Vertex,
    truth: &[Dist],
    mut query: Q,
) -> Result<(), OracleError> {
    use batchhl_common::INF;
    for (t, &want) in truth.iter().enumerate() {
        let want = (want != INF).then_some(want);
        let got = query(t as Vertex);
        if got != want {
            return Err(OracleError::Integrity {
                reason: format!("query({s}, {t}) = {got:?}, ground truth says {want:?}"),
            });
        }
    }
    Ok(())
}

/// Deserialize a `BHL2` checkpoint into whichever backend family it
/// holds (the load hook paired with [`Backend::save`]). Also returns
/// the checkpoint's generation metadata — the WAL replay cursor.
pub fn load_backend<R: std::io::Read>(
    r: R,
) -> Result<(Box<dyn Backend>, CheckpointMeta), PersistError> {
    persist::read_checkpoint(r)
}

/// Check an edit list against a family *without* applying anything —
/// the same acceptance rule [`Backend::commit_edits`] enforces. The
/// durability layer calls this before a batch is logged to the
/// write-ahead log, so a batch that would be refused at commit is never
/// made durable (and therefore never replayed).
pub fn edits_supported(family: BackendFamily, edits: &[Edit]) -> Result<(), OracleError> {
    if family == BackendFamily::Weighted {
        return Ok(());
    }
    for &e in edits {
        match e {
            Edit::Insert(..) | Edit::Remove(..) | Edit::InsertWeighted(_, _, 1) => {}
            Edit::InsertWeighted(..) | Edit::SetWeight(..) => {
                return Err(OracleError::WeightedEditsUnsupported { family })
            }
        }
    }
    Ok(())
}

/// The `&self` query surface served to reading threads, type-erased.
/// Obtained from [`Backend::reader`]; clone freely (clones share the
/// underlying generation store and follow the same writer).
pub trait BackendReader: Send + Sync {
    /// Version of the generation the next query will pin.
    fn version(&self) -> u64;

    /// Exact distance on the freshest published generation.
    fn query(&self, s: Vertex, t: Vertex) -> Option<Dist>;

    /// Batched pair queries against one pinned generation.
    fn query_many(&self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>>;

    /// One-source-to-many-targets against one pinned generation.
    fn distances_from(&self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>>;

    /// The `k` closest vertices on the freshest published generation.
    fn top_k_closest(&self, s: Vertex, k: usize) -> Vec<(Vertex, Dist)>;

    /// A speculative session answering queries as if `edits` had been
    /// committed, built over one pinned generation — no generation
    /// bump, no WAL traffic (see [`crate::whatif`]). Errors on edits
    /// the backend family cannot express, mirroring `commit_edits`.
    fn what_if(&self, edits: &[Edit]) -> Result<Box<dyn WhatIfQuery>, OracleError>;

    /// Clone through the trait object.
    fn clone_reader(&self) -> Box<dyn BackendReader>;
}

impl<S> BackendReader for SharedReader<S>
where
    S: crate::whatif::SnapshotWhatIf + Send + Sync + 'static,
{
    fn version(&self) -> u64 {
        SharedReader::version(self)
    }

    fn query(&self, s: Vertex, t: Vertex) -> Option<Dist> {
        SharedReader::query(self, s, t)
    }

    fn query_many(&self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>> {
        SharedReader::query_many(self, pairs)
    }

    fn distances_from(&self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>> {
        SharedReader::distances_from(self, s, targets)
    }

    fn top_k_closest(&self, s: Vertex, k: usize) -> Vec<(Vertex, Dist)> {
        SharedReader::top_k_closest(self, s, k)
    }

    fn what_if(&self, edits: &[Edit]) -> Result<Box<dyn WhatIfQuery>, OracleError> {
        S::what_if_session(self.pin(), edits)
    }

    fn clone_reader(&self) -> Box<dyn BackendReader> {
        Box::new(self.clone())
    }
}

fn foreign_token(family: BackendFamily) -> OracleError {
    OracleError::Integrity {
        reason: format!("rollback token does not belong to the {family} backend"),
    }
}

/// Translate an edit list for the unweighted families; errors on
/// weight-carrying edits instead of dropping the weight. The
/// acceptance rule itself lives in [`edits_supported`] (shared with
/// the durability layer, which must refuse a batch *before* logging
/// it) — this function only adds the translation.
pub(crate) fn unweighted_batch(
    edits: &[Edit],
    family: BackendFamily,
) -> Result<Batch, OracleError> {
    edits_supported(family, edits)?;
    let mut batch = Batch::new();
    for &e in edits {
        match e {
            // `InsertWeighted` passed validation, so its weight is 1.
            Edit::Insert(a, b) | Edit::InsertWeighted(a, b, _) => batch.insert(a, b),
            Edit::Remove(a, b) => batch.delete(a, b),
            Edit::SetWeight(..) => unreachable!("rejected by edits_supported"),
        }
    }
    Ok(batch)
}

impl Backend for BatchIndex {
    fn family(&self) -> BackendFamily {
        BackendFamily::Undirected
    }

    fn num_vertices(&self) -> usize {
        BatchIndex::num_vertices(self)
    }

    fn version(&self) -> u64 {
        BatchIndex::version(self)
    }

    fn label_entries(&self) -> usize {
        self.labelling().size_entries()
    }

    fn label_size_bytes(&self) -> usize {
        self.labelling().size_bytes()
    }

    fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        BatchIndex::query(self, s, t)
    }

    fn query_many(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>> {
        BatchIndex::query_many(self, pairs)
    }

    fn distances_from(&mut self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>> {
        BatchIndex::distances_from(self, s, targets)
    }

    fn top_k_closest(&mut self, s: Vertex, k: usize) -> Vec<(Vertex, Dist)> {
        BatchIndex::top_k_closest(self, s, k)
    }

    fn neighbors(&self, v: Vertex) -> Vec<Vertex> {
        if (v as usize) < self.graph().num_vertices() {
            self.graph().neighbors(v).to_vec()
        } else {
            Vec::new()
        }
    }

    fn degree(&self, v: Vertex) -> usize {
        if (v as usize) < self.graph().num_vertices() {
            self.graph().degree(v)
        } else {
            0
        }
    }

    fn commit_edits(&mut self, edits: &[Edit]) -> Result<UpdateStats, OracleError> {
        let batch = unweighted_batch(edits, BackendFamily::Undirected)?;
        Ok(self.apply_batch(&batch))
    }

    fn reader(&self) -> Box<dyn BackendReader> {
        Box::new(self.shared_reader())
    }

    fn set_compaction(&mut self, policy: CompactionPolicy) {
        BatchIndex::set_compaction(self, policy);
    }

    fn save(&self, out: &mut dyn std::io::Write) -> Result<(), PersistError> {
        persist::save_undirected(self, out)
    }

    fn rollback_token(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.published())
    }

    fn restore(&mut self, token: Box<dyn std::any::Any + Send>) -> Result<(), OracleError> {
        let snap = token
            .downcast::<std::sync::Arc<batchhl_hcl::Versioned<crate::index::IndexSnapshot>>>()
            .map_err(|_| foreign_token(BackendFamily::Undirected))?;
        self.restore_generation(snap.value());
        Ok(())
    }

    fn verify_integrity(&mut self, samples: usize) -> Result<(), OracleError> {
        BatchIndex::verify(self).map_err(|reason| OracleError::Integrity { reason })?;
        for s in audit_sources(self.num_vertices(), samples) {
            let truth = batchhl_graph::bfs::bfs_distances(self.graph(), s);
            audit_source(s, &truth, |t| BatchIndex::query(self, s, t))?;
        }
        Ok(())
    }
}

impl Backend for DirectedBatchIndex {
    fn family(&self) -> BackendFamily {
        BackendFamily::Directed
    }

    fn num_vertices(&self) -> usize {
        DirectedBatchIndex::num_vertices(self)
    }

    fn version(&self) -> u64 {
        DirectedBatchIndex::version(self)
    }

    fn label_entries(&self) -> usize {
        self.forward_labelling().size_entries() + self.backward_labelling().size_entries()
    }

    fn label_size_bytes(&self) -> usize {
        self.size_bytes()
    }

    fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        DirectedBatchIndex::query(self, s, t)
    }

    fn query_many(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>> {
        DirectedBatchIndex::query_many(self, pairs)
    }

    fn distances_from(&mut self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>> {
        DirectedBatchIndex::distances_from(self, s, targets)
    }

    fn top_k_closest(&mut self, s: Vertex, k: usize) -> Vec<(Vertex, Dist)> {
        DirectedBatchIndex::top_k_closest(self, s, k)
    }

    fn neighbors(&self, v: Vertex) -> Vec<Vertex> {
        if (v as usize) < self.graph().num_vertices() {
            self.graph().out_neighbors(v).to_vec()
        } else {
            Vec::new()
        }
    }

    fn degree(&self, v: Vertex) -> usize {
        if (v as usize) < self.graph().num_vertices() {
            self.graph().out_neighbors(v).len()
        } else {
            0
        }
    }

    fn commit_edits(&mut self, edits: &[Edit]) -> Result<UpdateStats, OracleError> {
        let batch = unweighted_batch(edits, BackendFamily::Directed)?;
        Ok(self.apply_batch(&batch))
    }

    fn reader(&self) -> Box<dyn BackendReader> {
        Box::new(self.shared_reader())
    }

    fn set_compaction(&mut self, policy: CompactionPolicy) {
        DirectedBatchIndex::set_compaction(self, policy);
    }

    fn save(&self, out: &mut dyn std::io::Write) -> Result<(), PersistError> {
        persist::save_directed(self, out)
    }

    fn rollback_token(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.published())
    }

    fn restore(&mut self, token: Box<dyn std::any::Any + Send>) -> Result<(), OracleError> {
        let snap = token
            .downcast::<std::sync::Arc<batchhl_hcl::Versioned<crate::directed::DirectedSnapshot>>>()
            .map_err(|_| foreign_token(BackendFamily::Directed))?;
        self.restore_generation(snap.value());
        Ok(())
    }

    fn verify_integrity(&mut self, samples: usize) -> Result<(), OracleError> {
        use batchhl_graph::Reversed;
        batchhl_hcl::oracle::check_minimal(self.graph(), self.forward_labelling()).map_err(
            |reason| OracleError::Integrity {
                reason: format!("forward labelling: {reason}"),
            },
        )?;
        batchhl_hcl::oracle::check_minimal(&Reversed(self.graph()), self.backward_labelling())
            .map_err(|reason| OracleError::Integrity {
                reason: format!("backward labelling: {reason}"),
            })?;
        for s in audit_sources(self.num_vertices(), samples) {
            let truth = batchhl_graph::bfs::bfs_distances(self.graph(), s);
            audit_source(s, &truth, |t| DirectedBatchIndex::query(self, s, t))?;
        }
        Ok(())
    }
}

impl Backend for WeightedBatchIndex {
    fn family(&self) -> BackendFamily {
        BackendFamily::Weighted
    }

    fn num_vertices(&self) -> usize {
        WeightedBatchIndex::num_vertices(self)
    }

    fn version(&self) -> u64 {
        WeightedBatchIndex::version(self)
    }

    fn label_entries(&self) -> usize {
        self.labelling().size_entries()
    }

    fn label_size_bytes(&self) -> usize {
        self.labelling().size_bytes()
    }

    fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        WeightedBatchIndex::query(self, s, t)
    }

    fn query_many(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>> {
        WeightedBatchIndex::query_many(self, pairs)
    }

    fn distances_from(&mut self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>> {
        WeightedBatchIndex::distances_from(self, s, targets)
    }

    fn top_k_closest(&mut self, s: Vertex, k: usize) -> Vec<(Vertex, Dist)> {
        WeightedBatchIndex::top_k_closest(self, s, k)
    }

    fn neighbors(&self, v: Vertex) -> Vec<Vertex> {
        if (v as usize) < self.graph().num_vertices() {
            self.graph().neighbors(v).iter().map(|&(w, _)| w).collect()
        } else {
            Vec::new()
        }
    }

    fn degree(&self, v: Vertex) -> usize {
        if (v as usize) < self.graph().num_vertices() {
            self.graph().degree(v)
        } else {
            0
        }
    }

    fn commit_edits(&mut self, edits: &[Edit]) -> Result<UpdateStats, OracleError> {
        let updates: Vec<WeightedUpdate> = edits
            .iter()
            .map(|&e| match e {
                Edit::Insert(a, b) => WeightedUpdate::Insert(a, b, 1),
                Edit::InsertWeighted(a, b, w) => WeightedUpdate::Insert(a, b, w),
                Edit::Remove(a, b) => WeightedUpdate::Delete(a, b),
                Edit::SetWeight(a, b, w) => WeightedUpdate::SetWeight(a, b, w),
            })
            .collect();
        Ok(self.apply_batch(&updates))
    }

    fn reader(&self) -> Box<dyn BackendReader> {
        Box::new(self.shared_reader())
    }

    fn set_compaction(&mut self, policy: CompactionPolicy) {
        WeightedBatchIndex::set_compaction(self, policy);
    }

    fn save(&self, out: &mut dyn std::io::Write) -> Result<(), PersistError> {
        persist::save_weighted(self, out)
    }

    fn rollback_token(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.published())
    }

    fn restore(&mut self, token: Box<dyn std::any::Any + Send>) -> Result<(), OracleError> {
        let snap = token
            .downcast::<std::sync::Arc<batchhl_hcl::Versioned<crate::weighted::WeightedSnapshot>>>()
            .map_err(|_| foreign_token(BackendFamily::Weighted))?;
        self.restore_generation(snap.value());
        Ok(())
    }

    fn verify_integrity(&mut self, samples: usize) -> Result<(), OracleError> {
        // No minimality audit on the weighted family (the highway-cover
        // minimality characterization is defined for unweighted
        // labellings); sampled Dijkstra truth covers the query surface.
        for s in audit_sources(self.num_vertices(), samples) {
            let truth = batchhl_graph::weighted::dijkstra(self.graph(), s);
            audit_source(s, &truth, |t| WeightedBatchIndex::query(self, s, t))?;
        }
        Ok(())
    }
}

/// Validate a materialized landmark list the way `Labelling::empty`
/// will, without allocating label rows — so the facade surfaces a
/// typed [`OracleError::Label`] instead of the index constructors'
/// panic on a bad user-supplied [`Explicit`] list.
///
/// [`Explicit`]: batchhl_hcl::LandmarkSelection::Explicit
fn validate_landmarks(landmarks: &[Vertex], n: usize) -> Result<(), LabelError> {
    if landmarks.len() >= u16::MAX as usize {
        return Err(LabelError::TooManyLandmarks {
            count: landmarks.len(),
            max: u16::MAX as usize - 1,
        });
    }
    let mut sorted = landmarks.to_vec();
    sorted.sort_unstable();
    for pair in sorted.windows(2) {
        if pair[0] == pair[1] {
            return Err(LabelError::DuplicateLandmark { landmark: pair[0] });
        }
    }
    if let Some(&last) = sorted.last() {
        if (last as usize) >= n {
            return Err(LabelError::LandmarkOutOfBounds {
                landmark: last,
                num_vertices: n,
            });
        }
    }
    Ok(())
}

/// Construct the backend a graph source calls for. The facade's
/// `Oracle::builder()` is the intended entry point; this is the family
/// dispatch it bottoms out in.
pub fn build_backend(
    source: GraphSource,
    config: IndexConfig,
) -> Result<Box<dyn Backend>, OracleError> {
    match source {
        GraphSource::Undirected(g) => {
            let landmarks = config.selection.select(&g);
            validate_landmarks(&landmarks, g.num_vertices())?;
            // Hand the materialized list back so construction does not
            // re-run the selection.
            let config = IndexConfig {
                selection: LandmarkSelection::Explicit(landmarks),
                ..config
            };
            Ok(Box::new(BatchIndex::build(g, config)))
        }
        GraphSource::Directed(g) => {
            let landmarks = config.selection.select_directed(&g);
            validate_landmarks(&landmarks, g.num_vertices())?;
            let config = IndexConfig {
                selection: LandmarkSelection::Explicit(landmarks),
                ..config
            };
            Ok(Box::new(DirectedBatchIndex::build(g, config)))
        }
        GraphSource::Weighted(g) => {
            let landmarks = config.selection.select_weighted(&g);
            let index = WeightedBatchIndex::build_with_landmarks(g, landmarks)?
                .with_threads(config.threads)
                .with_compaction(config.compaction);
            Ok(Box::new(index))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Algorithm;
    use batchhl_graph::generators::path;
    use batchhl_hcl::LandmarkSelection;

    fn small_config() -> IndexConfig {
        IndexConfig {
            selection: LandmarkSelection::TopDegree(2),
            algorithm: Algorithm::BhlPlus,
            ..IndexConfig::default()
        }
    }

    fn backends() -> Vec<Box<dyn Backend>> {
        let mut wg = WeightedGraph::new(6);
        for v in 0..5 {
            wg.insert_edge(v, v + 1, 1);
        }
        let mut dg = DynamicDiGraph::new(6);
        for v in 0..5 {
            dg.insert_edge(v, v + 1);
            dg.insert_edge(v + 1, v);
        }
        vec![
            build_backend(GraphSource::Undirected(path(6)), small_config()).unwrap(),
            build_backend(GraphSource::Directed(dg), small_config()).unwrap(),
            build_backend(GraphSource::Weighted(wg), small_config()).unwrap(),
        ]
    }

    #[test]
    fn all_families_serve_the_same_surface() {
        for mut b in backends() {
            let family = b.family();
            assert_eq!(b.num_vertices(), 6, "{family}");
            assert_eq!(b.query(0, 5), Some(5), "{family}");
            assert_eq!(b.query(0, 17), None, "{family}: out of range");
            assert_eq!(
                b.query_many(&[(0, 3), (0, 4), (2, 2)]),
                vec![Some(3), Some(4), Some(0)],
                "{family}"
            );
            assert_eq!(
                b.distances_from(1, &[0, 5, 9]),
                vec![Some(1), Some(4), None],
                "{family}"
            );
            assert_eq!(b.top_k_closest(0, 2), vec![(1, 1), (2, 2)], "{family}");
            assert_eq!(b.neighbors(1), vec![0, 2], "{family}");
            assert_eq!(b.degree(0), 1, "{family}");
            assert!(b.label_entries() > 0, "{family}");

            // Unified mutation: one commit, same shape everywhere.
            let stats = b
                .commit_edits(&[Edit::Insert(0, 5), Edit::Remove(2, 3)])
                .unwrap();
            assert_eq!(stats.applied, 2, "{family}");
            assert_eq!(b.query(0, 5), Some(1), "{family}");
            assert_eq!(b.query(0, 3), Some(3), "{family}: via the new edge");
            assert_eq!(b.version(), 1, "{family}");

            // Readers follow publications and share the plan surface.
            let reader = b.reader();
            assert_eq!(reader.query(0, 5), Some(1), "{family}");
            assert_eq!(
                reader.distances_from(0, &[3, 5]),
                vec![Some(3), Some(1)],
                "{family}"
            );
            assert_eq!(reader.version(), 1, "{family}");
            let clone = reader.clone_reader();
            assert_eq!(clone.query_many(&[(0, 3)]), vec![Some(3)], "{family}");
        }
    }

    #[test]
    fn invalid_explicit_landmarks_are_typed_errors_not_panics() {
        for source in [
            GraphSource::Undirected(path(4)),
            GraphSource::Directed(DynamicDiGraph::from_edges(4, &[(0, 1)])),
            GraphSource::Weighted(WeightedGraph::from_edges(4, &[(0, 1, 2)])),
        ] {
            let family = source.family();
            let dup = IndexConfig {
                selection: LandmarkSelection::Explicit(vec![1, 1]),
                ..IndexConfig::default()
            };
            assert_eq!(
                build_backend(source.clone(), dup).err(),
                Some(OracleError::Label(LabelError::DuplicateLandmark {
                    landmark: 1
                })),
                "{family}"
            );
            let oob = IndexConfig {
                selection: LandmarkSelection::Explicit(vec![0, 9]),
                ..IndexConfig::default()
            };
            assert!(
                matches!(
                    build_backend(source.clone(), oob),
                    Err(OracleError::Label(LabelError::LandmarkOutOfBounds { .. }))
                ),
                "{family}"
            );
        }
    }

    #[test]
    fn weight_edits_are_typed_errors_on_unweighted_families() {
        let mut b = build_backend(GraphSource::Undirected(path(4)), small_config()).unwrap();
        assert_eq!(
            b.commit_edits(&[Edit::SetWeight(0, 1, 3)]),
            Err(OracleError::WeightedEditsUnsupported {
                family: BackendFamily::Undirected
            })
        );
        // Unit-weight inserts are accepted (they are exact).
        assert!(b.commit_edits(&[Edit::InsertWeighted(0, 3, 1)]).is_ok());
        assert_eq!(b.query(0, 3), Some(1));
        // The weighted family accepts all edit kinds.
        let mut wg = WeightedGraph::new(4);
        wg.insert_edge(0, 1, 4);
        wg.insert_edge(1, 2, 1);
        let mut w = build_backend(GraphSource::Weighted(wg), small_config()).unwrap();
        w.commit_edits(&[Edit::SetWeight(0, 1, 2), Edit::InsertWeighted(2, 3, 5)])
            .unwrap();
        assert_eq!(w.query(0, 2), Some(3));
        assert_eq!(w.query(0, 3), Some(8));
    }
}
