//! The public batch-dynamic index (Algorithm 1 and its variants).
//!
//! [`BatchIndex`] separates the two roles a production index serves:
//!
//! * **Writer** — the index owns a mutable working snapshot (graph +
//!   labelling `Γ′`) that [`BatchIndex::apply_batch`] repairs in place,
//!   reading the immutable published generation `Γ` as the
//!   old-labelling oracle of Algorithm 1.
//! * **Readers** — [`BatchIndex::reader`] hands out cheap
//!   `Send + Sync` [`Reader`] handles that answer queries against the
//!   published generation without locks, even while a batch is being
//!   applied on another thread.
//!
//! After repair the working snapshot is published with a single atomic
//! swap and the previous generation's buffers are recycled (only the
//! affected entries are re-synced), so the steady-state cost per batch
//! is `O(affected + batch)`, not `O(|R|·|V|)`.
//!
//! The per-landmark search→repair loop itself lives in
//! [`crate::engine`], shared with the directed and weighted variants;
//! `threads > 1` in the config runs it with landmark-level parallelism
//! (BHLₚ, Section 6).

use crate::engine::{self, BfsKernel};
use crate::reader::{Reader, SharedReader, SnapshotQuery};
use crate::stats::UpdateStats;
use crate::workspace::UpdateWorkspace;
use batchhl_common::{Dist, Vertex, INF};
use batchhl_graph::{Batch, CsrDelta, DynamicGraph, VertexRemap};
use batchhl_hcl::{
    build_labelling_parallel, LabelStore, Labelling, LandmarkSelection, QueryEngine, Versioned,
};
use std::sync::Arc;
use std::time::Instant;

pub use batchhl_graph::csr::CompactionPolicy;

/// Which published variant performs the update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// BHL: basic batch search (Algorithm 2) + batch repair.
    Bhl,
    /// BHL⁺: improved batch search (Algorithm 3) + batch repair.
    BhlPlus,
    /// BHLₛ: deletions and insertions processed as two sequential
    /// sub-batches (each with the basic search).
    BhlS,
    /// UHL: every update processed alone (single-update setting).
    Uhl,
    /// UHL⁺: single-update setting with the improved search.
    UhlPlus,
}

impl Algorithm {
    pub(crate) fn improved_search(self) -> bool {
        matches!(self, Algorithm::BhlPlus | Algorithm::UhlPlus)
    }

    /// Display name matching the paper's tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            Algorithm::Bhl => "BHL",
            Algorithm::BhlPlus => "BHL+",
            Algorithm::BhlS => "BHLs",
            Algorithm::Uhl => "UHL",
            Algorithm::UhlPlus => "UHL+",
        }
    }
}

/// Index configuration.
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// How to choose the landmark set (paper default: 20 top-degree).
    pub selection: LandmarkSelection,
    /// Update variant.
    pub algorithm: Algorithm,
    /// Worker threads for construction and updates. `> 1` turns BHL⁺
    /// into the paper's BHLₚ.
    pub threads: usize,
    /// When published CSR views compact their delta overlay — one
    /// policy shared by all index families (undirected, directed,
    /// weighted).
    pub compaction: CompactionPolicy,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            selection: LandmarkSelection::paper_default(),
            algorithm: Algorithm::BhlPlus,
            threads: 1,
            compaction: CompactionPolicy::default(),
        }
    }
}

impl IndexConfig {
    /// The paper's BHLₚ configuration.
    pub fn parallel(threads: usize) -> Self {
        IndexConfig {
            threads,
            ..Default::default()
        }
    }
}

/// One immutable generation of the undirected index: the graph, the
/// labelling that describes it, and the frozen CSR view of the graph
/// that queries and landmark searches traverse. Readers always see a
/// whole snapshot — never a labelling paired with a graph from a
/// different generation.
///
/// `graph` is the writer's mutation substrate (and the replay source
/// for buffer recycling); `view` is the publication format: a flat CSR
/// base shared across generations plus the delta overlay of the
/// batches since the last compaction (see [`batchhl_graph::csr`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSnapshot {
    pub graph: DynamicGraph,
    pub lab: Labelling,
    pub view: CsrDelta,
}

impl IndexSnapshot {
    fn new(graph: DynamicGraph, lab: Labelling) -> Self {
        let view = CsrDelta::from_adjacency(&graph);
        IndexSnapshot { graph, lab, view }
    }

    fn placeholder() -> Self {
        IndexSnapshot::new(
            DynamicGraph::new(0),
            Labelling::empty(0, Vec::new()).expect("empty labelling is valid"),
        )
    }
}

/// What one pass changed — enough to replay it onto a recycled buffer.
#[derive(Debug)]
struct PassLog {
    norm: Batch,
    /// Distinct endpoints of `norm` — the vertices the CSR overlay
    /// must re-freeze after replaying the batch.
    touched: Vec<Vertex>,
    affected: engine::AffectedLists,
}

/// Batch-dynamic distance index over an undirected graph.
///
/// Cloning copies the working snapshot into an independent index with
/// its own (single-generation) store; reader handles of the original
/// keep following the original.
pub struct BatchIndex {
    /// The writer's working snapshot: the current graph and `Γ′`.
    work: IndexSnapshot,
    /// Published generations; outside `apply_batch` the newest one has
    /// the same content as `work`.
    store: LabelStore<IndexSnapshot>,
    /// Retired-buffer recycling (see [`engine::Recycler`]).
    recycler: engine::Recycler<IndexSnapshot, PassLog>,
    /// Holds the CSR compaction policy too — it is re-applied to the
    /// view every pass, because publish/recycle swaps the working
    /// snapshot for a buffer that predates any setter call.
    config: IndexConfig,
    ws: UpdateWorkspace,
    engine: QueryEngine,
}

impl Clone for BatchIndex {
    fn clone(&self) -> Self {
        let n = self.work.graph.num_vertices();
        BatchIndex {
            work: self.work.clone(),
            store: LabelStore::new(self.work.clone()),
            recycler: engine::Recycler::new(),
            config: self.config.clone(),
            ws: UpdateWorkspace::new(n),
            engine: QueryEngine::new(n),
        }
    }
}

impl BatchIndex {
    /// Build the index: select landmarks, construct the minimal
    /// labelling (`O(|R|·(|V|+|E|))`). The graph is frozen into a CSR
    /// snapshot first, so every per-landmark construction BFS runs over
    /// flat arrays.
    pub fn build(graph: DynamicGraph, config: IndexConfig) -> Self {
        let landmarks = config.selection.select(&graph);
        let view = CsrDelta::from_adjacency(&graph);
        let lab = build_labelling_parallel(&view, landmarks, config.threads.max(1))
            .expect("selected landmarks are valid");
        Self::assemble_snapshot(IndexSnapshot { graph, lab, view }, config)
    }

    /// Build over a degree-descending relabeling of `graph`: vertices
    /// are renumbered so hubs get the smallest ids, packing the hottest
    /// neighbourhoods into the front of the CSR arrays. The returned
    /// [`VertexRemap`] translates between original and index ids
    /// (`remap.to_new` for query endpoints, `remap.map_batch` for
    /// updates).
    pub fn new_reordered(graph: DynamicGraph, config: IndexConfig) -> (Self, VertexRemap) {
        let remap = VertexRemap::degree_descending(&graph);
        let relabeled = graph.relabeled(&remap);
        (Self::build(relabeled, config), remap)
    }

    /// Convenience: build with the default configuration.
    pub fn with_defaults(graph: DynamicGraph) -> Self {
        Self::build(graph, IndexConfig::default())
    }

    /// Assemble from pre-validated parts (see `snapshot` module).
    pub(crate) fn assemble(graph: DynamicGraph, lab: Labelling, config: IndexConfig) -> Self {
        Self::assemble_snapshot(IndexSnapshot::new(graph, lab), config)
    }

    fn assemble_snapshot(work: IndexSnapshot, config: IndexConfig) -> Self {
        let n = work.graph.num_vertices();
        BatchIndex {
            store: LabelStore::new(work.clone()),
            work,
            recycler: engine::Recycler::new(),
            config,
            ws: UpdateWorkspace::new(n),
            engine: QueryEngine::new(n),
        }
    }

    /// Tune when the published CSR view compacts its delta overlay into
    /// a fresh base snapshot (see [`CompactionPolicy`]; normally set up
    /// front through [`IndexConfig::compaction`]).
    pub fn set_compaction(&mut self, policy: CompactionPolicy) {
        self.config.compaction = policy;
        self.work.view.set_policy(policy);
    }

    #[deprecated(note = "use `set_compaction(CompactionPolicy { fraction, .. })` instead")]
    pub fn set_compaction_fraction(&mut self, fraction: f32) {
        let min_entries = self.config.compaction.min_entries;
        self.set_compaction(CompactionPolicy::new(fraction, min_entries));
    }

    #[deprecated(note = "use `set_compaction(CompactionPolicy::new(fraction, min_entries))`")]
    pub fn set_compaction_policy(&mut self, fraction: f32, min_entries: usize) {
        self.set_compaction(CompactionPolicy::new(fraction, min_entries));
    }

    pub fn graph(&self) -> &DynamicGraph {
        &self.work.graph
    }

    pub fn labelling(&self) -> &Labelling {
        &self.work.lab
    }

    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    pub fn num_vertices(&self) -> usize {
        self.work.graph.num_vertices()
    }

    /// The most recently published generation (what readers see).
    pub fn published(&self) -> Arc<Versioned<IndexSnapshot>> {
        self.store.snapshot()
    }

    /// The version number of the published generation. Bumps once per
    /// search→repair pass (so once per batch for BHL/BHL⁺, once per
    /// sub-batch for BHLₛ, once per update for UHL/UHL⁺).
    pub fn version(&self) -> u64 {
        self.store.version()
    }

    /// A `Send + Sync` query handle over the published generations.
    ///
    /// Readers are independent of the index value: they can be moved to
    /// other threads and keep answering (against the freshest published
    /// generation) while [`BatchIndex::apply_batch`] runs.
    pub fn reader(&self) -> Reader {
        Reader::new(self.store.reader())
    }

    /// A `Send + Sync` query handle whose queries take `&self` (shared
    /// across serving threads without cloning): the handle re-pins the
    /// freshest generation internally. See [`SharedReader`].
    pub fn shared_reader(&self) -> SharedReader<IndexSnapshot> {
        SharedReader::new(self.store.clone())
    }

    /// Exact distance, `None` when disconnected (Section 4: labelling
    /// upper bound + bounded bidirectional BFS on `G[V\R]`, run over
    /// the CSR view). Answers against the *working* snapshot — the
    /// owner always sees its own latest batch.
    pub fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        let n = self.work.view.num_vertices();
        if (s as usize) >= n || (t as usize) >= n {
            return None;
        }
        self.engine.query(&self.work.lab, &self.work.view, s, t)
    }

    /// As [`BatchIndex::query`], returning `INF` for disconnected pairs.
    pub fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        self.engine
            .query_dist(&self.work.lab, &self.work.view, s, t)
    }

    /// Batched pair queries: groups the pairs by source and reuses the
    /// per-source label plan across each group (see
    /// [`batchhl_hcl::SourcePlan`]). Order of results matches `pairs`.
    pub fn query_many(&mut self, pairs: &[(Vertex, Vertex)]) -> Vec<Option<Dist>> {
        crate::reader::query_many_on(&self.work, &mut self.engine, pairs)
    }

    /// One-source-to-many-targets distances (the batched fast path:
    /// one generation, one source plan, one sweep for large target
    /// sets). `None` marks disconnected or out-of-range endpoints.
    pub fn distances_from(&mut self, s: Vertex, targets: &[Vertex]) -> Vec<Option<Dist>> {
        self.work
            .snapshot_distances_from(&mut self.engine, s, targets)
            .into_iter()
            .map(|d| (d != INF).then_some(d))
            .collect()
    }

    /// The `k` vertices closest to `s` (excluding `s`), nondecreasing
    /// by distance.
    pub fn top_k_closest(&mut self, s: Vertex, k: usize) -> Vec<(Vertex, Dist)> {
        self.work.snapshot_top_k(&mut self.engine, s, k)
    }

    /// Apply a batch of updates and repair the labelling (Algorithm 1,
    /// dispatched per the configured [`Algorithm`]).
    pub fn apply_batch(&mut self, batch: &Batch) -> UpdateStats {
        let start = Instant::now();
        let mut stats = match self.config.algorithm {
            Algorithm::Bhl | Algorithm::BhlPlus => {
                let norm = batch.normalize(&self.work.graph);
                self.run_pass(&norm)
            }
            Algorithm::BhlS => {
                let norm = batch.normalize(&self.work.graph);
                let (deletions, insertions) = norm.split();
                let mut s = self.run_pass(&deletions);
                s.absorb(self.run_pass(&insertions));
                s
            }
            Algorithm::Uhl | Algorithm::UhlPlus => {
                let mut s = UpdateStats::default();
                for &u in batch.updates() {
                    let single = Batch::from_updates(vec![u]).normalize(&self.work.graph);
                    s.absorb(self.run_pass(&single));
                }
                s
            }
        };
        stats.elapsed = start.elapsed();
        stats
    }

    /// Rebuild the labelling from scratch (used by tests and the
    /// construction benchmarks) and publish it as a new generation.
    pub fn rebuild(&mut self) {
        let landmarks = self.work.lab.landmarks().to_vec();
        self.work.lab =
            build_labelling_parallel(&self.work.view, landmarks, self.config.threads.max(1))
                .expect("existing landmarks are valid");
        self.store.publish(self.work.clone());
        // Retained retired buffers predate the rebuild; replaying pass
        // logs over them would skip the rebuild's changes.
        self.recycler.clear();
    }

    /// Reset the writer to the generation captured in `snap` and
    /// republish it, so readers re-pin content identical to `snap`
    /// under a fresh version number. Used by the facade to roll back a
    /// batch whose application failed mid-way: the working snapshot may
    /// be arbitrarily damaged (even mid-panic), but `snap` is immutable
    /// and shares its CSR base + label buffers behind `Arc`s, so the
    /// restore is a cheap clone. Workspaces are rebuilt from scratch —
    /// they may hold state from the aborted pass.
    pub(crate) fn restore_generation(&mut self, snap: &IndexSnapshot) {
        self.work = snap.clone();
        self.work.view.set_policy(self.config.compaction);
        self.store.publish(self.work.clone());
        self.recycler.clear();
        let n = self.work.graph.num_vertices();
        self.ws = UpdateWorkspace::new(n);
        self.engine = QueryEngine::new(n);
    }

    /// One search+repair pass over a normalized, conflict-free batch:
    /// mutate the working graph, repair `Γ′` against the published `Γ`,
    /// publish, and recycle the previous generation's buffers.
    fn run_pass(&mut self, norm: &Batch) -> UpdateStats {
        let mut stats = UpdateStats {
            passes: 1,
            ..Default::default()
        };
        if norm.is_empty() {
            return stats;
        }
        let old = self.store.snapshot();

        stats.applied = self.work.graph.apply_batch(norm);
        debug_assert_eq!(stats.applied, norm.len(), "normalized batches are valid");
        stats.insertions = norm.num_insertions();
        stats.deletions = norm.num_deletions();

        let n = self.work.graph.num_vertices();
        self.work.lab.ensure_vertices(n);
        self.ws.grow(n);

        // Freeze the batch's endpoints into the CSR view (and compact
        // when the overlay crossed its threshold): everything below —
        // landmark searches, repair relaxation, owner and reader
        // queries — traverses this view, never the Vec<Vec<_>> graph.
        let touched = norm.touched_vertices();
        self.work.view.set_policy(self.config.compaction);
        let graph = &self.work.graph;
        self.work
            .view
            .absorb(n, touched.iter().copied(), |v| graph.neighbors(v));

        let mut grown = None;
        let oracle = engine::oracle_for(&old.lab, n, &mut grown);

        let kernel = BfsKernel {
            improved: self.config.algorithm.improved_search(),
            directed: false,
        };
        let affected = engine::run_landmarks(
            &kernel,
            oracle,
            &self.work.view,
            norm.updates(),
            &mut self.work.lab,
            self.config.threads,
            &mut self.ws,
        );
        stats.affected_per_landmark = affected.iter().map(Vec::len).collect();
        stats.affected_total = stats.affected_per_landmark.iter().sum();

        // Publish Γ′ and rebuild the working buffer from a retired
        // generation: replay the logged batch(es) on its graph, re-
        // freeze the replayed endpoints into its CSR view, and copy
        // back only the entries the logged passes repaired.
        engine::publish_pass(
            &self.store,
            &mut self.recycler,
            &mut self.work,
            IndexSnapshot::placeholder(),
            old,
            PassLog {
                norm: norm.clone(),
                touched,
                affected,
            },
            |buf, fresh, log| {
                buf.graph.apply_batch(&log.norm);
                let graph = &buf.graph;
                buf.view
                    .absorb(graph.num_vertices(), log.touched.iter().copied(), |v| {
                        graph.neighbors(v)
                    });
                engine::sync_affected(&fresh.lab, &mut buf.lab, &log.affected);
            },
        );
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_graph::generators::{barabasi_albert, erdos_renyi_gnm, path};
    use batchhl_hcl::oracle;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn config(algorithm: Algorithm, k: usize) -> IndexConfig {
        IndexConfig {
            selection: LandmarkSelection::TopDegree(k),
            algorithm,
            threads: 1,
            ..IndexConfig::default()
        }
    }

    fn random_batch(g: &DynamicGraph, size: usize, rng: &mut StdRng) -> Batch {
        let n = g.num_vertices() as Vertex;
        let mut b = Batch::new();
        for _ in 0..size {
            let a = rng.gen_range(0..n);
            let c = rng.gen_range(0..n);
            if a == c {
                continue;
            }
            if g.has_edge(a, c) {
                b.delete(a, c);
            } else {
                b.insert(a, c);
            }
        }
        b
    }

    /// Core invariant: after any update sequence, the maintained
    /// labelling equals the from-scratch minimal labelling (unique!).
    fn assert_tracks_rebuild(algorithm: Algorithm, seed: u64) {
        let g0 = erdos_renyi_gnm(70, 150, seed);
        let mut index = BatchIndex::build(g0, config(algorithm, 5));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for round in 0..6 {
            let batch = random_batch(index.graph(), 12, &mut rng);
            index.apply_batch(&batch);
            oracle::check_minimal(index.graph(), index.labelling())
                .unwrap_or_else(|e| panic!("{algorithm:?} seed {seed} round {round}: {e}"));
            let published = index.published();
            assert_eq!(
                &published.lab,
                index.labelling(),
                "published generation out of sync after round {round}"
            );
            assert_eq!(&published.graph, index.graph());
        }
    }

    #[test]
    fn bhl_tracks_rebuild() {
        for seed in 0..6 {
            assert_tracks_rebuild(Algorithm::Bhl, seed);
        }
    }

    #[test]
    fn bhl_plus_tracks_rebuild() {
        for seed in 0..6 {
            assert_tracks_rebuild(Algorithm::BhlPlus, seed);
        }
    }

    #[test]
    fn bhl_s_tracks_rebuild() {
        for seed in 0..4 {
            assert_tracks_rebuild(Algorithm::BhlS, seed);
        }
    }

    #[test]
    fn uhl_variants_track_rebuild() {
        assert_tracks_rebuild(Algorithm::Uhl, 1);
        assert_tracks_rebuild(Algorithm::UhlPlus, 2);
    }

    #[test]
    fn queries_stay_exact_under_updates() {
        let g0 = barabasi_albert(120, 3, 3);
        let mut index = BatchIndex::build(g0, config(Algorithm::BhlPlus, 6));
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..4 {
            let batch = random_batch(index.graph(), 15, &mut rng);
            index.apply_batch(&batch);
            let truth = oracle::all_pairs_bfs(index.graph());
            for s in (0..120u32).step_by(5) {
                for t in (0..120u32).step_by(7) {
                    assert_eq!(
                        index.query_dist(s, t),
                        truth[s as usize][t as usize],
                        "query({s},{t})"
                    );
                }
            }
        }
    }

    #[test]
    fn all_variants_converge_to_same_labelling() {
        let g0 = erdos_renyi_gnm(80, 180, 5);
        let mut rng = StdRng::seed_from_u64(7);
        let batch = random_batch(&g0, 25, &mut rng);
        let mut labellings = Vec::new();
        for alg in [
            Algorithm::Bhl,
            Algorithm::BhlPlus,
            Algorithm::BhlS,
            Algorithm::Uhl,
            Algorithm::UhlPlus,
        ] {
            let mut index = BatchIndex::build(g0.clone(), config(alg, 6));
            index.apply_batch(&batch);
            labellings.push((alg, index.work.lab));
        }
        for w in labellings.windows(2) {
            assert_eq!(w[0].1, w[1].1, "{:?} and {:?} disagree", w[0].0, w[1].0);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let g0 = barabasi_albert(150, 3, 8);
        let mut rng = StdRng::seed_from_u64(21);
        let batch = random_batch(&g0, 20, &mut rng);
        let mut seq = BatchIndex::build(g0.clone(), config(Algorithm::BhlPlus, 8));
        seq.apply_batch(&batch);
        for threads in [2, 3, 8] {
            let mut cfg = config(Algorithm::BhlPlus, 8);
            cfg.threads = threads;
            let mut par = BatchIndex::build(g0.clone(), cfg);
            let stats = par.apply_batch(&batch);
            assert_eq!(seq.work.lab, par.work.lab, "threads={threads}");
            assert_eq!(
                &par.published().lab,
                par.labelling(),
                "published sync, threads={threads}"
            );
            assert!(stats.affected_total > 0);
        }
    }

    #[test]
    fn affected_counts_bhl_plus_never_exceed_bhl() {
        let g0 = erdos_renyi_gnm(100, 220, 11);
        let mut rng = StdRng::seed_from_u64(13);
        let batch = random_batch(&g0, 18, &mut rng);
        let mut basic = BatchIndex::build(g0.clone(), config(Algorithm::Bhl, 6));
        let mut plus = BatchIndex::build(g0, config(Algorithm::BhlPlus, 6));
        let sb = basic.apply_batch(&batch);
        let sp = plus.apply_batch(&batch);
        assert!(
            sp.affected_total <= sb.affected_total,
            "BHL+ affected {} > BHL {}",
            sp.affected_total,
            sb.affected_total
        );
    }

    #[test]
    fn empty_and_invalid_batches_are_noops() {
        let g0 = path(10);
        let mut index = BatchIndex::build(g0, config(Algorithm::BhlPlus, 2));
        let before = index.work.lab.clone();
        let stats = index.apply_batch(&Batch::new());
        assert_eq!(stats.applied, 0);
        let mut b = Batch::new();
        b.insert(0, 1); // already present
        b.delete(0, 5); // absent
        b.insert(3, 3); // self-loop
        let stats = index.apply_batch(&b);
        assert_eq!(stats.applied, 0);
        assert_eq!(index.work.lab, before);
    }

    #[test]
    fn batch_with_new_vertices_grows_index() {
        let g0 = path(5);
        let mut index = BatchIndex::build(g0, config(Algorithm::BhlPlus, 2));
        let mut b = Batch::new();
        b.insert(4, 9); // vertex 9 does not exist yet
        index.apply_batch(&b);
        assert_eq!(index.num_vertices(), 10);
        assert_eq!(index.query(0, 9), Some(5));
        assert_eq!(index.query(0, 7), None, "7 is isolated");
        oracle::check_minimal(index.graph(), index.labelling()).unwrap();
        assert_eq!(index.published().lab, index.work.lab);
    }

    #[test]
    fn insert_then_delete_round_trips() {
        let g0 = barabasi_albert(100, 2, 17);
        let mut index = BatchIndex::build(g0.clone(), config(Algorithm::BhlPlus, 4));
        let baseline = index.work.lab.clone();
        let mut ins = Batch::new();
        ins.insert(0, 50);
        ins.insert(13, 77);
        let del = ins.inverse();
        index.apply_batch(&ins);
        index.apply_batch(&del);
        assert_eq!(index.graph(), &g0);
        assert_eq!(
            index.work.lab, baseline,
            "labelling must round-trip (uniqueness)"
        );
    }

    #[test]
    fn rebuild_agrees_with_incremental() {
        let g0 = erdos_renyi_gnm(60, 140, 23);
        let mut index = BatchIndex::build(g0, config(Algorithm::Bhl, 5));
        let mut rng = StdRng::seed_from_u64(31);
        let batch = random_batch(index.graph(), 20, &mut rng);
        index.apply_batch(&batch);
        let incremental = index.work.lab.clone();
        index.rebuild();
        assert_eq!(index.work.lab, incremental);
    }

    #[test]
    fn versions_advance_per_pass() {
        let g0 = path(8);
        let mut index = BatchIndex::build(g0, config(Algorithm::BhlPlus, 2));
        assert_eq!(index.version(), 0);
        let mut b = Batch::new();
        b.insert(0, 5);
        index.apply_batch(&b);
        assert_eq!(index.version(), 1);
        // UHL publishes one generation per update.
        let g1 = path(8);
        let mut single = BatchIndex::build(g1, config(Algorithm::Uhl, 2));
        let mut b = Batch::new();
        b.insert(0, 4);
        b.insert(1, 6);
        single.apply_batch(&b);
        assert_eq!(single.version(), 2);
    }

    #[test]
    fn reordered_index_answers_original_queries() {
        let g = barabasi_albert(120, 3, 9);
        let mut plain = BatchIndex::build(g.clone(), config(Algorithm::BhlPlus, 6));
        let (mut reordered, remap) = BatchIndex::new_reordered(g, config(Algorithm::BhlPlus, 6));
        // The hub owns id 0 in the reordered index.
        assert_eq!(reordered.graph().vertices_by_degree()[0], 0);
        for s in (0..120u32).step_by(7) {
            for t in (0..120u32).step_by(5) {
                assert_eq!(
                    reordered.query_dist(remap.to_new(s), remap.to_new(t)),
                    plain.query_dist(s, t),
                    "query({s},{t})"
                );
            }
        }
        // Updates expressed in original ids flow through map_batch.
        let mut b = Batch::new();
        b.insert(3, 117);
        b.delete(0, 1);
        plain.apply_batch(&b);
        reordered.apply_batch(&remap.map_batch(&b));
        oracle::check_minimal(reordered.graph(), reordered.labelling()).unwrap();
        for s in (0..120u32).step_by(11) {
            for t in (0..120u32).step_by(3) {
                assert_eq!(
                    reordered.query_dist(remap.to_new(s), remap.to_new(t)),
                    plain.query_dist(s, t),
                    "post-batch query({s},{t})"
                );
            }
        }
    }

    /// Regression: `top_k_closest` used to cut the BFS sweep mid-level
    /// at the `k+1` cap, so among equal-distance vertices at the k-th
    /// boundary the answer depended on adjacency iteration order — the
    /// same query could differ before and after CSR compaction or
    /// `new_reordered` relabeling of an identical graph. The sweep now
    /// finishes the boundary level and ties break by vertex id.
    #[test]
    fn top_k_closest_is_stable_across_compaction_and_relabeling() {
        let g = barabasi_albert(90, 3, 13);
        let mut plain = BatchIndex::build(g.clone(), config(Algorithm::BhlPlus, 5));
        let sources = [0u32, 5, 23, 60];

        // Distance ties at level boundaries are the whole point — make
        // sure the instance actually has them.
        let n = plain.num_vertices() as Vertex;
        let targets: Vec<Vertex> = (0..n).filter(|&t| t != 0).collect();
        let mut reach: Vec<Dist> = plain
            .distances_from(0, &targets)
            .into_iter()
            .flatten()
            .collect();
        reach.sort_unstable();
        assert!(
            reach.windows(2).any(|w| w[0] == w[1]),
            "instance has no distance ties; the test would be vacuous"
        );

        // Twin 1 — forced compaction. An eager policy folds the delta
        // overlay into a fresh CSR base on every pass; an insert batch
        // followed by its inverse round-trips the graph content while
        // rebuilding the adjacency arrays. Same id space, so answers
        // must be byte-identical at *every* k, tie-straddling or not.
        let mut compacted = BatchIndex::build(g.clone(), config(Algorithm::BhlPlus, 5));
        compacted.set_compaction(CompactionPolicy::eager(0.0));
        // Round-trip with edges that are genuinely absent: inserting a
        // present edge is a no-op but its inverse would delete it.
        let mut ins = Batch::new();
        let mut picked = 0;
        'pick: for a in 0..n {
            for b in (a + 1)..n {
                if !g.has_edge(a, b) {
                    ins.insert(a, b);
                    picked += 1;
                    if picked == 2 {
                        break 'pick;
                    }
                }
            }
        }
        assert_eq!(picked, 2, "graph too dense to pick absent edges");
        let del = ins.inverse();
        compacted.apply_batch(&ins);
        compacted.apply_batch(&del);
        for s in sources {
            for k in [1usize, 3, 7, 12, 25, 89] {
                assert_eq!(
                    plain.top_k_closest(s, k),
                    compacted.top_k_closest(s, k),
                    "compaction twin diverged at s={s} k={k}"
                );
            }
        }

        // Twin 2 — degree-descending relabeling. Ids change, so the
        // (distance, id) tie-break legitimately ranks differently
        // *within* a level; at complete-level cuts the answer set is
        // id-invariant and must map back to exactly the same set.
        let (mut reordered, remap) = BatchIndex::new_reordered(g, config(Algorithm::BhlPlus, 5));
        for s in sources {
            let targets: Vec<Vertex> = (0..n).filter(|&t| t != s).collect();
            let mut reach: Vec<Dist> = plain
                .distances_from(s, &targets)
                .into_iter()
                .flatten()
                .collect();
            reach.sort_unstable();
            // Every k where the sorted distance profile steps to a new
            // level is a level-closed prefix.
            let boundaries: Vec<usize> = (1..reach.len())
                .filter(|&k| reach[k] != reach[k - 1])
                .chain([reach.len()])
                .collect();
            for k in boundaries {
                let expect = plain.top_k_closest(s, k);
                let mut got: Vec<(Vertex, Dist)> = reordered
                    .top_k_closest(remap.to_new(s), k)
                    .into_iter()
                    .map(|(v, d)| (remap.to_old(v), d))
                    .collect();
                got.sort_unstable_by_key(|&(v, d)| (d, v));
                assert_eq!(expect, got, "relabeled twin diverged at s={s} k={k}");
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_compaction_setters_delegate_to_policy() {
        let mut index = BatchIndex::build(path(6), config(Algorithm::BhlPlus, 1));
        index.set_compaction_fraction(0.5);
        assert_eq!(index.config().compaction.fraction, 0.5);
        index.set_compaction_policy(0.25, 7);
        assert_eq!(index.config().compaction, CompactionPolicy::new(0.25, 7));
        index.set_compaction(CompactionPolicy::eager(0.1));
        assert_eq!(index.config().compaction.min_entries, 0);
    }

    #[test]
    fn pinned_reader_forces_clone_fallback_without_corruption() {
        let g0 = erdos_renyi_gnm(60, 130, 41);
        let mut index = BatchIndex::build(g0, config(Algorithm::BhlPlus, 4));
        let mut reader = index.reader();
        let mut rng = StdRng::seed_from_u64(43);
        // The reader never refreshes, pinning generation after
        // generation; the writer must stay correct through the clone
        // fallback path.
        let pinned = reader.pin();
        let frozen_truth = oracle::all_pairs_bfs(&pinned.graph);
        for round in 0..4 {
            let batch = random_batch(index.graph(), 10, &mut rng);
            index.apply_batch(&batch);
            oracle::check_minimal(index.graph(), index.labelling())
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
        // The pinned generation still answers its own (stale) truth.
        for s in (0..60u32).step_by(11) {
            for t in (0..60u32).step_by(7) {
                assert_eq!(
                    reader.query_dist_pinned(s, t),
                    frozen_truth[s as usize][t as usize]
                );
            }
        }
    }
}
