//! The public batch-dynamic index (Algorithm 1 and its variants).
//!
//! [`BatchIndex`] owns the graph, the current labelling `Γ` and a
//! *shadow* copy of it. During an update the shadow plays the role of
//! the read-only old labelling `Γ` of Algorithm 1 while the current
//! labelling is repaired in place into `Γ′`; afterwards only the entries
//! that repair actually touched are copied into the shadow (O(affected)
//! instead of an O(|R|·|V|) clone per batch). Reads during the update
//! go exclusively through the shadow, so per-landmark work is
//! independent — which is also exactly what makes the landmark-level
//! parallel variant (BHLₚ, Section 6) safe: each worker thread reads the
//! shared shadow and writes its own disjoint label/highway rows.

use crate::repair::batch_repair;
use crate::search::batch_search;
use crate::search_improved::batch_search_improved;
use crate::stats::UpdateStats;
use crate::workspace::UpdateWorkspace;
use batchhl_common::{Dist, Vertex};
use batchhl_graph::{Batch, DynamicGraph, Update};
use batchhl_hcl::{build_labelling_parallel, Labelling, LandmarkSelection, QueryEngine};
use std::time::Instant;

/// Which published variant performs the update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// BHL: basic batch search (Algorithm 2) + batch repair.
    Bhl,
    /// BHL⁺: improved batch search (Algorithm 3) + batch repair.
    BhlPlus,
    /// BHLₛ: deletions and insertions processed as two sequential
    /// sub-batches (each with the basic search).
    BhlS,
    /// UHL: every update processed alone (single-update setting).
    Uhl,
    /// UHL⁺: single-update setting with the improved search.
    UhlPlus,
}

impl Algorithm {
    pub(crate) fn improved_search(self) -> bool {
        matches!(self, Algorithm::BhlPlus | Algorithm::UhlPlus)
    }

    /// Display name matching the paper's tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            Algorithm::Bhl => "BHL",
            Algorithm::BhlPlus => "BHL+",
            Algorithm::BhlS => "BHLs",
            Algorithm::Uhl => "UHL",
            Algorithm::UhlPlus => "UHL+",
        }
    }
}

/// Index configuration.
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// How to choose the landmark set (paper default: 20 top-degree).
    pub selection: LandmarkSelection,
    /// Update variant.
    pub algorithm: Algorithm,
    /// Worker threads for construction and updates. `> 1` turns BHL⁺
    /// into the paper's BHLₚ.
    pub threads: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            selection: LandmarkSelection::paper_default(),
            algorithm: Algorithm::BhlPlus,
            threads: 1,
        }
    }
}

impl IndexConfig {
    /// The paper's BHLₚ configuration.
    pub fn parallel(threads: usize) -> Self {
        IndexConfig {
            threads,
            ..Default::default()
        }
    }
}

/// Batch-dynamic distance index over an undirected graph.
///
/// Cloning copies the graph and both labelling buffers; the scratch
/// workspaces start fresh (they hold no semantic state).
pub struct BatchIndex {
    graph: DynamicGraph,
    /// Current labelling `Γ` (post all applied batches).
    lab: Labelling,
    /// Copy of `Γ` used as the old-labelling oracle during updates.
    /// Invariant outside [`BatchIndex::apply_batch`]: `shadow == lab`.
    shadow: Labelling,
    config: IndexConfig,
    ws: UpdateWorkspace,
    engine: QueryEngine,
}

impl Clone for BatchIndex {
    fn clone(&self) -> Self {
        BatchIndex {
            graph: self.graph.clone(),
            lab: self.lab.clone(),
            shadow: self.shadow.clone(),
            config: self.config.clone(),
            ws: UpdateWorkspace::new(self.graph.num_vertices()),
            engine: QueryEngine::new(self.graph.num_vertices()),
        }
    }
}

impl BatchIndex {
    /// Build the index: select landmarks, construct the minimal
    /// labelling (`O(|R|·(|V|+|E|))`).
    pub fn build(graph: DynamicGraph, config: IndexConfig) -> Self {
        let landmarks = config.selection.select(&graph);
        let lab = build_labelling_parallel(&graph, landmarks, config.threads.max(1));
        let shadow = lab.clone();
        let n = graph.num_vertices();
        BatchIndex {
            graph,
            lab,
            shadow,
            config,
            ws: UpdateWorkspace::new(n),
            engine: QueryEngine::new(n),
        }
    }

    /// Convenience: build with the default configuration.
    pub fn with_defaults(graph: DynamicGraph) -> Self {
        Self::build(graph, IndexConfig::default())
    }

    /// Assemble from pre-validated parts (see `snapshot` module).
    pub(crate) fn assemble(graph: DynamicGraph, lab: Labelling, config: IndexConfig) -> Self {
        let n = graph.num_vertices();
        BatchIndex {
            graph,
            shadow: lab.clone(),
            lab,
            config,
            ws: UpdateWorkspace::new(n),
            engine: QueryEngine::new(n),
        }
    }

    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    pub fn labelling(&self) -> &Labelling {
        &self.lab
    }

    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Exact distance, `None` when disconnected (Section 4: labelling
    /// upper bound + bounded bidirectional BFS on `G[V\R]`).
    pub fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        let n = self.graph.num_vertices();
        if (s as usize) >= n || (t as usize) >= n {
            return None;
        }
        self.engine.query(&self.lab, &self.graph, s, t)
    }

    /// As [`BatchIndex::query`], returning `INF` for disconnected pairs.
    pub fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        self.engine.query_dist(&self.lab, &self.graph, s, t)
    }

    /// Apply a batch of updates and repair the labelling (Algorithm 1,
    /// dispatched per the configured [`Algorithm`]).
    pub fn apply_batch(&mut self, batch: &Batch) -> UpdateStats {
        let start = Instant::now();
        let mut stats = match self.config.algorithm {
            Algorithm::Bhl | Algorithm::BhlPlus => {
                let norm = batch.normalize(&self.graph);
                self.run_pass(&norm)
            }
            Algorithm::BhlS => {
                let norm = batch.normalize(&self.graph);
                let (deletions, insertions) = norm.split();
                let mut s = self.run_pass(&deletions);
                s.absorb(self.run_pass(&insertions));
                s
            }
            Algorithm::Uhl | Algorithm::UhlPlus => {
                let mut s = UpdateStats::default();
                for &u in batch.updates() {
                    let single = Batch::from_updates(vec![u]).normalize(&self.graph);
                    s.absorb(self.run_pass(&single));
                }
                s
            }
        };
        stats.elapsed = start.elapsed();
        stats
    }

    /// Rebuild the labelling from scratch (used by tests and the
    /// construction benchmarks).
    pub fn rebuild(&mut self) {
        let landmarks = self.lab.landmarks().to_vec();
        self.lab = build_labelling_parallel(&self.graph, landmarks, self.config.threads.max(1));
        self.shadow = self.lab.clone();
    }

    /// One search+repair pass over a normalized, conflict-free batch.
    fn run_pass(&mut self, norm: &Batch) -> UpdateStats {
        let mut stats = UpdateStats {
            passes: 1,
            ..Default::default()
        };
        if norm.is_empty() {
            return stats;
        }
        stats.applied = self.graph.apply_batch(norm);
        debug_assert_eq!(stats.applied, norm.len(), "normalized batches are valid");
        stats.insertions = norm.num_insertions();
        stats.deletions = norm.num_deletions();

        let n = self.graph.num_vertices();
        self.lab.ensure_vertices(n);
        self.shadow.ensure_vertices(n);
        self.ws.grow(n);

        let improved = self.config.algorithm.improved_search();
        let r = self.lab.num_landmarks();
        let threads = self.config.threads.max(1).min(r.max(1));

        let affected: Vec<Vec<Vertex>> = if threads <= 1 {
            let mut affected = Vec::with_capacity(r);
            for i in 0..r {
                self.ws.reset();
                if improved {
                    batch_search_improved(
                        &self.shadow,
                        &self.graph,
                        norm.updates(),
                        i,
                        false,
                        &mut self.ws,
                    );
                } else {
                    batch_search(&self.shadow, &self.graph, norm.updates(), i, false, &mut self.ws);
                }
                let (label_row, highway_row) = self.lab.row_mut(i);
                batch_repair(&self.shadow, &self.graph, i, label_row, highway_row, &mut self.ws);
                affected.push(self.ws.aff.inserted().to_vec());
            }
            affected
        } else {
            run_landmarks_parallel(
                &self.shadow,
                &self.graph,
                norm.updates(),
                improved,
                false,
                threads,
                &mut self.lab,
            )
        };

        // Sync the shadow: only entries repair may have written.
        for (i, aff) in affected.iter().enumerate() {
            for &v in aff {
                let d = self.lab.label(i, v);
                self.shadow.set_label(i, v, d);
            }
            for j in 0..r {
                self.shadow.set_highway_row(i, j, self.lab.highway(i, j));
            }
        }
        stats.affected_per_landmark = affected.iter().map(Vec::len).collect();
        stats.affected_total = stats.affected_per_landmark.iter().sum();
        stats
    }
}

/// Landmark-level parallel search + repair (BHLₚ): distribute landmark
/// rows over `threads` scoped threads; every thread owns its rows and a
/// private workspace and reads the shared old labelling and graph.
/// Returns the per-landmark affected lists for shadow syncing and stats.
pub(crate) fn run_landmarks_parallel<A>(
    old: &Labelling,
    g: &A,
    updates: &[Update],
    improved: bool,
    directed: bool,
    threads: usize,
    new_lab: &mut Labelling,
) -> Vec<Vec<Vertex>>
where
    A: batchhl_graph::AdjacencyView + Sync,
{
    let n = g.num_vertices();
    let r = new_lab.num_landmarks();
    let (rows, _) = new_lab.rows_mut();
    let mut work: Vec<(usize, batchhl_hcl::labelling::RowPair<'_>)> =
        rows.into_iter().enumerate().collect();
    let per = r.div_ceil(threads.max(1));
    let mut results: Vec<Vec<Vertex>> = vec![Vec::new(); r];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        while !work.is_empty() {
            let take = per.min(work.len());
            let chunk: Vec<_> = work.drain(..take).collect();
            handles.push(scope.spawn(move || {
                let mut ws = UpdateWorkspace::new(n);
                let mut out = Vec::with_capacity(chunk.len());
                for (i, (label_row, highway_row)) in chunk {
                    ws.reset();
                    if improved {
                        batch_search_improved(old, g, updates, i, directed, &mut ws);
                    } else {
                        batch_search(old, g, updates, i, directed, &mut ws);
                    }
                    batch_repair(old, g, i, label_row, highway_row, &mut ws);
                    out.push((i, ws.aff.inserted().to_vec()));
                }
                out
            }));
        }
        for h in handles {
            for (i, aff) in h.join().expect("landmark worker panicked") {
                results[i] = aff;
            }
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_graph::generators::{barabasi_albert, erdos_renyi_gnm, path};
    use batchhl_hcl::oracle;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn config(algorithm: Algorithm, k: usize) -> IndexConfig {
        IndexConfig {
            selection: LandmarkSelection::TopDegree(k),
            algorithm,
            threads: 1,
        }
    }

    fn random_batch(g: &DynamicGraph, size: usize, rng: &mut StdRng) -> Batch {
        let n = g.num_vertices() as Vertex;
        let mut b = Batch::new();
        for _ in 0..size {
            let a = rng.gen_range(0..n);
            let c = rng.gen_range(0..n);
            if a == c {
                continue;
            }
            if g.has_edge(a, c) {
                b.delete(a, c);
            } else {
                b.insert(a, c);
            }
        }
        b
    }

    /// Core invariant: after any update sequence, the maintained
    /// labelling equals the from-scratch minimal labelling (unique!).
    fn assert_tracks_rebuild(algorithm: Algorithm, seed: u64) {
        let g0 = erdos_renyi_gnm(70, 150, seed);
        let mut index = BatchIndex::build(g0, config(algorithm, 5));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for round in 0..6 {
            let batch = random_batch(index.graph(), 12, &mut rng);
            index.apply_batch(&batch);
            oracle::check_minimal(index.graph(), index.labelling())
                .unwrap_or_else(|e| panic!("{algorithm:?} seed {seed} round {round}: {e}"));
            assert_eq!(
                index.labelling(),
                &index.shadow,
                "shadow out of sync after round {round}"
            );
        }
    }

    #[test]
    fn bhl_tracks_rebuild() {
        for seed in 0..6 {
            assert_tracks_rebuild(Algorithm::Bhl, seed);
        }
    }

    #[test]
    fn bhl_plus_tracks_rebuild() {
        for seed in 0..6 {
            assert_tracks_rebuild(Algorithm::BhlPlus, seed);
        }
    }

    #[test]
    fn bhl_s_tracks_rebuild() {
        for seed in 0..4 {
            assert_tracks_rebuild(Algorithm::BhlS, seed);
        }
    }

    #[test]
    fn uhl_variants_track_rebuild() {
        assert_tracks_rebuild(Algorithm::Uhl, 1);
        assert_tracks_rebuild(Algorithm::UhlPlus, 2);
    }

    #[test]
    fn queries_stay_exact_under_updates() {
        let g0 = barabasi_albert(120, 3, 3);
        let mut index = BatchIndex::build(g0, config(Algorithm::BhlPlus, 6));
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..4 {
            let batch = random_batch(index.graph(), 15, &mut rng);
            index.apply_batch(&batch);
            let truth = oracle::all_pairs_bfs(index.graph());
            for s in (0..120u32).step_by(5) {
                for t in (0..120u32).step_by(7) {
                    assert_eq!(
                        index.query_dist(s, t),
                        truth[s as usize][t as usize],
                        "query({s},{t})"
                    );
                }
            }
        }
    }

    #[test]
    fn all_variants_converge_to_same_labelling() {
        let g0 = erdos_renyi_gnm(80, 180, 5);
        let mut rng = StdRng::seed_from_u64(7);
        let batch = random_batch(&g0, 25, &mut rng);
        let mut labellings = Vec::new();
        for alg in [
            Algorithm::Bhl,
            Algorithm::BhlPlus,
            Algorithm::BhlS,
            Algorithm::Uhl,
            Algorithm::UhlPlus,
        ] {
            let mut index = BatchIndex::build(g0.clone(), config(alg, 6));
            index.apply_batch(&batch);
            labellings.push((alg, index.lab));
        }
        for w in labellings.windows(2) {
            assert_eq!(
                w[0].1, w[1].1,
                "{:?} and {:?} disagree",
                w[0].0, w[1].0
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let g0 = barabasi_albert(150, 3, 8);
        let mut rng = StdRng::seed_from_u64(21);
        let batch = random_batch(&g0, 20, &mut rng);
        let mut seq = BatchIndex::build(g0.clone(), config(Algorithm::BhlPlus, 8));
        seq.apply_batch(&batch);
        for threads in [2, 3, 8] {
            let mut cfg = config(Algorithm::BhlPlus, 8);
            cfg.threads = threads;
            let mut par = BatchIndex::build(g0.clone(), cfg);
            let stats = par.apply_batch(&batch);
            assert_eq!(seq.lab, par.lab, "threads={threads}");
            assert_eq!(par.lab, par.shadow, "shadow sync, threads={threads}");
            assert!(stats.affected_total > 0);
        }
    }

    #[test]
    fn affected_counts_bhl_plus_never_exceed_bhl() {
        let g0 = erdos_renyi_gnm(100, 220, 11);
        let mut rng = StdRng::seed_from_u64(13);
        let batch = random_batch(&g0, 18, &mut rng);
        let mut basic = BatchIndex::build(g0.clone(), config(Algorithm::Bhl, 6));
        let mut plus = BatchIndex::build(g0, config(Algorithm::BhlPlus, 6));
        let sb = basic.apply_batch(&batch);
        let sp = plus.apply_batch(&batch);
        assert!(
            sp.affected_total <= sb.affected_total,
            "BHL+ affected {} > BHL {}",
            sp.affected_total,
            sb.affected_total
        );
    }

    #[test]
    fn empty_and_invalid_batches_are_noops() {
        let g0 = path(10);
        let mut index = BatchIndex::build(g0, config(Algorithm::BhlPlus, 2));
        let before = index.lab.clone();
        let stats = index.apply_batch(&Batch::new());
        assert_eq!(stats.applied, 0);
        let mut b = Batch::new();
        b.insert(0, 1); // already present
        b.delete(0, 5); // absent
        b.insert(3, 3); // self-loop
        let stats = index.apply_batch(&b);
        assert_eq!(stats.applied, 0);
        assert_eq!(index.lab, before);
    }

    #[test]
    fn batch_with_new_vertices_grows_index() {
        let g0 = path(5);
        let mut index = BatchIndex::build(g0, config(Algorithm::BhlPlus, 2));
        let mut b = Batch::new();
        b.insert(4, 9); // vertex 9 does not exist yet
        index.apply_batch(&b);
        assert_eq!(index.num_vertices(), 10);
        assert_eq!(index.query(0, 9), Some(5));
        assert_eq!(index.query(0, 7), None, "7 is isolated");
        oracle::check_minimal(index.graph(), index.labelling()).unwrap();
    }

    #[test]
    fn insert_then_delete_round_trips() {
        let g0 = barabasi_albert(100, 2, 17);
        let mut index = BatchIndex::build(g0.clone(), config(Algorithm::BhlPlus, 4));
        let baseline = index.lab.clone();
        let mut ins = Batch::new();
        ins.insert(0, 50);
        ins.insert(13, 77);
        let del = ins.inverse();
        index.apply_batch(&ins);
        index.apply_batch(&del);
        assert_eq!(index.graph(), &g0);
        assert_eq!(index.lab, baseline, "labelling must round-trip (uniqueness)");
    }

    #[test]
    fn rebuild_agrees_with_incremental() {
        let g0 = erdos_renyi_gnm(60, 140, 23);
        let mut index = BatchIndex::build(g0, config(Algorithm::Bhl, 5));
        let mut rng = StdRng::seed_from_u64(31);
        let batch = random_batch(index.graph(), 20, &mut rng);
        index.apply_batch(&batch);
        let incremental = index.lab.clone();
        index.rebuild();
        assert_eq!(index.lab, incremental);
    }
}
