//! Batch repair (Algorithm 4): restore correctness and minimality.
//!
//! Given the affected set `V_aff` of a landmark `r`, repair recomputes
//! the landmark distances `d^L_{G′}(r, v)` of affected vertices by a
//! Dijkstra-like sweep that starts from the *boundary*: every affected
//! vertex is seeded with its **landmark distance bound** (Definition
//! 5.19) — the best `d^L_{G′}(r, w) ⊕ v` over unaffected neighbours `w`,
//! whose values are still the old ones and thus readable from `Γ`.
//! Lemma 5.20 shows the minimum-bound vertex's bound is exact, so
//! finalizing in bound order and relaxing affected neighbours yields
//! exact landmark distances for the whole set, even though a vertex may
//! have been affected by many updates (each label is written once).
//!
//! Finalization applies Lemma 5.14: the `r`-label of `v` is `(r, d)` iff
//! `d` is finite and the landmark flag is clear, otherwise the label is
//! removed; if `v` is itself a landmark its highway entry is updated
//! instead (landmarks never carry labels — their paths terminate in a
//! landmark, so their flag is always set).
//!
//! Implementation notes: the sweep pops from a Dial bucket queue in
//! nondecreasing *distance* order with lazy decrease-key; same-distance
//! flag refinements always happen before that bucket is drained (a
//! relaxation adds exactly one hop), so values are final at pop time.
//! Vertices whose bound never becomes finite are unreachable in `G′`
//! and are finalized with `∞` after the queue drains.

use crate::workspace::{dl_old, UpdateWorkspace};
use batchhl_common::{Dist, LandmarkLength, Vertex, INF};
use batchhl_graph::AdjacencyView;
use batchhl_hcl::{Labelling, NO_LABEL};

/// Run Algorithm 4 for landmark `i`.
///
/// * `lab` — the *old* labelling `Γ` (read-only oracle),
/// * `g` — the updated graph `G′`,
/// * `ws.aff` — the affected set from batch search (drained in place),
/// * `label_row` / `highway_row` — landmark `i`'s rows of the *new*
///   labelling `Γ′` (everything else of `Γ′` is untouched by landmark
///   `i`, which is what makes landmark-level parallelism write-disjoint),
/// * `lm_of` — vertex → landmark-index map (shared, read-only).
#[allow(clippy::too_many_arguments)]
pub fn batch_repair<A: AdjacencyView>(
    lab: &Labelling,
    g: &A,
    i: usize,
    label_row: &mut [Dist],
    highway_row: &mut [Dist],
    ws: &mut UpdateWorkspace,
) {
    ws.repair_queue.clear();
    ws.bounds.clear();

    // Boundary initialization (lines 2–3): bounds from unaffected
    // in-neighbours, whose d^L in G′ equals their (cached) value in G.
    for idx in 0..ws.aff.inserted().len() {
        let v = ws.aff.inserted()[idx];
        if !ws.aff.contains(v) {
            continue; // stale entry (removed earlier)
        }
        let v_is_lm = lab.is_landmark(v);
        let mut best = LandmarkLength::INFINITE;
        for &w in g.in_neighbors(v) {
            if ws.aff.contains(w) {
                continue;
            }
            let dlw = dl_old(lab, i, w, &mut ws.dl_cache);
            let cand = dlw.extend(v_is_lm);
            if cand < best {
                best = cand;
            }
        }
        ws.bounds.set(v as usize, best.key());
        if !best.is_infinite() {
            ws.repair_queue.push(best.dist(), v);
        }
    }

    // Main sweep (lines 4–15).
    while let Some((d, v)) = ws.repair_queue.pop() {
        if !ws.aff.contains(v) {
            continue; // already finalized
        }
        let bound = LandmarkLength::from_key(ws.bounds.get(v as usize).expect("queued ⇒ bounded"));
        if bound.dist() != d {
            continue; // stale queue entry
        }
        ws.aff.remove(v);
        finalize(lab, i, v, bound, label_row, highway_row);
        // Relax affected out-neighbours (lines 14–15).
        for &w in g.out_neighbors(v) {
            if !ws.aff.contains(w) {
                continue;
            }
            let cand = bound.extend(lab.is_landmark(w));
            let cur = ws
                .bounds
                .get(w as usize)
                .map(LandmarkLength::from_key)
                .unwrap_or(LandmarkLength::INFINITE);
            if cand < cur {
                ws.bounds.set(w as usize, cand.key());
                if !cand.is_infinite() {
                    ws.repair_queue.push(cand.dist(), w);
                }
            }
        }
    }

    // Unreached vertices are disconnected from r in G′.
    for idx in 0..ws.aff.inserted().len() {
        let v = ws.aff.inserted()[idx];
        if ws.aff.contains(v) {
            ws.aff.remove(v);
            finalize(lab, i, v, LandmarkLength::INFINITE, label_row, highway_row);
        }
    }
}

/// Write the final landmark distance of `v` into Γ′ (lines 8–13).
/// Shared with the weighted kernel, whose finalization rule (Lemma
/// 5.14) is identical.
#[inline]
pub(crate) fn finalize(
    lab: &Labelling,
    i: usize,
    v: Vertex,
    dl: LandmarkLength,
    label_row: &mut [Dist],
    highway_row: &mut [Dist],
) {
    if let Some(j) = lab.landmark_index(v) {
        debug_assert_ne!(j, i, "the root landmark can never be affected");
        highway_row[j] = if dl.is_infinite() { INF } else { dl.dist() };
        debug_assert!(
            dl.is_infinite() || dl.through_landmark(),
            "paths ending at a landmark must carry the flag"
        );
        label_row[v as usize] = NO_LABEL;
    } else if dl.is_infinite() || dl.through_landmark() {
        label_row[v as usize] = NO_LABEL;
    } else {
        label_row[v as usize] = dl.dist();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::batch_search;
    use crate::search_improved::batch_search_improved;
    use batchhl_graph::generators::path;
    use batchhl_graph::{Batch, DynamicGraph};
    use batchhl_hcl::{build_labelling, oracle};

    /// Full single-landmark pipeline: search (basic or improved) then
    /// repair; returns the repaired labelling.
    fn run(
        g0: &DynamicGraph,
        landmarks: Vec<Vertex>,
        batch: &Batch,
        improved: bool,
    ) -> (Labelling, DynamicGraph) {
        let lab = build_labelling(g0, landmarks).unwrap();
        let norm = batch.normalize(g0);
        let mut g1 = g0.clone();
        g1.apply_batch(&norm);
        let mut new_lab = lab.clone();
        new_lab.ensure_vertices(g1.num_vertices());
        let mut ws = UpdateWorkspace::new(g1.num_vertices());
        let r = lab.num_landmarks();
        {
            let (rows, _) = new_lab.rows_mut();
            for (i, (label_row, highway_row)) in rows.into_iter().enumerate() {
                ws.reset();
                if improved {
                    batch_search_improved(&lab, &g1, norm.updates(), i, false, &mut ws);
                } else {
                    batch_search(&lab, &g1, norm.updates(), i, false, &mut ws);
                }
                batch_repair(&lab, &g1, i, label_row, highway_row, &mut ws);
            }
        }
        let _ = r;
        (new_lab, g1)
    }

    fn assert_minimal_after(g0: &DynamicGraph, landmarks: Vec<Vertex>, batch: Batch) {
        for improved in [false, true] {
            let (repaired, g1) = run(g0, landmarks.clone(), &batch, improved);
            oracle::check_minimal(&g1, &repaired)
                .unwrap_or_else(|e| panic!("improved={improved}: {e}"));
        }
    }

    #[test]
    fn repairs_path_insertion() {
        let g0 = path(6);
        let mut b = Batch::new();
        b.insert(0, 4);
        assert_minimal_after(&g0, vec![0], b);
    }

    #[test]
    fn repairs_path_deletion_with_disconnect() {
        let g0 = path(6);
        let mut b = Batch::new();
        b.delete(2, 3);
        assert_minimal_after(&g0, vec![0, 5], b);
    }

    #[test]
    fn repairs_mixed_batch() {
        let g0 = path(8);
        let mut b = Batch::new();
        b.delete(3, 4);
        b.insert(0, 7);
        b.insert(2, 5);
        assert_minimal_after(&g0, vec![0, 4], b);
    }

    #[test]
    fn repairs_landmark_incident_updates() {
        // Updates touching landmarks exercise the highway rewrite path.
        let g0 = path(6);
        let mut b = Batch::new();
        b.delete(0, 1); // landmark 0 loses its only edge
        assert_minimal_after(&g0, vec![0, 3], b);
    }

    #[test]
    fn repairs_reconnection() {
        let g0 = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let mut b = Batch::new();
        b.insert(2, 3); // join the two components
        assert_minimal_after(&g0, vec![0, 4], b);
    }

    #[test]
    fn repairs_example_5_9_label_transitions() {
        // (b): insertion deletes a label; (d): deletion restores one.
        let (r, a, b, v) = (0u32, 1u32, 2u32, 3u32);
        let g0 = DynamicGraph::from_edges(4, &[(r, a), (r, b), (a, v)]);
        let mut batch = Batch::new();
        batch.insert(b, v);
        let (repaired, g1) = run(&g0, vec![r, b], &batch, true);
        oracle::check_minimal(&g1, &repaired).unwrap();
        // v's r-label (index 0) must be gone: covered via landmark b.
        assert_eq!(repaired.label(0, v), NO_LABEL);

        let g0 = DynamicGraph::from_edges(4, &[(r, a), (r, b), (a, v), (b, v)]);
        let mut batch = Batch::new();
        batch.delete(b, v);
        let (repaired, g1) = run(&g0, vec![r, b], &batch, true);
        oracle::check_minimal(&g1, &repaired).unwrap();
        assert_eq!(repaired.label(0, v), 2, "r-label restored");
    }

    #[test]
    fn example_5_10_label_change_far_from_update() {
        // Figure 4(b): a-b-c-v plus r-a? Reconstruct: r and b landmarks;
        // edge (r, b) deleted; c's distance changes but its label
        // doesn't; v's label changes. Shape: r-b, b-c, c-v, r-a, a-b?
        // Use: r-b, b-c, c-v, r-d, d-e, e-c? Simplest concrete witness:
        //   r-b (deleted), b-c, c-v, r-x, x-y, y-b  (long alternative)
        let edges = &[(0u32, 1u32), (1, 2), (2, 3), (0, 4), (4, 5), (5, 1)];
        let g0 = DynamicGraph::from_edges(6, edges);
        // landmarks r=0, b=1.
        let mut batch = Batch::new();
        batch.delete(0, 1);
        assert_minimal_after(&g0, vec![0, 1], batch);
    }

    #[test]
    fn example_5_11_boundary_needs_distance_affected() {
        // Figure 4(c): landmarks r, a, c; delete (r, a); b's distance
        // changes though its label stays redundant; using b's stale
        // distance would corrupt a's highway entry. Shape:
        //   r-a (deleted), r-b, b-a, a-c? Paper: "r,a,c landmarks, edge
        //   (r,a) deleted"; graph a-b, b-r, r-?, c next to a.
        let edges = &[(0u32, 1u32), (0, 2), (2, 1), (1, 3)];
        let g0 = DynamicGraph::from_edges(4, edges);
        let mut batch = Batch::new();
        batch.delete(0, 1);
        assert_minimal_after(&g0, vec![0, 1, 3], batch);
    }
}
