//! Update statistics reported by the index.
//!
//! The paper's evaluation reads these directly: affected-vertex counts
//! (Figure 2, Table 5) and wall-clock update times (Table 3, Figures 6
//! and 7).

use std::time::Duration;

/// Statistics of one `apply_batch` call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Valid updates actually applied to the graph.
    pub applied: usize,
    /// Applied insertions.
    pub insertions: usize,
    /// Applied deletions.
    pub deletions: usize,
    /// `Σ_r |V_aff(r)|` — total affected vertices over all landmarks
    /// (the quantity plotted in Figure 2 / Table 5).
    pub affected_total: usize,
    /// Affected count per landmark index.
    pub affected_per_landmark: Vec<usize>,
    /// Number of internal pipeline passes: 1 for BHL/BHL⁺, 2 for BHLₛ,
    /// one per update for UHL/UHL⁺.
    pub passes: usize,
    /// Wall-clock time of the whole update (graph application, search,
    /// repair, bookkeeping).
    pub elapsed: Duration,
}

impl UpdateStats {
    /// Fold another pass's stats into this one (sub-batches, UHL).
    pub fn absorb(&mut self, other: UpdateStats) {
        self.applied += other.applied;
        self.insertions += other.insertions;
        self.deletions += other.deletions;
        self.affected_total += other.affected_total;
        if self.affected_per_landmark.len() < other.affected_per_landmark.len() {
            self.affected_per_landmark
                .resize(other.affected_per_landmark.len(), 0);
        }
        for (acc, x) in self
            .affected_per_landmark
            .iter_mut()
            .zip(other.affected_per_landmark.iter())
        {
            *acc += x;
        }
        self.passes += other.passes;
        self.elapsed += other.elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = UpdateStats {
            applied: 2,
            insertions: 1,
            deletions: 1,
            affected_total: 10,
            affected_per_landmark: vec![4, 6],
            passes: 1,
            elapsed: Duration::from_millis(5),
        };
        let b = UpdateStats {
            applied: 3,
            insertions: 3,
            deletions: 0,
            affected_total: 7,
            affected_per_landmark: vec![1, 2, 4],
            passes: 1,
            elapsed: Duration::from_millis(2),
        };
        a.absorb(b);
        assert_eq!(a.applied, 5);
        assert_eq!(a.insertions, 4);
        assert_eq!(a.deletions, 1);
        assert_eq!(a.affected_total, 17);
        assert_eq!(a.affected_per_landmark, vec![5, 8, 4]);
        assert_eq!(a.passes, 2);
        assert_eq!(a.elapsed, Duration::from_millis(7));
    }
}
