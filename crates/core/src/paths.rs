//! Shortest-path *reconstruction* on top of the distance index.
//!
//! The labelling answers distances; many downstream tasks (routing,
//! recommendation explanations) also want an actual path. Exact
//! distances make reconstruction a greedy descent: from `s`, repeatedly
//! step to any neighbour `u` with `d(u, t) = d(v, t) − 1` — such a
//! neighbour always exists on a shortest path. Each step costs one
//! neighbourhood scan of distance queries, so reconstruction is
//! `O(d(s,t) · deg · Q)` where `Q` is the (micro-second scale) query
//! time — fine for the occasional path, not meant for bulk extraction.

use crate::index::BatchIndex;
use batchhl_common::{Vertex, INF};

impl BatchIndex {
    /// One shortest path from `s` to `t` (inclusive); `None` if
    /// disconnected. The path has exactly `self.query(s, t)? + 1`
    /// vertices.
    pub fn query_path(&mut self, s: Vertex, t: Vertex) -> Option<Vec<Vertex>> {
        let n = self.graph().num_vertices();
        if (s as usize) >= n || (t as usize) >= n {
            return None;
        }
        let total = self.query_dist(s, t);
        if total == INF {
            return None;
        }
        let mut path = Vec::with_capacity(total as usize + 1);
        path.push(s);
        let mut v = s;
        let mut remaining = total;
        while v != t {
            // Look ahead: some neighbour is one step closer to t.
            let nbrs = self.graph().neighbors(v).to_vec();
            let mut stepped = false;
            for u in nbrs {
                if u == t {
                    path.push(u);
                    v = u;
                    stepped = true;
                    break;
                }
                if remaining >= 2 && self.query_dist(u, t) == remaining - 1 {
                    path.push(u);
                    v = u;
                    remaining -= 1;
                    stepped = true;
                    break;
                }
            }
            debug_assert!(stepped, "exact distances guarantee a descent step");
            if !stepped {
                return None; // defensive: inconsistent index
            }
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use crate::index::{Algorithm, BatchIndex, IndexConfig};
    use batchhl_graph::generators::{barabasi_albert, erdos_renyi_gnm, path as path_graph};
    use batchhl_graph::{Batch, DynamicGraph};
    use batchhl_hcl::LandmarkSelection;

    fn index(g: DynamicGraph, k: usize) -> BatchIndex {
        BatchIndex::build(
            g,
            IndexConfig {
                selection: LandmarkSelection::TopDegree(k),
                algorithm: Algorithm::BhlPlus,
                threads: 1,
                ..IndexConfig::default()
            },
        )
    }

    fn assert_valid_path(idx: &mut BatchIndex, s: u32, t: u32) {
        let d = idx.query(s, t);
        let p = idx.query_path(s, t);
        match (d, p) {
            (None, None) => {}
            (Some(d), Some(p)) => {
                assert_eq!(p.len() as u32, d + 1, "length matches distance");
                assert_eq!(p[0], s);
                assert_eq!(*p.last().unwrap(), t);
                for w in p.windows(2) {
                    assert!(
                        idx.graph().has_edge(w[0], w[1]),
                        "non-edge ({}, {}) on path",
                        w[0],
                        w[1]
                    );
                }
            }
            (d, p) => panic!("distance {d:?} but path {p:?}"),
        }
    }

    #[test]
    fn paths_on_line() {
        let mut idx = index(path_graph(8), 2);
        assert_eq!(idx.query_path(0, 4), Some(vec![0, 1, 2, 3, 4]));
        assert_eq!(idx.query_path(5, 5), Some(vec![5]));
    }

    #[test]
    fn paths_everywhere_on_random_graphs() {
        for seed in 0..3 {
            let g = erdos_renyi_gnm(60, 120, seed);
            let mut idx = index(g, 5);
            for s in (0..60).step_by(7) {
                for t in (0..60).step_by(5) {
                    assert_valid_path(&mut idx, s, t);
                }
            }
        }
    }

    #[test]
    fn paths_survive_updates() {
        let g = barabasi_albert(100, 3, 4);
        let mut idx = index(g, 6);
        let mut b = Batch::new();
        b.delete(0, 1);
        b.insert(40, 90);
        idx.apply_batch(&b);
        for (s, t) in [(0u32, 99u32), (40, 90), (13, 77)] {
            assert_valid_path(&mut idx, s, t);
        }
    }

    #[test]
    fn disconnected_has_no_path() {
        let g = DynamicGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut idx = index(g, 2);
        assert_eq!(idx.query_path(0, 3), None);
        assert_eq!(idx.query_path(0, 9), None, "out of range");
    }
}
