//! Dynamic graph substrate for the `batchhl` workspace.
//!
//! The BatchHL paper operates on unweighted graphs stored explicitly in
//! main memory that undergo *batches* of edge insertions and deletions
//! (Section 3). This crate provides that substrate:
//!
//! * [`graph::DynamicGraph`] — undirected graphs with sorted adjacency
//!   lists and O(log d) edge tests,
//! * [`digraph::DynamicDiGraph`] — the directed counterpart (Section 6),
//! * [`update`] — the update/batch model with the paper's normalization
//!   rules (cancel insert+delete pairs, drop invalid/duplicate updates),
//! * [`bfs`] — reusable BFS workspaces, including the distance-bounded
//!   bidirectional search that powers query answering (Section 4),
//! * [`generators`] — seeded synthetic graphs standing in for the
//!   paper's 14 datasets (see DESIGN.md §4),
//! * [`stream`] — an evolving timestamped edge stream standing in for
//!   the real dynamic Wikipedia networks,
//! * [`io`] — SNAP-style edge-list reading/writing,
//! * [`components`] — connectivity helpers used by tests and workloads.

pub mod bfs;
pub mod components;
pub mod digraph;
pub mod generators;
pub mod graph;
pub mod io;
pub mod stream;
pub mod update;
pub mod weighted;

pub use digraph::DynamicDiGraph;
pub use graph::DynamicGraph;
pub use update::{Batch, Update};

pub use batchhl_common::{Dist, Vertex, INF};

/// Uniform view over the adjacency of directed and undirected graphs.
///
/// Undirected graphs present the same neighbour list in both directions;
/// directed graphs present out- and in-neighbours. The BFS toolkit and
/// the labelling algorithms are generic over this trait so the directed
/// variant of BatchHL (Section 6) reuses the exact same machinery.
pub trait AdjacencyView {
    /// Number of vertices (`0..n` ids are valid).
    fn num_vertices(&self) -> usize;

    /// Successors of `v` (all neighbours for undirected graphs).
    fn out_neighbors(&self, v: Vertex) -> &[Vertex];

    /// Predecessors of `v` (all neighbours for undirected graphs).
    fn in_neighbors(&self, v: Vertex) -> &[Vertex];
}
