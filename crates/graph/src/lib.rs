//! Dynamic graph substrate for the `batchhl` workspace.
//!
//! The BatchHL paper operates on unweighted graphs stored explicitly in
//! main memory that undergo *batches* of edge insertions and deletions
//! (Section 3). This crate provides that substrate in **two
//! representations with distinct roles**:
//!
//! * **Writer graphs** — [`graph::DynamicGraph`],
//!   [`digraph::DynamicDiGraph`] and [`weighted::WeightedGraph`]: sorted
//!   per-vertex `Vec` adjacency with O(log d) edge tests and cheap
//!   in-place mutation. This is what `apply_batch` mutates.
//! * **Snapshot views** — [`csr`]: frozen flat CSR arrays plus a small
//!   per-generation delta overlay ([`csr::CsrDelta`] and friends). This
//!   is what published generations expose to queries and to the update
//!   engine's landmark searches: traversal is sequential memory access
//!   instead of one pointer chase per vertex, and consecutive
//!   generations share the frozen base until a compaction.
//!
//! Remaining modules:
//!
//! * [`update`] — the update/batch model with the paper's normalization
//!   rules (cancel insert+delete pairs, drop invalid/duplicate updates),
//! * [`bfs`] — reusable BFS workspaces, including the distance-bounded
//!   bidirectional search that powers query answering (Section 4),
//! * [`generators`] — seeded synthetic graphs standing in for the
//!   paper's 14 datasets (see DESIGN.md §4),
//! * [`stream`] — an evolving timestamped edge stream standing in for
//!   the real dynamic Wikipedia networks,
//! * [`io`] — SNAP-style edge-list reading/writing,
//! * [`components`] — connectivity helpers used by tests and workloads.

pub mod bfs;
pub mod components;
pub mod csr;
pub mod digraph;
pub mod generators;
pub mod graph;
pub mod io;
pub mod stream;
pub mod update;
pub mod weighted;

pub use csr::{
    CompactionPolicy, CsrDelta, CsrDiDelta, CsrGraph, VertexRemap, WeightedCsrDelta,
    WeightedCsrGraph,
};
pub use digraph::DynamicDiGraph;
pub use graph::DynamicGraph;
pub use update::{Batch, Update};
pub use weighted::WeightedAdjacencyView;

pub use batchhl_common::{Dist, Vertex, INF};

/// Uniform view over the adjacency of directed and undirected graphs.
///
/// Undirected graphs present the same neighbour list in both directions;
/// directed graphs present out- and in-neighbours. The BFS toolkit and
/// the labelling algorithms are generic over this trait so the directed
/// variant of BatchHL (Section 6) reuses the exact same machinery.
/// Every implementation returns *borrowed slices* — the trait never
/// forces an allocation or a boxed iterator on the traversal hot path,
/// and slice `len()` makes the degree accessors O(1) (for CSR views the
/// slice itself is two array reads).
pub trait AdjacencyView {
    /// Number of vertices (`0..n` ids are valid).
    fn num_vertices(&self) -> usize;

    /// Successors of `v` (all neighbours for undirected graphs).
    fn out_neighbors(&self, v: Vertex) -> &[Vertex];

    /// Predecessors of `v` (all neighbours for undirected graphs).
    fn in_neighbors(&self, v: Vertex) -> &[Vertex];

    /// Out-degree of `v` — O(1) for every implementation in this
    /// workspace.
    #[inline]
    fn out_degree(&self, v: Vertex) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v` — O(1) for every implementation in this
    /// workspace.
    #[inline]
    fn in_degree(&self, v: Vertex) -> usize {
        self.in_neighbors(v).len()
    }
}

/// Generic direction-swapping adapter: `Reversed(&g)` presents every
/// arc of `g` flipped, for any [`AdjacencyView`] — dynamic writer
/// graphs and CSR snapshots alike. The backward passes of the directed
/// index run the forward machinery over this view.
#[derive(Debug, Clone, Copy)]
pub struct Reversed<'g, A: ?Sized>(pub &'g A);

impl<A: AdjacencyView + ?Sized> AdjacencyView for Reversed<'_, A> {
    fn num_vertices(&self) -> usize {
        self.0.num_vertices()
    }

    #[inline]
    fn out_neighbors(&self, v: Vertex) -> &[Vertex] {
        self.0.in_neighbors(v)
    }

    #[inline]
    fn in_neighbors(&self, v: Vertex) -> &[Vertex] {
        self.0.out_neighbors(v)
    }
}
