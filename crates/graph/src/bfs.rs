//! BFS toolkit: one-shot distances, reusable workspaces and the
//! distance-bounded bidirectional search of Section 4.
//!
//! Every structure here is generic over [`AdjacencyView`] so the same
//! code serves undirected graphs, directed graphs and reversed views.
//! The workspaces keep their arrays alive between runs and reset them
//! sparsely (only touched entries), which matters when thousands of
//! queries run back-to-back.

use crate::AdjacencyView;
use batchhl_common::{dist_add1, Dist, Vertex, INF};
use std::collections::VecDeque;

/// One-shot BFS distances from `src` following out-edges.
///
/// Returns a dense `Vec` with `INF` for unreachable vertices.
pub fn bfs_distances<A: AdjacencyView>(g: &A, src: Vertex) -> Vec<Dist> {
    let mut dist = vec![INF; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.out_neighbors(v) {
            if dist[w as usize] == INF {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// One-shot BFS distances *to* `dst` following in-edges (equals
/// [`bfs_distances`] on undirected graphs).
pub fn bfs_distances_rev<A: AdjacencyView>(g: &A, dst: Vertex) -> Vec<Dist> {
    let mut dist = vec![INF; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[dst as usize] = 0;
    queue.push_back(dst);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.in_neighbors(v) {
            if dist[w as usize] == INF {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Reusable single-side BFS workspace with sparse reset.
#[derive(Debug, Default)]
pub struct BfsWorkspace {
    dist: Vec<Dist>,
    touched: Vec<Vertex>,
    queue: VecDeque<Vertex>,
}

impl BfsWorkspace {
    pub fn new(n: usize) -> Self {
        BfsWorkspace {
            dist: vec![INF; n],
            touched: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    pub fn grow(&mut self, n: usize) {
        if n > self.dist.len() {
            self.dist.resize(n, INF);
        }
    }

    /// Distance recorded by the last run (`INF` if untouched).
    #[inline]
    pub fn dist(&self, v: Vertex) -> Dist {
        self.dist[v as usize]
    }

    /// Run a BFS from `src`, stopping early once `max_dist` is exceeded.
    /// Returns the touched vertices (in BFS order).
    pub fn run<A: AdjacencyView>(&mut self, g: &A, src: Vertex, max_dist: Dist) -> &[Vertex] {
        self.reset();
        self.grow(g.num_vertices());
        self.dist[src as usize] = 0;
        self.touched.push(src);
        self.queue.push_back(src);
        while let Some(v) = self.queue.pop_front() {
            let dv = self.dist[v as usize];
            if dv >= max_dist {
                break;
            }
            for &w in g.out_neighbors(v) {
                if self.dist[w as usize] == INF {
                    self.dist[w as usize] = dv + 1;
                    self.touched.push(w);
                    self.queue.push_back(w);
                }
            }
        }
        &self.touched
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INF;
        }
        self.touched.clear();
        self.queue.clear();
    }
}

/// Reusable distance-bounded bidirectional BFS (Section 4).
///
/// Computes `d(s, t)` restricted to vertices that pass a filter (the
/// query engine filters out landmarks to search `G[V \ R]`), but only if
/// that distance is strictly below `bound`; otherwise reports `None`.
/// The search expands the side with the smaller frontier volume (sum of
/// degrees), the optimization credited to BiBFS in the paper's baseline
/// list.
#[derive(Debug, Default)]
pub struct BiBfs {
    ds: Vec<Dist>,
    dt: Vec<Dist>,
    touched_s: Vec<Vertex>,
    touched_t: Vec<Vertex>,
    frontier_s: Vec<Vertex>,
    frontier_t: Vec<Vertex>,
    next: Vec<Vertex>,
}

impl BiBfs {
    pub fn new(n: usize) -> Self {
        BiBfs {
            ds: vec![INF; n],
            dt: vec![INF; n],
            ..Default::default()
        }
    }

    pub fn grow(&mut self, n: usize) {
        if n > self.ds.len() {
            self.ds.resize(n, INF);
            self.dt.resize(n, INF);
        }
    }

    /// Exact `d(s, t)` in the subgraph induced by vertices with
    /// `allowed(v)`, provided it is `< bound`; `None` otherwise.
    ///
    /// `s` and `t` must themselves be allowed. `bound = INF` turns this
    /// into an unbounded bidirectional search.
    pub fn run<A, F>(
        &mut self,
        g: &A,
        s: Vertex,
        t: Vertex,
        bound: Dist,
        allowed: F,
    ) -> Option<Dist>
    where
        A: AdjacencyView,
        F: Fn(Vertex) -> bool,
    {
        debug_assert!(allowed(s) && allowed(t), "endpoints must be allowed");
        if bound == 0 {
            return None;
        }
        if s == t {
            return Some(0);
        }
        self.reset();
        self.grow(g.num_vertices());
        self.ds[s as usize] = 0;
        self.dt[t as usize] = 0;
        self.touched_s.push(s);
        self.touched_t.push(t);
        self.frontier_s.push(s);
        self.frontier_t.push(t);
        let (mut ls, mut lt) = (0 as Dist, 0 as Dist);
        let mut best = INF;
        // Frontier volumes (sum of out/in degrees) are maintained
        // incrementally: each expansion accumulates the degrees of the
        // vertices it discovers, so choosing the cheaper side is O(1)
        // per level instead of a rescan of both frontiers. On CSR views
        // the degree reads are two offset loads.
        let mut vol_s = g.out_degree(s);
        let mut vol_t = g.in_degree(t);

        while !self.frontier_s.is_empty() && !self.frontier_t.is_empty() {
            // No undiscovered path can be shorter than ls + lt + 1.
            let horizon = dist_add1(ls.saturating_add(lt));
            if horizon >= best || horizon >= bound {
                break;
            }
            // Expand the cheaper side; `next` is the shared scratch
            // buffer for whichever direction runs, so switching sides
            // reuses the same allocation.
            if vol_s <= vol_t {
                ls += 1;
                self.next.clear();
                let mut vol = 0usize;
                for i in 0..self.frontier_s.len() {
                    let v = self.frontier_s[i];
                    for &w in g.out_neighbors(v) {
                        if !allowed(w) || self.ds[w as usize] != INF {
                            continue;
                        }
                        if self.dt[w as usize] != INF {
                            best = best.min(ls.saturating_add(self.dt[w as usize]));
                        }
                        self.ds[w as usize] = ls;
                        self.touched_s.push(w);
                        self.next.push(w);
                        vol += g.out_degree(w);
                    }
                }
                vol_s = vol;
                std::mem::swap(&mut self.frontier_s, &mut self.next);
            } else {
                lt += 1;
                self.next.clear();
                let mut vol = 0usize;
                for i in 0..self.frontier_t.len() {
                    let v = self.frontier_t[i];
                    for &w in g.in_neighbors(v) {
                        if !allowed(w) || self.dt[w as usize] != INF {
                            continue;
                        }
                        if self.ds[w as usize] != INF {
                            best = best.min(lt.saturating_add(self.ds[w as usize]));
                        }
                        self.dt[w as usize] = lt;
                        self.touched_t.push(w);
                        self.next.push(w);
                        vol += g.in_degree(w);
                    }
                }
                vol_t = vol;
                std::mem::swap(&mut self.frontier_t, &mut self.next);
            }
        }
        (best < bound).then_some(best)
    }

    /// One-sided bounded BFS from `s` over the subgraph of vertices
    /// passing `allowed`, reusing the source-side arrays of the
    /// bidirectional workspace (sparse reset, no allocation in steady
    /// state).
    ///
    /// The one-to-many counterpart of [`BiBfs::run`]: a single sweep
    /// discovers `d(s, v)` for *every* vertex within `bound` hops (or
    /// until at least `cap` vertices have been discovered), so a caller
    /// with many targets pays one traversal instead of one bidirectional
    /// search per target. Afterwards [`BiBfs::swept`] lists the
    /// discovered vertices in nondecreasing-distance order and
    /// [`BiBfs::sweep_dist`] reads their distances; undiscovered
    /// vertices read `INF`.
    ///
    /// The cap is checked at level boundaries only: the level in which
    /// it is crossed always completes, so the swept set is closed under
    /// distance — every vertex at distance ≤ the deepest swept level is
    /// present, never an adjacency-order-dependent subset of a level.
    /// (Top-k callers rely on this to break boundary ties
    /// deterministically rather than by iteration order.)
    ///
    /// `s` must itself be allowed. `bound = INF` sweeps the whole
    /// reachable component; `cap = usize::MAX` disables the count stop.
    pub fn sweep<A, F>(&mut self, g: &A, s: Vertex, bound: Dist, cap: usize, allowed: F)
    where
        A: AdjacencyView,
        F: Fn(Vertex) -> bool,
    {
        debug_assert!(allowed(s), "sweep source must be allowed");
        self.reset();
        self.grow(g.num_vertices());
        if cap == 0 {
            return;
        }
        self.ds[s as usize] = 0;
        self.touched_s.push(s);
        self.frontier_s.push(s);
        let mut level: Dist = 0;
        while !self.frontier_s.is_empty() && level < bound && self.touched_s.len() < cap {
            level += 1;
            self.next.clear();
            for i in 0..self.frontier_s.len() {
                let v = self.frontier_s[i];
                for &w in g.out_neighbors(v) {
                    if !allowed(w) || self.ds[w as usize] != INF {
                        continue;
                    }
                    self.ds[w as usize] = level;
                    self.touched_s.push(w);
                    self.next.push(w);
                }
            }
            std::mem::swap(&mut self.frontier_s, &mut self.next);
        }
        self.frontier_s.clear();
        self.next.clear();
    }

    /// The vertices discovered by the last [`BiBfs::sweep`], in
    /// nondecreasing-distance (BFS) order; the source comes first.
    #[inline]
    pub fn swept(&self) -> &[Vertex] {
        &self.touched_s
    }

    /// Distance recorded by the last [`BiBfs::sweep`] (`INF` when the
    /// sweep did not reach `v`).
    #[inline]
    pub fn sweep_dist(&self, v: Vertex) -> Dist {
        self.ds[v as usize]
    }

    fn reset(&mut self) {
        for &v in &self.touched_s {
            self.ds[v as usize] = INF;
        }
        for &v in &self.touched_t {
            self.dt[v as usize] = INF;
        }
        self.touched_s.clear();
        self.touched_t.clear();
        self.frontier_s.clear();
        self.frontier_t.clear();
        self.next.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DynamicDiGraph;
    use crate::graph::DynamicGraph;

    fn path(n: usize) -> DynamicGraph {
        let edges: Vec<(Vertex, Vertex)> = (0..n as Vertex - 1).map(|i| (i, i + 1)).collect();
        DynamicGraph::from_edges(n, &edges)
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d = bfs_distances(&g, 2);
        assert_eq!(d, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_disconnected() {
        let g = DynamicGraph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, INF, INF]);
    }

    #[test]
    fn bfs_directed_vs_reverse() {
        let g = DynamicDiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 3), vec![INF, INF, INF, 0]);
        assert_eq!(bfs_distances_rev(&g, 3), vec![3, 2, 1, 0]);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = path(6);
        let mut ws = BfsWorkspace::new(6);
        ws.run(&g, 0, INF);
        assert_eq!(ws.dist(5), 5);
        ws.run(&g, 5, INF);
        assert_eq!(ws.dist(0), 5);
        assert_eq!(ws.dist(5), 0);
        // Bounded run leaves far vertices untouched.
        ws.run(&g, 0, 2);
        assert_eq!(ws.dist(2), 2);
        assert_eq!(ws.dist(4), INF);
    }

    #[test]
    fn bibfs_matches_bfs_exhaustively() {
        let g =
            DynamicGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (2, 5), (5, 6)]);
        let mut bi = BiBfs::new(8);
        for s in 0..8u32 {
            let d = bfs_distances(&g, s);
            for t in 0..8u32 {
                let got = bi.run(&g, s, t, INF, |_| true);
                let want = (d[t as usize] != INF).then_some(d[t as usize]);
                assert_eq!(got, want, "s={s} t={t}");
            }
        }
    }

    #[test]
    fn bibfs_respects_bound() {
        let g = path(10);
        let mut bi = BiBfs::new(10);
        assert_eq!(bi.run(&g, 0, 9, INF, |_| true), Some(9));
        assert_eq!(bi.run(&g, 0, 9, 9, |_| true), None);
        assert_eq!(bi.run(&g, 0, 9, 10, |_| true), Some(9));
        assert_eq!(bi.run(&g, 0, 0, 0, |_| true), None, "bound 0 finds nothing");
    }

    #[test]
    fn bibfs_respects_exclusions() {
        // 0-1-2 and 0-3-4-2: blocking 1 forces the long way.
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (0, 3), (3, 4), (4, 2)]);
        let mut bi = BiBfs::new(5);
        assert_eq!(bi.run(&g, 0, 2, INF, |_| true), Some(2));
        assert_eq!(bi.run(&g, 0, 2, INF, |v| v != 1), Some(3));
        assert_eq!(bi.run(&g, 0, 2, INF, |v| v != 1 && v != 4), None);
    }

    #[test]
    fn sweep_matches_bfs_and_orders_by_distance() {
        let g =
            DynamicGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (2, 5), (5, 6)]);
        let mut bi = BiBfs::new(8);
        for s in 0..8u32 {
            let truth = bfs_distances(&g, s);
            bi.sweep(&g, s, INF, usize::MAX, |_| true);
            for t in 0..8u32 {
                assert_eq!(bi.sweep_dist(t), truth[t as usize], "s={s} t={t}");
            }
            assert_eq!(bi.swept()[0], s);
            let dists: Vec<Dist> = bi.swept().iter().map(|&v| bi.sweep_dist(v)).collect();
            assert!(dists.windows(2).all(|w| w[0] <= w[1]), "sweep order");
            // Interleave with a bidirectional run: state must stay clean.
            assert_eq!(
                bi.run(&g, s, (s + 1) % 8, INF, |_| true),
                (truth[((s + 1) % 8) as usize] != INF).then_some(truth[((s + 1) % 8) as usize])
            );
        }
    }

    #[test]
    fn sweep_respects_bound_cap_and_filter() {
        let g = path(10);
        let mut bi = BiBfs::new(10);
        bi.sweep(&g, 0, 3, usize::MAX, |_| true);
        assert_eq!(bi.sweep_dist(3), 3);
        assert_eq!(bi.sweep_dist(4), INF, "beyond the bound");
        bi.sweep(&g, 0, INF, 4, |_| true);
        assert_eq!(bi.swept(), &[0, 1, 2, 3], "cap stops discovery");
        bi.sweep(&g, 0, INF, usize::MAX, |v| v != 4);
        assert_eq!(bi.sweep_dist(3), 3);
        assert_eq!(bi.sweep_dist(5), INF, "filter blocks the path");
        bi.sweep(&g, 0, INF, 0, |_| true);
        assert!(bi.swept().is_empty());
    }

    #[test]
    fn sweep_cap_completes_the_final_level() {
        // Star: 1..=5 are all at distance 1 from 0. A cap of 3 must
        // still discover the whole level — never an
        // adjacency-order-dependent prefix of it.
        let g = DynamicGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let mut bi = BiBfs::new(6);
        bi.sweep(&g, 0, INF, 3, |_| true);
        assert_eq!(bi.swept().len(), 6, "the capped level completes");
        for v in 1..6u32 {
            assert_eq!(bi.sweep_dist(v), 1);
        }
    }

    #[test]
    fn sweep_directed_follows_out_arcs() {
        let g = DynamicDiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut bi = BiBfs::new(4);
        bi.sweep(&g, 1, INF, usize::MAX, |_| true);
        assert_eq!(bi.sweep_dist(3), 2);
        assert_eq!(bi.sweep_dist(0), 3);
    }

    #[test]
    fn bibfs_directed() {
        let g = DynamicDiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut bi = BiBfs::new(4);
        assert_eq!(bi.run(&g, 0, 3, INF, |_| true), Some(3));
        assert_eq!(bi.run(&g, 3, 0, INF, |_| true), Some(1));
    }
}
