//! Weighted dynamic graphs and the Dijkstra toolkit (Section 6 of the
//! paper: "for weighted graphs, we can use pruned Dijkstra's algorithm
//! in place of pruned BFSs", with updates as weight increases/decreases
//! instead of deletions/insertions).
//!
//! Weights are positive integers (`1..`); zero weights would break the
//! monotone settle-order arguments that the batch machinery's proofs
//! rely on (distances live in `N⁺`, Definition 3.2).

use crate::update::Update;
use batchhl_common::{Dist, Vertex, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Edge weight (positive).
pub type Weight = u32;

/// Uniform view over weighted adjacency, mirroring
/// [`crate::AdjacencyView`] for `(neighbour, weight)` lists: the
/// Dijkstra toolkit and the weighted update kernel are generic over
/// this trait, so they traverse either the dynamic writer graph or the
/// published CSR snapshot ([`crate::csr::WeightedCsrDelta`]). Always
/// borrowed slices — no allocation on the traversal path.
pub trait WeightedAdjacencyView {
    /// Number of vertices (`0..n` ids are valid).
    fn num_vertices(&self) -> usize;

    /// Sorted `(neighbour, weight)` slice of `v`.
    fn weighted_neighbors(&self, v: Vertex) -> &[(Vertex, Weight)];

    /// O(1) degree.
    #[inline]
    fn weighted_degree(&self, v: Vertex) -> usize {
        self.weighted_neighbors(v).len()
    }
}

impl WeightedAdjacencyView for WeightedGraph {
    fn num_vertices(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn weighted_neighbors(&self, v: Vertex) -> &[(Vertex, Weight)] {
        self.neighbors(v)
    }
}

/// An undirected simple graph with positive integer edge weights.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WeightedGraph {
    /// Sorted `(neighbour, weight)` lists, mirrored on both endpoints.
    adj: Vec<Vec<(Vertex, Weight)>>,
    num_edges: usize,
}

impl WeightedGraph {
    pub fn new(n: usize) -> Self {
        WeightedGraph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Build from weighted edges, ignoring self-loops and duplicates.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex, Weight)]) -> Self {
        let mut g = WeightedGraph::new(n);
        for &(u, v, w) in edges {
            g.insert_edge(u, v, w);
        }
        g
    }

    /// Assemble from complete per-vertex `(neighbour, weight)` lists
    /// (each sorted by neighbour, mirrored with equal weights on both
    /// endpoints) — the load path of the binary CSR snapshot format in
    /// [`crate::io`]. Structural validation included.
    pub fn try_from_adjacency(adj: Vec<Vec<(Vertex, Weight)>>) -> Result<Self, String> {
        let half_edges: usize = adj.iter().map(Vec::len).sum();
        if !half_edges.is_multiple_of(2) {
            return Err("odd half-edge count: adjacency not mirrored".into());
        }
        let g = WeightedGraph {
            adj,
            num_edges: half_edges / 2,
        };
        g.validate()?;
        Ok(g)
    }

    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.adj.len() {
            self.adj.resize(n, Vec::new());
        }
    }

    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.adj[v as usize].len()
    }

    /// Sorted `(neighbour, weight)` slice.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[(Vertex, Weight)] {
        &self.adj[v as usize]
    }

    /// Current weight of edge `{u, v}`, if present.
    pub fn weight(&self, u: Vertex, v: Vertex) -> Option<Weight> {
        self.adj[u as usize]
            .binary_search_by_key(&v, |&(x, _)| x)
            .ok()
            .map(|i| self.adj[u as usize][i].1)
    }

    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.weight(u, v).is_some()
    }

    /// Insert edge `{u, v}` with weight `w ≥ 1`. Invalid (returns
    /// `false`) for self-loops and existing edges.
    pub fn insert_edge(&mut self, u: Vertex, v: Vertex, w: Weight) -> bool {
        assert!(w >= 1, "weights must be positive");
        if u == v {
            return false;
        }
        let max = u.max(v) as usize;
        assert!(max < self.adj.len(), "vertex {max} out of bounds");
        match self.adj[u as usize].binary_search_by_key(&v, |&(x, _)| x) {
            Ok(_) => false,
            Err(iu) => {
                let iv = self.adj[v as usize]
                    .binary_search_by_key(&u, |&(x, _)| x)
                    .unwrap_err();
                self.adj[u as usize].insert(iu, (v, w));
                self.adj[v as usize].insert(iv, (u, w));
                self.num_edges += 1;
                true
            }
        }
    }

    pub fn remove_edge(&mut self, u: Vertex, v: Vertex) -> bool {
        match self.adj[u as usize].binary_search_by_key(&v, |&(x, _)| x) {
            Err(_) => false,
            Ok(iu) => {
                let iv = self.adj[v as usize]
                    .binary_search_by_key(&u, |&(x, _)| x)
                    .unwrap();
                self.adj[u as usize].remove(iu);
                self.adj[v as usize].remove(iv);
                self.num_edges -= 1;
                true
            }
        }
    }

    /// Change the weight of an existing edge; returns the old weight.
    pub fn set_weight(&mut self, u: Vertex, v: Vertex, w: Weight) -> Option<Weight> {
        assert!(w >= 1, "weights must be positive");
        let iu = self.adj[u as usize]
            .binary_search_by_key(&v, |&(x, _)| x)
            .ok()?;
        let iv = self.adj[v as usize]
            .binary_search_by_key(&u, |&(x, _)| x)
            .ok()?;
        let old = self.adj[u as usize][iu].1;
        self.adj[u as usize][iu].1 = w;
        self.adj[v as usize][iv].1 = w;
        Some(old)
    }

    /// All edges as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex, Weight)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as Vertex;
            nbrs.iter()
                .copied()
                .filter(move |&(v, _)| u < v)
                .map(move |(v, w)| (u, v, w))
        })
    }

    pub fn vertices_by_degree(&self) -> Vec<Vertex> {
        let mut order: Vec<Vertex> = (0..self.num_vertices() as Vertex).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(self.degree(v)), v));
        order
    }

    pub fn validate(&self) -> Result<(), String> {
        let mut half = 0usize;
        for (u, nbrs) in self.adj.iter().enumerate() {
            if !nbrs.windows(2).all(|p| p[0].0 < p[1].0) {
                return Err(format!("adjacency of {u} not sorted"));
            }
            for &(v, w) in nbrs {
                if w == 0 {
                    return Err(format!("zero weight on ({u},{v})"));
                }
                if v as usize == u {
                    return Err(format!("self-loop at {u}"));
                }
                match self.weight(v, u as Vertex) {
                    Some(wv) if wv == w => {}
                    _ => return Err(format!("edge ({u},{v}) not mirrored with weight {w}")),
                }
            }
            half += nbrs.len();
        }
        if half != 2 * self.num_edges {
            return Err("edge count mismatch".into());
        }
        Ok(())
    }
}

/// A weighted update: structural or a weight change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightedUpdate {
    /// Add edge `{a, b}` with a weight.
    Insert(Vertex, Vertex, Weight),
    /// Remove edge `{a, b}`.
    Delete(Vertex, Vertex),
    /// Set the weight of existing edge `{a, b}`.
    SetWeight(Vertex, Vertex, Weight),
}

impl WeightedUpdate {
    pub fn endpoints(self) -> (Vertex, Vertex) {
        match self {
            WeightedUpdate::Insert(a, b, _)
            | WeightedUpdate::Delete(a, b)
            | WeightedUpdate::SetWeight(a, b, _) => (a, b),
        }
    }

    /// Canonical endpoint order (`a ≤ b`).
    pub fn canonical(self) -> Self {
        let (a, b) = self.endpoints();
        if a <= b {
            return self;
        }
        match self {
            WeightedUpdate::Insert(_, _, w) => WeightedUpdate::Insert(b, a, w),
            WeightedUpdate::Delete(..) => WeightedUpdate::Delete(b, a),
            WeightedUpdate::SetWeight(_, _, w) => WeightedUpdate::SetWeight(b, a, w),
        }
    }

    /// View an unweighted update as a weighted one (unit weights).
    pub fn from_unweighted(u: Update) -> Self {
        match u {
            Update::Insert(a, b) => WeightedUpdate::Insert(a, b, 1),
            Update::Delete(a, b) => WeightedUpdate::Delete(a, b),
        }
    }
}

/// Dijkstra distances from `src` (binary heap; weights ≥ 1).
pub fn dijkstra<W: WeightedAdjacencyView>(g: &W, src: Vertex) -> Vec<Dist> {
    let mut dist = vec![INF; g.num_vertices()];
    let mut heap: BinaryHeap<Reverse<(Dist, Vertex)>> = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for &(w, wt) in g.weighted_neighbors(v) {
            let nd = d.saturating_add(wt);
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                heap.push(Reverse((nd, w)));
            }
        }
    }
    dist
}

/// Distance-bounded bidirectional Dijkstra on the subgraph of vertices
/// passing `allowed`, reporting `d(s,t)` only if `< bound`.
#[derive(Debug, Default)]
pub struct BiDijkstra {
    ds: Vec<Dist>,
    dt: Vec<Dist>,
    touched_s: Vec<Vertex>,
    touched_t: Vec<Vertex>,
    /// Settle order of the last [`BiDijkstra::sweep`].
    order: Vec<Vertex>,
}

impl BiDijkstra {
    pub fn new(n: usize) -> Self {
        BiDijkstra {
            ds: vec![INF; n],
            dt: vec![INF; n],
            ..Default::default()
        }
    }

    pub fn grow(&mut self, n: usize) {
        if n > self.ds.len() {
            self.ds.resize(n, INF);
            self.dt.resize(n, INF);
        }
    }

    pub fn run<W: WeightedAdjacencyView, F: Fn(Vertex) -> bool>(
        &mut self,
        g: &W,
        s: Vertex,
        t: Vertex,
        bound: Dist,
        allowed: F,
    ) -> Option<Dist> {
        if bound == 0 {
            return None;
        }
        if s == t {
            return Some(0);
        }
        self.reset();
        self.grow(g.num_vertices());
        let mut hs: BinaryHeap<Reverse<(Dist, Vertex)>> = BinaryHeap::new();
        let mut ht: BinaryHeap<Reverse<(Dist, Vertex)>> = BinaryHeap::new();
        self.ds[s as usize] = 0;
        self.dt[t as usize] = 0;
        self.touched_s.push(s);
        self.touched_t.push(t);
        hs.push(Reverse((0, s)));
        ht.push(Reverse((0, t)));
        let mut best = INF;
        // Alternate by smaller settled radius; stop when the radii sum
        // can no longer beat the incumbent.
        loop {
            let rs = hs.peek().map(|&Reverse((d, _))| d);
            let rt = ht.peek().map(|&Reverse((d, _))| d);
            let (expand_s, radius_sum) = match (rs, rt) {
                (None, None) => break,
                (Some(a), None) => (true, a),
                (None, Some(b)) => (false, b),
                (Some(a), Some(b)) => (a <= b, a.saturating_add(b)),
            };
            if radius_sum >= best || radius_sum >= bound {
                break;
            }
            let (heap, dist, other, touched) = if expand_s {
                (&mut hs, &mut self.ds, &self.dt, &mut self.touched_s)
            } else {
                (&mut ht, &mut self.dt, &self.ds, &mut self.touched_t)
            };
            if let Some(Reverse((d, v))) = heap.pop() {
                if d > dist[v as usize] {
                    continue;
                }
                if other[v as usize] != INF {
                    best = best.min(d.saturating_add(other[v as usize]));
                }
                for &(w, wt) in g.weighted_neighbors(v) {
                    if !allowed(w) {
                        continue;
                    }
                    let nd = d.saturating_add(wt);
                    if nd < dist[w as usize] {
                        if dist[w as usize] == INF {
                            touched.push(w);
                        }
                        dist[w as usize] = nd;
                        heap.push(Reverse((nd, w)));
                        if other[w as usize] != INF {
                            best = best.min(nd.saturating_add(other[w as usize]));
                        }
                    }
                }
            }
        }
        (best < bound).then_some(best)
    }

    /// One-sided bounded Dijkstra from `s` over the subgraph of
    /// vertices passing `allowed` — the weighted counterpart of
    /// [`crate::bfs::BiBfs::sweep`]. One sweep settles `d(s, v)` for
    /// every vertex within distance `bound` (or until `cap` vertices
    /// have settled), so a caller with many targets pays one traversal
    /// instead of one bidirectional search per target.
    ///
    /// Afterwards [`BiDijkstra::swept`] lists the settled vertices in
    /// nondecreasing-distance order (source first) and
    /// [`BiDijkstra::sweep_dist`] reads distances; a vertex that did not
    /// settle reads either `INF` or a tentative value strictly greater
    /// than the sweep's stopping radius, so `min(bound_v, sweep_dist(v))`
    /// is exact for any per-target bound `bound_v ≤ bound`.
    pub fn sweep<W, F>(&mut self, g: &W, s: Vertex, bound: Dist, cap: usize, allowed: F)
    where
        W: WeightedAdjacencyView,
        F: Fn(Vertex) -> bool,
    {
        debug_assert!(allowed(s), "sweep source must be allowed");
        self.reset();
        self.grow(g.num_vertices());
        self.order.clear();
        if cap == 0 {
            return;
        }
        let mut heap: BinaryHeap<Reverse<(Dist, Vertex)>> = BinaryHeap::new();
        self.ds[s as usize] = 0;
        self.touched_s.push(s);
        heap.push(Reverse((0, s)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > self.ds[v as usize] {
                continue; // stale heap entry
            }
            if d > bound {
                break;
            }
            self.order.push(v);
            if self.order.len() >= cap {
                break;
            }
            for &(w, wt) in g.weighted_neighbors(v) {
                if !allowed(w) {
                    continue;
                }
                let nd = d.saturating_add(wt);
                if nd < self.ds[w as usize] {
                    if self.ds[w as usize] == INF {
                        self.touched_s.push(w);
                    }
                    self.ds[w as usize] = nd;
                    heap.push(Reverse((nd, w)));
                }
            }
        }
    }

    /// The vertices settled by the last [`BiDijkstra::sweep`], in
    /// nondecreasing-distance order; the source comes first.
    #[inline]
    pub fn swept(&self) -> &[Vertex] {
        &self.order
    }

    /// Distance recorded by the last [`BiDijkstra::sweep`] (`INF` when
    /// the sweep never reached `v`; only values of settled vertices —
    /// those in [`BiDijkstra::swept`] — are final).
    #[inline]
    pub fn sweep_dist(&self, v: Vertex) -> Dist {
        self.ds[v as usize]
    }

    fn reset(&mut self) {
        for &v in &self.touched_s {
            self.ds[v as usize] = INF;
        }
        for &v in &self.touched_t {
            self.dt[v as usize] = INF;
        }
        self.touched_s.clear();
        self.touched_t.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wpath(ws: &[Weight]) -> WeightedGraph {
        let mut g = WeightedGraph::new(ws.len() + 1);
        for (i, &w) in ws.iter().enumerate() {
            g.insert_edge(i as Vertex, i as Vertex + 1, w);
        }
        g
    }

    #[test]
    fn insert_remove_set_weight() {
        let mut g = WeightedGraph::new(4);
        assert!(g.insert_edge(0, 1, 5));
        assert!(!g.insert_edge(1, 0, 3), "duplicate");
        assert_eq!(g.weight(0, 1), Some(5));
        assert_eq!(g.set_weight(1, 0, 2), Some(5));
        assert_eq!(g.weight(0, 1), Some(2));
        assert_eq!(g.set_weight(0, 3, 9), None, "absent edge");
        assert!(g.remove_edge(0, 1));
        assert!(!g.has_edge(0, 1));
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let mut g = WeightedGraph::new(2);
        g.insert_edge(0, 1, 0);
    }

    #[test]
    fn dijkstra_weighted_path() {
        let g = wpath(&[3, 1, 4, 1]);
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0, 3, 4, 8, 9]);
    }

    #[test]
    fn dijkstra_prefers_light_detour() {
        // 0-1 weight 10, 0-2 w1, 2-1 w1: d(0,1)=2.
        let g = WeightedGraph::from_edges(3, &[(0, 1, 10), (0, 2, 1), (2, 1, 1)]);
        assert_eq!(dijkstra(&g, 0)[1], 2);
    }

    #[test]
    fn bidijkstra_matches_dijkstra() {
        use batchhl_common::SplitMix64;
        let mut rng = SplitMix64::new(5);
        let mut g = WeightedGraph::new(40);
        while g.num_edges() < 90 {
            let a = rng.below(40) as Vertex;
            let b = rng.below(40) as Vertex;
            if a != b {
                g.insert_edge(a, b, 1 + rng.below(9) as Weight);
            }
        }
        let mut bi = BiDijkstra::new(40);
        for s in 0..40u32 {
            let truth = dijkstra(&g, s);
            for t in 0..40u32 {
                let got = bi.run(&g, s, t, INF, |_| true).unwrap_or(INF);
                assert_eq!(got, truth[t as usize], "({s},{t})");
            }
        }
    }

    #[test]
    fn bidijkstra_respects_bound_and_filter() {
        let g = wpath(&[2, 2, 2]);
        let mut bi = BiDijkstra::new(4);
        assert_eq!(bi.run(&g, 0, 3, INF, |_| true), Some(6));
        assert_eq!(bi.run(&g, 0, 3, 6, |_| true), None);
        assert_eq!(bi.run(&g, 0, 3, 7, |_| true), Some(6));
        assert_eq!(bi.run(&g, 0, 3, INF, |v| v != 1), None);
    }

    #[test]
    fn sweep_matches_dijkstra_and_settles_in_order() {
        use batchhl_common::SplitMix64;
        let mut rng = SplitMix64::new(9);
        let mut g = WeightedGraph::new(30);
        while g.num_edges() < 70 {
            let a = rng.below(30) as Vertex;
            let b = rng.below(30) as Vertex;
            if a != b {
                g.insert_edge(a, b, 1 + rng.below(7) as Weight);
            }
        }
        let mut bi = BiDijkstra::new(30);
        for s in (0..30u32).step_by(3) {
            let truth = dijkstra(&g, s);
            bi.sweep(&g, s, INF, usize::MAX, |_| true);
            for t in 0..30u32 {
                assert_eq!(bi.sweep_dist(t), truth[t as usize], "({s},{t})");
            }
            assert_eq!(bi.swept()[0], s);
            let dists: Vec<Dist> = bi.swept().iter().map(|&v| bi.sweep_dist(v)).collect();
            assert!(dists.windows(2).all(|w| w[0] <= w[1]), "settle order");
            // Interleaving with bidirectional runs must stay clean.
            assert_eq!(
                bi.run(&g, s, (s + 7) % 30, INF, |_| true).unwrap_or(INF),
                truth[((s + 7) % 30) as usize]
            );
        }
    }

    #[test]
    fn sweep_respects_bound_cap_and_filter() {
        let g = wpath(&[2, 2, 2, 2]);
        let mut bi = BiDijkstra::new(5);
        bi.sweep(&g, 0, 4, usize::MAX, |_| true);
        assert_eq!(bi.swept(), &[0, 1, 2], "vertices within distance 4");
        assert_eq!(bi.sweep_dist(2), 4);
        bi.sweep(&g, 0, INF, 2, |_| true);
        assert_eq!(bi.swept(), &[0, 1], "cap stops settling");
        bi.sweep(&g, 0, INF, usize::MAX, |v| v != 2);
        assert_eq!(bi.sweep_dist(1), 2);
        assert_eq!(bi.sweep_dist(3), INF, "filter blocks the path");
    }

    #[test]
    fn weighted_update_canonical() {
        assert_eq!(
            WeightedUpdate::Insert(5, 2, 7).canonical(),
            WeightedUpdate::Insert(2, 5, 7)
        );
        assert_eq!(
            WeightedUpdate::from_unweighted(Update::Delete(1, 2)),
            WeightedUpdate::Delete(1, 2)
        );
    }
}
