//! Updates and batch updates (Section 3 of the paper).
//!
//! A batch update is a sequence of edge insertions and deletions. The
//! paper's normalization rules are implemented by [`Batch::normalize`]:
//!
//! * self-loops are dropped,
//! * "in the case that the same edge is being inserted and deleted
//!   within one batch update, we simply eliminate both of them",
//! * duplicate updates collapse to one,
//! * *invalid* updates (inserting a present edge, deleting an absent
//!   one) are ignored.
//!
//! After normalization a batch is a conflict-free set: each edge appears
//! at most once, and applying the batch in any order yields the same
//! graph `G′`. The batch-dynamic algorithms require normalized batches;
//! [`crate::graph::DynamicGraph::apply_batch`] tolerates arbitrary ones.

use crate::digraph::DynamicDiGraph;
use crate::graph::DynamicGraph;
use batchhl_common::{FxHashMap, Vertex};

/// A single edge update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Update {
    /// Add edge `(a, b)` (undirected: `{a, b}`; directed: `a → b`).
    Insert(Vertex, Vertex),
    /// Remove edge `(a, b)`.
    Delete(Vertex, Vertex),
}

impl Update {
    #[inline]
    pub fn endpoints(self) -> (Vertex, Vertex) {
        match self {
            Update::Insert(a, b) | Update::Delete(a, b) => (a, b),
        }
    }

    #[inline]
    pub fn is_insert(self) -> bool {
        matches!(self, Update::Insert(..))
    }

    #[inline]
    pub fn is_delete(self) -> bool {
        matches!(self, Update::Delete(..))
    }

    /// Same update with endpoints ordered `a ≤ b` (undirected canonical
    /// form).
    #[inline]
    pub fn canonical(self) -> Update {
        match self {
            Update::Insert(a, b) if a > b => Update::Insert(b, a),
            Update::Delete(a, b) if a > b => Update::Delete(b, a),
            u => u,
        }
    }

    /// The update that undoes this one.
    #[inline]
    pub fn inverse(self) -> Update {
        match self {
            Update::Insert(a, b) => Update::Delete(a, b),
            Update::Delete(a, b) => Update::Insert(a, b),
        }
    }
}

/// A batch of edge updates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Batch {
    updates: Vec<Update>,
}

impl Batch {
    pub fn new() -> Self {
        Batch::default()
    }

    pub fn from_updates(updates: Vec<Update>) -> Self {
        Batch { updates }
    }

    pub fn push(&mut self, u: Update) {
        self.updates.push(u);
    }

    pub fn insert(&mut self, a: Vertex, b: Vertex) {
        self.updates.push(Update::Insert(a, b));
    }

    pub fn delete(&mut self, a: Vertex, b: Vertex) {
        self.updates.push(Update::Delete(a, b));
    }

    pub fn len(&self) -> usize {
        self.updates.len()
    }

    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// Distinct endpoints of this batch's updates, sorted ascending —
    /// the vertices whose adjacency applying the batch changes, and
    /// therefore what the CSR publication path re-freezes into the
    /// delta overlay.
    pub fn touched_vertices(&self) -> Vec<Vertex> {
        let mut touched: Vec<Vertex> = self
            .updates
            .iter()
            .flat_map(|u| {
                let (a, b) = u.endpoints();
                [a, b]
            })
            .collect();
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    pub fn num_insertions(&self) -> usize {
        self.updates.iter().filter(|u| u.is_insert()).count()
    }

    pub fn num_deletions(&self) -> usize {
        self.updates.iter().filter(|u| u.is_delete()).count()
    }

    /// The batch that undoes this one (meaningful for normalized
    /// batches, where updates commute).
    pub fn inverse(&self) -> Batch {
        Batch {
            updates: self.updates.iter().rev().map(|u| u.inverse()).collect(),
        }
    }

    /// Split into the deletion-only and insertion-only sub-batches used
    /// by the BHLₛ variant (deletions first, matching the paper's
    /// sequential sub-batch processing).
    pub fn split(&self) -> (Batch, Batch) {
        let deletions = self
            .updates
            .iter()
            .copied()
            .filter(|u| u.is_delete())
            .collect();
        let insertions = self
            .updates
            .iter()
            .copied()
            .filter(|u| u.is_insert())
            .collect();
        (
            Batch { updates: deletions },
            Batch {
                updates: insertions,
            },
        )
    }

    /// Normalize against an undirected graph (see module docs). The
    /// result contains only *valid, conflict-free* canonical updates.
    pub fn normalize(&self, g: &DynamicGraph) -> Batch {
        self.normalize_with(
            |a, b| {
                (a as usize) < g.num_vertices()
                    && (b as usize) < g.num_vertices()
                    && g.has_edge(a, b)
            },
            true,
        )
    }

    /// Normalize against a directed graph: endpoints keep their order.
    pub fn normalize_directed(&self, g: &DynamicDiGraph) -> Batch {
        self.normalize_with(
            |a, b| {
                (a as usize) < g.num_vertices()
                    && (b as usize) < g.num_vertices()
                    && g.has_edge(a, b)
            },
            false,
        )
    }

    fn normalize_with(&self, has_edge: impl Fn(Vertex, Vertex) -> bool, canonical: bool) -> Batch {
        // Last-writer-wins per edge would be order-dependent; the paper
        // instead *cancels* edges that are both inserted and deleted.
        // Track the net effect per edge: Some(Insert) / Some(Delete) /
        // cancelled (removed from the map's live set).
        #[derive(Clone, Copy, PartialEq)]
        enum NetEffect {
            Insert,
            Delete,
            Cancelled,
        }
        let mut net: FxHashMap<(Vertex, Vertex), NetEffect> = FxHashMap::default();
        let mut order: Vec<(Vertex, Vertex)> = Vec::new();
        for u in &self.updates {
            let u = if canonical { u.canonical() } else { *u };
            let (a, b) = u.endpoints();
            if a == b {
                continue;
            }
            let kind = if u.is_insert() {
                NetEffect::Insert
            } else {
                NetEffect::Delete
            };
            match net.get_mut(&(a, b)) {
                None => {
                    net.insert((a, b), kind);
                    order.push((a, b));
                }
                Some(existing) => {
                    if *existing != kind && *existing != NetEffect::Cancelled {
                        *existing = NetEffect::Cancelled;
                    }
                    // duplicate of same kind: collapse (keep existing)
                }
            }
        }
        let mut out = Vec::with_capacity(order.len());
        for (a, b) in order {
            match net[&(a, b)] {
                NetEffect::Cancelled => {}
                NetEffect::Insert => {
                    if !has_edge(a, b) {
                        out.push(Update::Insert(a, b));
                    }
                }
                NetEffect::Delete => {
                    if has_edge(a, b) {
                        out.push(Update::Delete(a, b));
                    }
                }
            }
        }
        Batch { updates: out }
    }
}

impl FromIterator<Update> for Batch {
    fn from_iter<T: IntoIterator<Item = Update>>(iter: T) -> Self {
        Batch {
            updates: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> DynamicGraph {
        DynamicGraph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn canonicalization() {
        assert_eq!(Update::Insert(3, 1).canonical(), Update::Insert(1, 3));
        assert_eq!(Update::Delete(1, 3).canonical(), Update::Delete(1, 3));
    }

    #[test]
    fn normalize_drops_self_loops_and_duplicates() {
        let g = path3();
        let b = Batch::from_updates(vec![
            Update::Insert(0, 2),
            Update::Insert(2, 0),
            Update::Insert(1, 1),
        ]);
        let n = b.normalize(&g);
        assert_eq!(n.updates(), &[Update::Insert(0, 2)]);
    }

    #[test]
    fn normalize_cancels_insert_delete_pairs() {
        let g = path3();
        // (0,2) inserted then deleted: both eliminated (paper Sec. 3).
        let b = Batch::from_updates(vec![Update::Insert(0, 2), Update::Delete(2, 0)]);
        assert!(b.normalize(&g).is_empty());
        // Delete of an existing edge then insert: also cancelled — the
        // net effect on G is nil.
        let b = Batch::from_updates(vec![Update::Delete(0, 1), Update::Insert(0, 1)]);
        assert!(b.normalize(&g).is_empty());
    }

    #[test]
    fn normalize_drops_invalid() {
        let g = path3();
        let b = Batch::from_updates(vec![
            Update::Insert(0, 1), // already present
            Update::Delete(0, 2), // absent
            Update::Delete(1, 2), // valid
        ]);
        let n = b.normalize(&g);
        assert_eq!(n.updates(), &[Update::Delete(1, 2)]);
    }

    #[test]
    fn normalize_allows_new_vertices() {
        let g = path3();
        let b = Batch::from_updates(vec![Update::Insert(2, 9)]);
        // Vertex 9 does not exist yet: insertion is valid (vertex
        // insertion is modelled as a batch of edge insertions).
        let n = b.normalize(&g);
        assert_eq!(n.updates(), &[Update::Insert(2, 9)]);
    }

    #[test]
    fn normalized_batch_applies_cleanly_and_inverts() {
        let mut g = path3();
        let b = Batch::from_updates(vec![
            Update::Insert(0, 2),
            Update::Delete(0, 1),
            Update::Insert(1, 1),
            Update::Insert(0, 2),
        ]);
        let n = b.normalize(&g);
        let before = g.clone();
        let applied = g.apply_batch(&n);
        assert_eq!(applied, n.len(), "every normalized update is valid");
        g.apply_batch(&n.inverse());
        assert_eq!(g, before);
    }

    #[test]
    fn split_partitions_by_kind() {
        let b = Batch::from_updates(vec![
            Update::Insert(0, 1),
            Update::Delete(2, 3),
            Update::Insert(4, 5),
        ]);
        let (del, ins) = b.split();
        assert_eq!(del.len(), 1);
        assert_eq!(ins.len(), 2);
        assert!(del.updates().iter().all(|u| u.is_delete()));
        assert!(ins.updates().iter().all(|u| u.is_insert()));
    }

    #[test]
    fn counts() {
        let b = Batch::from_updates(vec![
            Update::Insert(0, 1),
            Update::Delete(2, 3),
            Update::Insert(4, 5),
        ]);
        assert_eq!(b.num_insertions(), 2);
        assert_eq!(b.num_deletions(), 1);
    }
}
