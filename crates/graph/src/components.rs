//! Connectivity helpers used by workload generation and tests.

use crate::graph::DynamicGraph;
use batchhl_common::Vertex;
use std::collections::VecDeque;

/// Connected-component labelling. Returns `(count, component_of)` where
/// `component_of[v]` is a dense component id in `0..count`.
pub fn connected_components(g: &DynamicGraph) -> (usize, Vec<u32>) {
    const UNSET: u32 = u32::MAX;
    let n = g.num_vertices();
    let mut comp = vec![UNSET; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for s in 0..n as Vertex {
        if comp[s as usize] != UNSET {
            continue;
        }
        comp[s as usize] = count;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if comp[w as usize] == UNSET {
                    comp[w as usize] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    (count as usize, comp)
}

/// True iff the graph has exactly one connected component (isolated
/// vertices count as their own components; the empty graph is connected).
pub fn is_connected(g: &DynamicGraph) -> bool {
    connected_components(g).0 <= 1
}

/// Vertices of the largest connected component.
pub fn largest_component(g: &DynamicGraph) -> Vec<Vertex> {
    let (count, comp) = connected_components(g);
    if count == 0 {
        return Vec::new();
    }
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let big = (0..count).max_by_key(|&c| sizes[c]).unwrap() as u32;
    (0..g.num_vertices() as Vertex)
        .filter(|&v| comp[v as usize] == big)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_components() {
        let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (count, comp) = connected_components(&g);
        assert_eq!(count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[5]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn connected_graph() {
        let g = DynamicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(is_connected(&g));
    }

    #[test]
    fn largest_component_picks_biggest() {
        let g = DynamicGraph::from_edges(7, &[(0, 1), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(largest_component(&g), vec![2, 3, 4, 5]);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = DynamicGraph::new(0);
        assert!(is_connected(&g));
        assert!(largest_component(&g).is_empty());
    }
}
