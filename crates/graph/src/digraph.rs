//! Directed dynamic graph (Section 6 of the paper).
//!
//! Stores both out- and in-adjacency (each sorted) so that forward and
//! backward searches are symmetric slice scans. An edge `a → b` appears
//! in `out[a]` and `in[b]`.

use crate::update::{Batch, Update};
use crate::AdjacencyView;
use batchhl_common::Vertex;

/// A directed simple graph under batch updates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DynamicDiGraph {
    out: Vec<Vec<Vertex>>,
    inn: Vec<Vec<Vertex>>,
    num_edges: usize,
}

impl DynamicDiGraph {
    pub fn new(n: usize) -> Self {
        DynamicDiGraph {
            out: vec![Vec::new(); n],
            inn: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Build from directed arcs, ignoring self-loops and duplicates.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Self {
        let mut g = DynamicDiGraph::new(n);
        for &(u, v) in edges {
            g.insert_edge(u, v);
        }
        g
    }

    /// Assemble from complete per-vertex *out*-adjacency lists (each
    /// sorted) — the load path of the binary CSR snapshot format in
    /// [`crate::io`]. The in-lists are rebuilt, so only the forward
    /// direction is persisted. Structural validation included.
    pub fn try_from_out_adjacency(out: Vec<Vec<Vertex>>) -> Result<Self, String> {
        let n = out.len();
        let mut inn = vec![Vec::new(); n];
        for (u, nbrs) in out.iter().enumerate() {
            for &v in nbrs {
                if (v as usize) >= n {
                    return Err(format!("dangling neighbour {v} of {u}"));
                }
                // `u` ascends across the outer loop, so each in-list is
                // built already sorted.
                inn[v as usize].push(u as Vertex);
            }
        }
        let num_edges = out.iter().map(Vec::len).sum();
        let g = DynamicDiGraph {
            out,
            inn,
            num_edges,
        };
        g.validate()?;
        Ok(g)
    }

    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.out.len() {
            self.out.resize(n, Vec::new());
            self.inn.resize(n, Vec::new());
        }
    }

    #[inline]
    pub fn out_degree(&self, v: Vertex) -> usize {
        self.out[v as usize].len()
    }

    #[inline]
    pub fn in_degree(&self, v: Vertex) -> usize {
        self.inn[v as usize].len()
    }

    /// Total degree, the ranking key for landmark selection on directed
    /// graphs.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    #[inline]
    pub fn out_neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.out[v as usize]
    }

    #[inline]
    pub fn in_neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.inn[v as usize]
    }

    /// True iff arc `u → v` exists.
    #[inline]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.out[u as usize].binary_search(&v).is_ok()
    }

    /// Insert arc `u → v`; invalid (`false`) for self-loops/duplicates.
    pub fn insert_edge(&mut self, u: Vertex, v: Vertex) -> bool {
        if u == v {
            return false;
        }
        let max = u.max(v) as usize;
        assert!(max < self.out.len(), "vertex {max} out of bounds");
        match self.out[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(iu) => {
                let iv = self.inn[v as usize].binary_search(&u).unwrap_err();
                self.out[u as usize].insert(iu, v);
                self.inn[v as usize].insert(iv, u);
                self.num_edges += 1;
                true
            }
        }
    }

    /// Remove arc `u → v`; `false` if absent.
    pub fn remove_edge(&mut self, u: Vertex, v: Vertex) -> bool {
        match self.out[u as usize].binary_search(&v) {
            Err(_) => false,
            Ok(iu) => {
                let iv = self.inn[v as usize].binary_search(&u).unwrap();
                self.out[u as usize].remove(iu);
                self.inn[v as usize].remove(iv);
                self.num_edges -= 1;
                true
            }
        }
    }

    /// Apply a batch of directed updates; returns how many changed the
    /// graph.
    pub fn apply_batch(&mut self, batch: &Batch) -> usize {
        let mut applied = 0;
        for u in batch.updates() {
            let (a, b) = u.endpoints();
            self.ensure_vertices(a.max(b) as usize + 1);
            let changed = match u {
                Update::Insert(..) => self.insert_edge(a, b),
                Update::Delete(..) => self.remove_edge(a, b),
            };
            applied += usize::from(changed);
        }
        applied
    }

    /// All arcs `(u, v)` meaning `u → v`.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().copied().map(move |v| (u as Vertex, v)))
    }

    /// The reversed graph (every arc flipped). O(m).
    pub fn reversed(&self) -> DynamicDiGraph {
        DynamicDiGraph {
            out: self.inn.clone(),
            inn: self.out.clone(),
            num_edges: self.num_edges,
        }
    }

    pub fn vertices_by_degree(&self) -> Vec<Vertex> {
        let mut order: Vec<Vertex> = (0..self.num_vertices() as Vertex).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(self.degree(v)), v));
        order
    }

    /// Consistency check: sorted lists, out/in mirroring, edge count.
    pub fn validate(&self) -> Result<(), String> {
        if self.out.len() != self.inn.len() {
            return Err("out/in vertex count mismatch".into());
        }
        let mut arcs = 0usize;
        for (u, nbrs) in self.out.iter().enumerate() {
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("out-adjacency of {u} not sorted"));
            }
            for &v in nbrs {
                if v as usize == u {
                    return Err(format!("self-loop at {u}"));
                }
                if self.inn[v as usize].binary_search(&(u as Vertex)).is_err() {
                    return Err(format!("arc ({u},{v}) missing from in-list"));
                }
            }
            arcs += nbrs.len();
        }
        if arcs != self.num_edges {
            return Err("edge count mismatch".into());
        }
        Ok(())
    }
}

impl AdjacencyView for DynamicDiGraph {
    fn num_vertices(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn out_neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.out[v as usize]
    }

    #[inline]
    fn in_neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.inn[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_edges_are_one_way() {
        let mut g = DynamicDiGraph::new(3);
        assert!(g.insert_edge(0, 1));
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(g.insert_edge(1, 0));
        assert_eq!(g.num_edges(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn in_out_mirroring() {
        let g = DynamicDiGraph::from_edges(4, &[(0, 1), (2, 1), (3, 1), (1, 0)]);
        assert_eq!(g.in_neighbors(1), &[0, 2, 3]);
        assert_eq!(g.out_neighbors(1), &[0]);
        assert_eq!(g.in_degree(1), 3);
        assert_eq!(g.out_degree(1), 1);
        assert_eq!(g.degree(1), 4);
        g.validate().unwrap();
    }

    #[test]
    fn remove_edge_directed() {
        let mut g = DynamicDiGraph::from_edges(3, &[(0, 1), (1, 0)]);
        assert!(g.remove_edge(0, 1));
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.remove_edge(0, 1));
        g.validate().unwrap();
    }

    #[test]
    fn reversed_view_swaps_directions() {
        let g = DynamicDiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let r = crate::Reversed(&g);
        assert_eq!(r.out_neighbors(1), &[0]);
        assert_eq!(r.in_neighbors(1), &[2]);
        let rg = g.reversed();
        assert!(rg.has_edge(1, 0));
        assert!(rg.has_edge(2, 1));
        assert!(!rg.has_edge(0, 1));
        rg.validate().unwrap();
    }

    #[test]
    fn batch_application() {
        let mut g = DynamicDiGraph::new(2);
        let b = Batch::from_updates(vec![
            Update::Insert(0, 1),
            Update::Insert(1, 0),
            Update::Delete(0, 1),
        ]);
        assert_eq!(g.apply_batch(&b), 3);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }
}
