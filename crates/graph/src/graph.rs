//! Undirected dynamic graph with sorted adjacency lists.
//!
//! The representation follows the paper's setting: an explicit in-memory
//! simple graph (no self-loops, no parallel edges) over dense vertex ids
//! `0..n`. Neighbour lists are kept sorted so that
//!
//! * `has_edge` is a binary search (`O(log d)`),
//! * insertion/removal are `O(d)` shifts (cheap at complex-network
//!   degrees and amortized by batch application),
//! * neighbour iteration is a contiguous slice scan, which dominates the
//!   running time of every search in this workspace and benefits from
//!   the cache-friendly layout.

use crate::update::{Batch, Update};
use crate::AdjacencyView;
use batchhl_common::Vertex;

/// An undirected simple graph under batch updates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DynamicGraph {
    adj: Vec<Vec<Vertex>>,
    num_edges: usize,
}

impl DynamicGraph {
    /// Create an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        DynamicGraph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Build from an edge list, ignoring self-loops and duplicate edges.
    ///
    /// Endpoints must be `< n`; use [`DynamicGraph::from_edges_auto`] to
    /// size the graph from the data.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Self {
        let mut g = DynamicGraph::new(n);
        for &(u, v) in edges {
            g.insert_edge(u, v);
        }
        g
    }

    /// Assemble from complete per-vertex adjacency lists (each sorted,
    /// mirrored on both endpoints) — the load path of the binary CSR
    /// snapshot format in [`crate::io`]. The lists are validated
    /// structurally; invalid input gets an error, never a graph that
    /// breaks invariants later.
    pub fn try_from_adjacency(adj: Vec<Vec<Vertex>>) -> Result<Self, String> {
        let half_edges: usize = adj.iter().map(Vec::len).sum();
        let g = DynamicGraph {
            adj,
            num_edges: half_edges / 2,
        };
        if !half_edges.is_multiple_of(2) {
            return Err("odd half-edge count: adjacency not mirrored".into());
        }
        g.validate()?;
        Ok(g)
    }

    /// Build from an edge list, sizing the vertex set to the largest id.
    pub fn from_edges_auto(edges: &[(Vertex, Vertex)]) -> Self {
        let n = edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        Self::from_edges(n, edges)
    }

    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    pub fn is_empty(&self) -> bool {
        self.num_edges == 0
    }

    /// Append an isolated vertex, returning its id.
    pub fn add_vertex(&mut self) -> Vertex {
        self.adj.push(Vec::new());
        (self.adj.len() - 1) as Vertex
    }

    /// Grow the vertex set so ids `0..n` are all valid.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.adj.len() {
            self.adj.resize(n, Vec::new());
        }
    }

    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.adj[v as usize].len()
    }

    /// Sorted neighbour slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.adj[v as usize]
    }

    #[inline]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Insert edge `{u, v}`. Returns `false` (graph unchanged) for
    /// self-loops and already-present edges — such updates are *invalid*
    /// in the paper's terminology and ignored.
    pub fn insert_edge(&mut self, u: Vertex, v: Vertex) -> bool {
        if u == v {
            return false;
        }
        let max = u.max(v) as usize;
        assert!(max < self.adj.len(), "vertex {max} out of bounds");
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(iu) => {
                // Second search cannot fail symmetry: lists are mirrored.
                let iv = self.adj[v as usize].binary_search(&u).unwrap_err();
                self.adj[u as usize].insert(iu, v);
                self.adj[v as usize].insert(iv, u);
                self.num_edges += 1;
                true
            }
        }
    }

    /// Remove edge `{u, v}`. Returns `false` if absent.
    pub fn remove_edge(&mut self, u: Vertex, v: Vertex) -> bool {
        if u == v {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Err(_) => false,
            Ok(iu) => {
                let iv = self.adj[v as usize].binary_search(&u).unwrap();
                self.adj[u as usize].remove(iu);
                self.adj[v as usize].remove(iv);
                self.num_edges -= 1;
                true
            }
        }
    }

    /// Apply every update of a batch in order, growing the vertex set if
    /// an update mentions an unseen vertex. Returns the number of
    /// updates that changed the graph.
    pub fn apply_batch(&mut self, batch: &Batch) -> usize {
        let mut applied = 0;
        for u in batch.updates() {
            let (a, b) = u.endpoints();
            self.ensure_vertices(a.max(b) as usize + 1);
            let changed = match u {
                Update::Insert(..) => self.insert_edge(a, b),
                Update::Delete(..) => self.remove_edge(a, b),
            };
            applied += usize::from(changed);
        }
        applied
    }

    /// All edges as canonical `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as Vertex;
            nbrs.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    pub fn avg_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.adj.len() as f64
        }
    }

    /// Vertex ids sorted by decreasing degree (ties broken by id), the
    /// ordering used for landmark selection and PLL ranking.
    pub fn vertices_by_degree(&self) -> Vec<Vertex> {
        let mut order: Vec<Vertex> = (0..self.num_vertices() as Vertex).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(self.degree(v)), v));
        order
    }

    /// Internal consistency check used by tests and debug assertions:
    /// sorted, mirrored, loop-free adjacency and an accurate edge count.
    pub fn validate(&self) -> Result<(), String> {
        let mut half_edges = 0usize;
        for (u, nbrs) in self.adj.iter().enumerate() {
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of {u} not strictly sorted"));
            }
            for &v in nbrs {
                if v as usize == u {
                    return Err(format!("self-loop at {u}"));
                }
                if (v as usize) >= self.adj.len() {
                    return Err(format!("dangling neighbour {v} of {u}"));
                }
                if self.adj[v as usize].binary_search(&(u as Vertex)).is_err() {
                    return Err(format!("edge ({u},{v}) not mirrored"));
                }
            }
            half_edges += nbrs.len();
        }
        if half_edges != 2 * self.num_edges {
            return Err(format!(
                "edge count {} inconsistent with {} half-edges",
                self.num_edges, half_edges
            ));
        }
        Ok(())
    }
}

impl AdjacencyView for DynamicGraph {
    fn num_vertices(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn out_neighbors(&self, v: Vertex) -> &[Vertex] {
        self.neighbors(v)
    }

    #[inline]
    fn in_neighbors(&self, v: Vertex) -> &[Vertex] {
        self.neighbors(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut g = DynamicGraph::new(5);
        assert!(g.insert_edge(0, 1));
        assert!(g.insert_edge(1, 2));
        assert!(!g.insert_edge(0, 1), "duplicate insert is invalid");
        assert!(!g.insert_edge(1, 0), "reversed duplicate is invalid");
        assert!(!g.insert_edge(3, 3), "self-loop is invalid");
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(1, 0));
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn neighbors_stay_sorted() {
        let mut g = DynamicGraph::new(10);
        for v in [5u32, 2, 9, 1, 7] {
            g.insert_edge(0, v);
        }
        assert_eq!(g.neighbors(0), &[1, 2, 5, 7, 9]);
        g.remove_edge(0, 5);
        assert_eq!(g.neighbors(0), &[1, 2, 7, 9]);
        g.validate().unwrap();
    }

    #[test]
    fn from_edges_dedups() {
        let g = DynamicGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 2), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn from_edges_auto_sizes() {
        let g = DynamicGraph::from_edges_auto(&[(0, 7), (3, 2)]);
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = DynamicGraph::from_edges(4, &[(2, 1), (0, 3), (1, 0)]);
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn degree_statistics() {
        let g = DynamicGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
        assert_eq!(g.vertices_by_degree()[0], 0);
    }

    #[test]
    fn add_vertex_and_grow() {
        let mut g = DynamicGraph::new(2);
        let v = g.add_vertex();
        assert_eq!(v, 2);
        g.ensure_vertices(10);
        assert_eq!(g.num_vertices(), 10);
        assert!(g.insert_edge(9, 0));
        g.validate().unwrap();
    }

    #[test]
    fn apply_batch_counts_valid_updates() {
        let mut g = DynamicGraph::new(3);
        let batch = Batch::from_updates(vec![
            Update::Insert(0, 1),
            Update::Insert(0, 1), // duplicate: invalid
            Update::Delete(1, 2), // absent: invalid
            Update::Insert(1, 2),
            Update::Delete(0, 1),
        ]);
        assert_eq!(g.apply_batch(&batch), 3);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn apply_batch_grows_vertex_set() {
        let mut g = DynamicGraph::new(1);
        let batch = Batch::from_updates(vec![Update::Insert(0, 5)]);
        g.apply_batch(&batch);
        assert_eq!(g.num_vertices(), 6);
        assert!(g.has_edge(0, 5));
    }
}
