//! Erdős–Rényi random graphs.

use crate::graph::DynamicGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::random_pair;

/// G(n, m): exactly `m` distinct uniform edges (or as many as fit).
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> DynamicGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DynamicGraph::new(n);
    if n < 2 {
        return g;
    }
    let max_edges = n * (n - 1) / 2;
    let m = m.min(max_edges);
    // Rejection sampling is fine while m is far below the maximum;
    // fall back to dense enumeration otherwise.
    if m * 3 < max_edges {
        while g.num_edges() < m {
            let (u, v) = random_pair(n, &mut rng);
            g.insert_edge(u, v);
        }
    } else {
        let mut all: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| (u + 1..n as u32).map(move |v| (u, v)))
            .collect();
        for i in (1..all.len()).rev() {
            let j = rng.gen_range(0..=i);
            all.swap(i, j);
        }
        for &(u, v) in all.iter().take(m) {
            g.insert_edge(u, v);
        }
    }
    g
}

/// G(n, p): each pair independently with probability `p`.
///
/// Uses Batagelj–Brandes geometric skipping, so the expected running
/// time is O(n + m) rather than O(n²).
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> DynamicGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DynamicGraph::new(n);
    if p == 0.0 || n < 2 {
        return g;
    }
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                g.insert_edge(u, v);
            }
        }
        return g;
    }
    let log_q = (1.0 - p).ln();
    let (mut u, mut v) = (1i64, -1i64);
    let n = n as i64;
    while u < n {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        v += 1 + (r.ln() / log_q).floor() as i64;
        while v >= u && u < n {
            v -= u;
            u += 1;
        }
        if u < n {
            g.insert_edge(u as u32, v as u32);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = erdos_renyi_gnm(100, 250, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 250);
        g.validate().unwrap();
    }

    #[test]
    fn gnm_caps_at_complete() {
        let g = erdos_renyi_gnm(5, 1000, 1);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn gnm_deterministic() {
        assert_eq!(erdos_renyi_gnm(50, 100, 9), erdos_renyi_gnm(50, 100, 9));
        assert_ne!(erdos_renyi_gnm(50, 100, 9), erdos_renyi_gnm(50, 100, 10));
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 200;
        let p = 0.1;
        let g = erdos_renyi_gnp(n, p, 4);
        let expected = p * (n * (n - 1) / 2) as f64;
        let m = g.num_edges() as f64;
        assert!(
            (m - expected).abs() < 0.25 * expected,
            "m={m} expected≈{expected}"
        );
        g.validate().unwrap();
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(erdos_renyi_gnp(30, 0.0, 1).num_edges(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, 1).num_edges(), 45);
    }
}
