//! R-MAT (recursive matrix) generator.
//!
//! Produces the heavily skewed degree distributions of web and
//! communication graphs (Indochina-, Wikitalk-, UK-like stand-ins):
//! recursive quadrant sampling with probabilities `(a, b, c, d)`.

use crate::graph::DynamicGraph;
use batchhl_common::Vertex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Quadrant probabilities for R-MAT. Must sum to ~1; `a` is the
/// self-similar "rich get richer" corner.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
}

impl RmatParams {
    /// The parameters popularized by Graph500 (a=0.57, b=c=0.19).
    pub fn graph500() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }

    /// Milder skew, closer to social networks.
    pub fn social() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.22,
            c: 0.22,
        }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Undirected R-MAT graph on `2^scale` vertices with ~`m` edges
/// (duplicates and self-loops are dropped, so the realized count can be
/// slightly lower).
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> DynamicGraph {
    assert!(params.d() >= 0.0, "quadrant probabilities exceed 1");
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DynamicGraph::new(n);
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(8).max(64);
    while g.num_edges() < m && attempts < max_attempts {
        attempts += 1;
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        g.insert_edge(u as Vertex, v as Vertex);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_determinism() {
        let g = rmat(10, 3000, RmatParams::graph500(), 2);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 2000, "m={}", g.num_edges());
        assert_eq!(g, rmat(10, 3000, RmatParams::graph500(), 2));
        g.validate().unwrap();
    }

    #[test]
    fn skew_produces_heavy_hubs() {
        let g = rmat(12, 20000, RmatParams::graph500(), 3);
        assert!(
            g.max_degree() as f64 > 10.0 * g.avg_degree(),
            "max {} vs avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn rejects_bad_params() {
        rmat(
            4,
            10,
            RmatParams {
                a: 0.6,
                b: 0.3,
                c: 0.3,
            },
            1,
        );
    }
}
