//! Deterministic classic graphs used throughout the test suites.

use crate::graph::DynamicGraph;
use batchhl_common::Vertex;

/// Path `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> DynamicGraph {
    let mut g = DynamicGraph::new(n);
    for i in 1..n as Vertex {
        g.insert_edge(i - 1, i);
    }
    g
}

/// Cycle on `n ≥ 3` vertices (smaller `n` degrades to a path).
pub fn cycle(n: usize) -> DynamicGraph {
    let mut g = path(n);
    if n >= 3 {
        g.insert_edge(0, n as Vertex - 1);
    }
    g
}

/// Star with centre `0` and `n - 1` leaves.
pub fn star(n: usize) -> DynamicGraph {
    let mut g = DynamicGraph::new(n);
    for i in 1..n as Vertex {
        g.insert_edge(0, i);
    }
    g
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> DynamicGraph {
    let mut g = DynamicGraph::new(n);
    for u in 0..n as Vertex {
        for v in u + 1..n as Vertex {
            g.insert_edge(u, v);
        }
    }
    g
}

/// `w × h` grid; vertex `(x, y)` has id `y * w + x`. The road-network
/// control case (large diameter, no hubs).
pub fn grid(w: usize, h: usize) -> DynamicGraph {
    let mut g = DynamicGraph::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let v = (y * w + x) as Vertex;
            if x + 1 < w {
                g.insert_edge(v, v + 1);
            }
            if y + 1 < h {
                g.insert_edge(v, v + w as Vertex);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_distances;

    #[test]
    fn path_distances() {
        let g = path(6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(bfs_distances(&g, 0)[5], 5);
    }

    #[test]
    fn cycle_wraps() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(bfs_distances(&g, 0)[5], 1);
        assert_eq!(bfs_distances(&g, 0)[3], 3);
    }

    #[test]
    fn star_shape() {
        let g = star(5);
        assert_eq!(g.degree(0), 4);
        assert_eq!(bfs_distances(&g, 1)[2], 2);
    }

    #[test]
    fn complete_diameter_one() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        let d = bfs_distances(&g, 3);
        assert!(d.iter().enumerate().all(|(v, &dv)| dv == u32::from(v != 3)));
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let g = grid(4, 3);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[(2 * 4 + 3) as usize], 5); // (3,2): 3 + 2
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // h*(w-1) + (h-1)*w
    }
}
