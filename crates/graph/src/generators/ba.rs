//! Barabási–Albert preferential attachment.
//!
//! The workhorse stand-in for the paper's social networks: power-law
//! degree distribution (a few very-high-degree hubs, mirroring Table 2's
//! max-degree column) and small diameter, the two properties the
//! BatchHL pruning rules exploit.

use crate::graph::DynamicGraph;
use batchhl_common::Vertex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// BA graph on `n` vertices where each arriving vertex attaches `m`
/// edges to existing vertices with probability proportional to degree.
///
/// Implementation: the classic repeated-endpoint list — sampling a
/// uniform element of the half-edge list is exactly degree-proportional
/// sampling. Duplicate targets are re-drawn so each arrival contributes
/// `m` distinct edges (when possible).
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> DynamicGraph {
    assert!(m >= 1, "attachment count must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DynamicGraph::new(n);
    if n == 0 {
        return g;
    }
    let core = (m + 1).min(n);
    // Seed clique keeps the early degree distribution non-degenerate.
    for u in 0..core as Vertex {
        for v in u + 1..core as Vertex {
            g.insert_edge(u, v);
        }
    }
    let mut endpoints: Vec<Vertex> = Vec::with_capacity(2 * n * m);
    for (u, v) in g.edges() {
        endpoints.push(u);
        endpoints.push(v);
    }
    for v in core as Vertex..n as Vertex {
        let mut added = 0;
        let mut attempts = 0;
        while added < m && attempts < 50 * m {
            attempts += 1;
            let target = if endpoints.is_empty() {
                rng.gen_range(0..v)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if g.insert_edge(v, target) {
                endpoints.push(v);
                endpoints.push(target);
                added += 1;
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn edge_count_and_connectivity() {
        let n = 500;
        let m = 4;
        let g = barabasi_albert(n, m, 11);
        assert_eq!(g.num_vertices(), n);
        // core clique + m per arrival
        let expected = (m + 1) * m / 2 + (n - m - 1) * m;
        assert_eq!(g.num_edges(), expected);
        assert!(is_connected(&g));
        g.validate().unwrap();
    }

    #[test]
    fn produces_hubs() {
        let g = barabasi_albert(2000, 3, 5);
        // Power-law graphs have max degree far above the average.
        assert!(
            g.max_degree() as f64 > 8.0 * g.avg_degree(),
            "max {} vs avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(300, 2, 42), barabasi_albert(300, 2, 42));
        assert_ne!(barabasi_albert(300, 2, 42), barabasi_albert(300, 2, 43));
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(barabasi_albert(0, 2, 1).num_vertices(), 0);
        let g = barabasi_albert(1, 2, 1);
        assert_eq!(g.num_edges(), 0);
        let g = barabasi_albert(2, 3, 1);
        assert_eq!(g.num_edges(), 1);
    }
}
