//! Watts–Strogatz small-world graphs.

use crate::graph::DynamicGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ring lattice on `n` vertices with `k` nearest neighbours per side
/// (`2k` total), each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> DynamicGraph {
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DynamicGraph::new(n);
    if n < 2 || k == 0 {
        return g;
    }
    let k = k.min((n - 1) / 2).max(1);
    for u in 0..n {
        for j in 1..=k {
            let v = (u + j) % n;
            if rng.gen_bool(beta) {
                // Rewire: keep u, pick a uniform non-neighbour target.
                let mut tries = 0;
                loop {
                    let w = rng.gen_range(0..n) as u32;
                    if w as usize != u && !g.has_edge(u as u32, w) {
                        g.insert_edge(u as u32, w);
                        break;
                    }
                    tries += 1;
                    if tries > 100 {
                        g.insert_edge(u as u32, v as u32);
                        break;
                    }
                }
            } else {
                g.insert_edge(u as u32, v as u32);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn zero_beta_is_ring_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 1);
        assert_eq!(g.num_edges(), 40);
        for u in 0..20u32 {
            assert_eq!(g.degree(u), 4);
            assert!(g.has_edge(u, (u + 1) % 20));
            assert!(g.has_edge(u, (u + 2) % 20));
        }
    }

    #[test]
    fn rewiring_keeps_edge_count_close() {
        let g = watts_strogatz(200, 3, 0.2, 7);
        // Rewiring can occasionally fall back / collide; stay close.
        assert!(
            g.num_edges() >= 550 && g.num_edges() <= 600,
            "m={}",
            g.num_edges()
        );
        g.validate().unwrap();
    }

    #[test]
    fn usually_connected_small_world() {
        let g = watts_strogatz(500, 4, 0.1, 3);
        assert!(is_connected(&g));
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            watts_strogatz(100, 2, 0.3, 5),
            watts_strogatz(100, 2, 0.3, 5)
        );
    }
}
