//! Seeded synthetic graph generators.
//!
//! These stand in for the paper's 14 real-world datasets (DESIGN.md §4):
//! Barabási–Albert for the social networks (power-law degrees, small
//! diameter), R-MAT for the skewed web/communication graphs,
//! Watts–Strogatz as a small-world control, Erdős–Rényi as the
//! homogeneous control, plus the deterministic classics (paths, grids,
//! stars, cliques) used heavily by the test suites.
//!
//! All generators are deterministic given their seed.

mod ba;
mod classic;
mod er;
mod rmat;
mod ws;

pub use ba::barabasi_albert;
pub use classic::{complete, cycle, grid, path, star};
pub use er::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use rmat::{rmat, RmatParams};
pub use ws::watts_strogatz;

use crate::graph::DynamicGraph;
use crate::DynamicDiGraph;
use batchhl_common::Vertex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Summary statistics mirroring the columns of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    pub num_vertices: usize,
    pub num_edges: usize,
    pub avg_degree: f64,
    pub max_degree: usize,
}

impl GraphStats {
    pub fn of(g: &DynamicGraph) -> Self {
        GraphStats {
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            avg_degree: g.avg_degree(),
            max_degree: g.max_degree(),
        }
    }
}

/// Orient every undirected edge of `g` randomly (and keep ~`both_frac`
/// of them bidirectional), producing the directed datasets of Table 6.
pub fn orient_randomly(g: &DynamicGraph, both_frac: f64, seed: u64) -> DynamicDiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dg = DynamicDiGraph::new(g.num_vertices());
    for (u, v) in g.edges() {
        if rng.gen_bool(both_frac) {
            dg.insert_edge(u, v);
            dg.insert_edge(v, u);
        } else if rng.gen_bool(0.5) {
            dg.insert_edge(u, v);
        } else {
            dg.insert_edge(v, u);
        }
    }
    dg
}

/// Sample a uniformly random pair of distinct vertices.
pub(crate) fn random_pair<R: Rng>(n: usize, rng: &mut R) -> (Vertex, Vertex) {
    debug_assert!(n >= 2);
    let u = rng.gen_range(0..n) as Vertex;
    loop {
        let v = rng.gen_range(0..n) as Vertex;
        if v != u {
            return (u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_reflect_graph() {
        let g = path(5);
        let s = GraphStats::of(&g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 1.6).abs() < 1e-12);
    }

    #[test]
    fn orientation_preserves_adjacency() {
        let g = erdos_renyi_gnm(100, 300, 7);
        let dg = orient_randomly(&g, 0.3, 8);
        assert_eq!(dg.num_vertices(), 100);
        // Every arc corresponds to an undirected edge.
        for (u, v) in dg.edges() {
            assert!(g.has_edge(u, v));
        }
        // Every undirected edge yields at least one arc.
        for (u, v) in g.edges() {
            assert!(dg.has_edge(u, v) || dg.has_edge(v, u));
        }
        dg.validate().unwrap();
    }

    #[test]
    fn orientation_is_deterministic() {
        let g = erdos_renyi_gnm(50, 120, 3);
        let a = orient_randomly(&g, 0.2, 9);
        let b = orient_randomly(&g, 0.2, 9);
        assert_eq!(a, b);
    }
}
