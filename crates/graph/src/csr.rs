//! Flat CSR snapshot adjacency with a per-generation delta overlay.
//!
//! Every hot path of the workspace — the distance-bounded bidirectional
//! BFS behind `Q(s, t)` (Section 4), the per-landmark search spaces of
//! the update engine, and full index construction — is a graph
//! traversal. The dynamic graphs (`Vec<Vec<Vertex>>`) are ideal for
//! O(1)-amortized edge mutation but pay one pointer chase (and usually
//! one cache miss) per vertex visited. This module provides the
//! complementary *read-optimized* representation:
//!
//! * [`Csr`] — a frozen compressed-sparse-row snapshot: one `offsets`
//!   array (`n + 1` entries) and one flat `items` array holding every
//!   adjacency list back to back. Neighbour access is two array reads;
//!   scanning a whole search space is sequential memory traffic.
//! * [`CsrOverlay`] — a CSR snapshot plus a small per-vertex *delta
//!   overlay*. Batch-dynamic updates cannot rewrite a frozen CSR in
//!   place, so each published generation freezes only the vertices the
//!   batch touched: their current adjacency is copied into the overlay
//!   (`O(Σ deg(endpoint))` per batch) while every untouched vertex
//!   keeps reading straight from the shared base CSR. When the overlay
//!   grows past a configurable fraction of the base's size the whole
//!   graph is *compacted* into a fresh base CSR and the overlay is
//!   cleared — the classic snapshot/delta/compaction cycle of
//!   batch-dynamic structures (cf. Acar et al., parallel batch-dynamic
//!   trees via change propagation).
//!
//! The base CSR is behind an [`Arc`], so consecutive generations share
//! it: publishing a generation costs the overlay delta, not `O(m)`.
//!
//! [`CsrGraph`]/[`CsrDelta`] instantiate the storage for unweighted
//! adjacency (`Vertex` items) and implement [`AdjacencyView`];
//! [`WeightedCsrGraph`]/[`WeightedCsrDelta`] hold `(Vertex, Weight)`
//! pairs and implement [`WeightedAdjacencyView`]. [`CsrDiDelta`] pairs
//! two overlays (out- and in-adjacency) for directed graphs.
//!
//! [`VertexRemap`] supports the optional degree-descending relabeling
//! pass (`BatchIndex::new_reordered` in `batchhl-core`): renumbering
//! vertices by decreasing degree packs the hot high-degree
//! neighbourhoods into the front of the CSR arrays, improving locality
//! for the skewed access patterns of complex networks.

use crate::weighted::{Weight, WeightedAdjacencyView, WeightedGraph};
use crate::AdjacencyView;
use batchhl_common::Vertex;
use std::sync::Arc;

/// Default compaction trigger: rebuild the base CSR once the overlay
/// holds more than this fraction of the base's adjacency entries.
pub const DEFAULT_COMPACTION_FRACTION: f32 = 0.25;

/// Overlays smaller than this never trigger compaction (avoids
/// rebuilding tiny graphs every batch).
pub const MIN_COMPACTION_ENTRIES: usize = 1024;

/// When a published CSR view compacts its delta overlay into a fresh
/// base snapshot: once the overlay holds more than `fraction` of the
/// base's adjacency entries *and* at least `min_entries` entries.
///
/// One policy value configures every index family (the
/// `compaction` field of `batchhl-core`'s `IndexConfig`), replacing the
/// per-index `set_compaction_fraction`/`set_compaction_policy` setter
/// pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Fraction of the base's adjacency entries the overlay may reach
    /// before compaction triggers (default
    /// [`DEFAULT_COMPACTION_FRACTION`]).
    pub fraction: f32,
    /// Absolute overlay-entry floor below which compaction never
    /// triggers (default [`MIN_COMPACTION_ENTRIES`]; tests drive it to
    /// 0 to force compactions on tiny graphs).
    pub min_entries: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            fraction: DEFAULT_COMPACTION_FRACTION,
            min_entries: MIN_COMPACTION_ENTRIES,
        }
    }
}

impl CompactionPolicy {
    pub fn new(fraction: f32, min_entries: usize) -> Self {
        CompactionPolicy {
            fraction,
            min_entries,
        }
    }

    /// A policy that compacts as eagerly as the fraction allows (no
    /// entry floor) — what tests use to force compactions.
    pub fn eager(fraction: f32) -> Self {
        CompactionPolicy {
            fraction,
            min_entries: 0,
        }
    }
}

/// A frozen compressed-sparse-row adjacency snapshot over items `T`
/// (`Vertex` for unweighted graphs, `(Vertex, Weight)` for weighted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr<T> {
    /// `offsets[v]..offsets[v + 1]` indexes `items` for vertex `v`.
    offsets: Vec<usize>,
    items: Vec<T>,
}

/// Unweighted CSR snapshot.
pub type CsrGraph = Csr<Vertex>;

/// Weighted CSR snapshot (`(neighbour, weight)` items).
pub type WeightedCsrGraph = Csr<(Vertex, Weight)>;

impl<T: Copy> Csr<T> {
    /// Freeze `n` adjacency lists produced by `fetch` into CSR form.
    pub fn build<'g>(n: usize, fetch: impl Fn(Vertex) -> &'g [T]) -> Self
    where
        T: 'g,
    {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0usize;
        offsets.push(0);
        for v in 0..n as Vertex {
            total += fetch(v).len();
            offsets.push(total);
        }
        let mut items = Vec::with_capacity(total);
        for v in 0..n as Vertex {
            items.extend_from_slice(fetch(v));
        }
        Csr { offsets, items }
    }

    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total adjacency entries (half-edges for undirected graphs).
    pub fn num_entries(&self) -> usize {
        self.items.len()
    }

    /// The frozen adjacency list of `v`.
    #[inline]
    pub fn list(&self, v: Vertex) -> &[T] {
        let v = v as usize;
        &self.items[self.offsets[v]..self.offsets[v + 1]]
    }

    /// O(1) degree from the offset difference.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }
}

impl CsrGraph {
    /// Freeze the out-adjacency of any [`AdjacencyView`].
    pub fn from_adjacency<A: AdjacencyView + ?Sized>(g: &A) -> Self {
        Csr::build(g.num_vertices(), |v| g.out_neighbors(v))
    }
}

impl AdjacencyView for CsrGraph {
    fn num_vertices(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn out_neighbors(&self, v: Vertex) -> &[Vertex] {
        self.list(v)
    }

    #[inline]
    fn in_neighbors(&self, v: Vertex) -> &[Vertex] {
        self.list(v)
    }
}

impl WeightedCsrGraph {
    /// Freeze the adjacency of a weighted graph.
    pub fn from_weighted(g: &WeightedGraph) -> Self {
        Csr::build(g.num_vertices(), |v| g.neighbors(v))
    }
}

impl WeightedAdjacencyView for WeightedCsrGraph {
    fn num_vertices(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn weighted_neighbors(&self, v: Vertex) -> &[(Vertex, Weight)] {
        self.list(v)
    }
}

/// A CSR snapshot plus the delta overlay of the generations published
/// since the base was frozen.
///
/// Reads resolve per vertex with one bit test: a compact bitmap
/// (`n / 8` bytes, cache-resident even for large graphs) records which
/// vertices are overlaid. The common case — not overlaid — falls
/// through to the shared base CSR after that single test; overlaid
/// vertices (the endpoints of recent batches, few) binary-search a
/// small sorted index for their span. Vertices past the base's range
/// (grown by a batch) read the overlay or an empty list.
///
/// Overlay spans are append-only between compactions: re-touching a
/// vertex appends a fresh copy and abandons the old span. The abandoned
/// bytes count toward the compaction threshold, so garbage is bounded
/// by the same knob that bounds the overlay itself.
#[derive(Debug, Clone)]
pub struct CsrOverlay<T> {
    base: Arc<Csr<T>>,
    /// Bit `v` set ⇔ `v` is overlaid (one word per 64 vertices).
    mask: Vec<u64>,
    /// Overlaid vertex ids, sorted ascending.
    touched: Vec<Vertex>,
    /// `spans[k]` indexes `data` for `touched[k]`.
    spans: Vec<(usize, usize)>,
    data: Vec<T>,
    n: usize,
    compaction_fraction: f32,
    min_compaction_entries: usize,
}

/// Unweighted CSR + overlay view — what undirected generations publish.
pub type CsrDelta = CsrOverlay<Vertex>;

/// Weighted CSR + overlay view.
pub type WeightedCsrDelta = CsrOverlay<(Vertex, Weight)>;

impl<T: Copy> CsrOverlay<T> {
    /// Wrap a frozen snapshot with an empty overlay.
    pub fn new(base: Csr<T>) -> Self {
        let n = base.num_vertices();
        CsrOverlay {
            base: Arc::new(base),
            mask: vec![0; n.div_ceil(64)],
            touched: Vec::new(),
            spans: Vec::new(),
            data: Vec::new(),
            n,
            compaction_fraction: DEFAULT_COMPACTION_FRACTION,
            min_compaction_entries: MIN_COMPACTION_ENTRIES,
        }
    }

    /// Set the overlay fraction of the base's entry count that triggers
    /// compaction (clamped to be positive).
    pub fn set_compaction_fraction(&mut self, fraction: f32) {
        self.set_compaction_policy(fraction, self.min_compaction_entries);
    }

    /// Set both compaction knobs: the base fraction and the absolute
    /// overlay-entry floor below which compaction never triggers
    /// (tests drive the floor to 0 to force compactions on tiny
    /// graphs).
    pub fn set_compaction_policy(&mut self, fraction: f32, min_entries: usize) {
        self.compaction_fraction = fraction.max(f32::EPSILON);
        self.min_compaction_entries = min_entries;
    }

    /// Apply a [`CompactionPolicy`] (the struct form of
    /// [`CsrOverlay::set_compaction_policy`]).
    pub fn set_policy(&mut self, policy: CompactionPolicy) {
        self.set_compaction_policy(policy.fraction, policy.min_entries);
    }

    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Grow the vertex range (new vertices start with empty adjacency).
    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.n {
            self.n = n;
            self.mask.resize(n.div_ceil(64), 0);
        }
    }

    /// Adjacency entries currently held by the overlay (including spans
    /// abandoned by re-touches — the figure the compaction policy acts
    /// on).
    pub fn overlay_entries(&self) -> usize {
        self.data.len()
    }

    /// Number of overlaid vertices.
    pub fn overlay_vertices(&self) -> usize {
        self.touched.len()
    }

    /// The shared base snapshot (generations published between two
    /// compactions return clones of the same `Arc`).
    pub fn base(&self) -> &Arc<Csr<T>> {
        &self.base
    }

    /// The current adjacency list of `v`.
    ///
    /// An empty overlay (the state right after a compaction) is decided
    /// by one struct-local, perfectly predicted branch, so traversal
    /// then runs at pure-CSR speed; otherwise one bitmap test routes
    /// between base and overlay.
    #[inline]
    pub fn list(&self, v: Vertex) -> &[T] {
        debug_assert!((v as usize) < self.n, "vertex {v} out of bounds");
        if self.touched.is_empty() || self.mask[(v >> 6) as usize] & (1u64 << (v & 63)) == 0 {
            if (v as usize) < self.base.num_vertices() {
                self.base.list(v)
            } else {
                &[]
            }
        } else {
            let k = self
                .touched
                .binary_search(&v)
                .expect("mask bit set ⇒ overlaid");
            let (start, end) = self.spans[k];
            &self.data[start..end]
        }
    }

    /// O(1) degree.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.list(v).len()
    }

    /// Record the current adjacency of `v` in the overlay.
    pub fn set_vertex(&mut self, v: Vertex, list: &[T]) {
        self.ensure_vertices(v as usize + 1);
        let start = self.data.len();
        self.data.extend_from_slice(list);
        let span = (start, self.data.len());
        match self.touched.binary_search(&v) {
            Ok(k) => self.spans[k] = span,
            Err(k) => {
                self.mask[(v >> 6) as usize] |= 1u64 << (v & 63);
                self.touched.insert(k, v);
                self.spans.insert(k, span);
            }
        }
    }

    /// Freeze one batch into this view: copy the current adjacency of
    /// every vertex in `touched` (the batch's endpoints) from `fetch`,
    /// then compact into a fresh base CSR if the overlay crossed the
    /// configured fraction of the base. Returns `true` when the call
    /// compacted.
    ///
    /// `fetch` must expose the *post-batch* adjacency of every vertex in
    /// `0..n` — typically a closure over the writer's dynamic graph.
    pub fn absorb<'g>(
        &mut self,
        n: usize,
        touched: impl IntoIterator<Item = Vertex>,
        fetch: impl Fn(Vertex) -> &'g [T],
    ) -> bool
    where
        T: 'g,
    {
        self.ensure_vertices(n);
        for v in touched {
            let list = fetch(v);
            self.set_vertex(v, list);
        }
        if self.needs_compaction() {
            self.compact(fetch);
            return true;
        }
        false
    }

    /// Whether the overlay exceeds the configured fraction of the base.
    pub fn needs_compaction(&self) -> bool {
        let threshold = (self.base.num_entries() as f32 * self.compaction_fraction) as usize;
        self.data.len() > threshold.max(self.min_compaction_entries)
    }

    /// Rebuild the base CSR from `fetch` and clear the overlay.
    pub fn compact<'g>(&mut self, fetch: impl Fn(Vertex) -> &'g [T])
    where
        T: 'g,
    {
        self.base = Arc::new(Csr::build(self.n, fetch));
        for &v in &self.touched {
            self.mask[(v >> 6) as usize] &= !(1u64 << (v & 63));
        }
        self.touched.clear();
        self.spans.clear();
        self.data.clear();
        self.data.shrink_to_fit();
    }
}

/// Semantic equality: two views are equal when they present the same
/// adjacency, regardless of how it is split between base and overlay
/// (a recycled generation buffer may compact on a different schedule
/// than the published one).
impl<T: Copy + PartialEq> PartialEq for CsrOverlay<T> {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && (0..self.n as Vertex).all(|v| self.list(v) == other.list(v))
    }
}

impl<T: Copy + Eq> Eq for CsrOverlay<T> {}

impl CsrDelta {
    /// Freeze the out-adjacency of `g` with an empty overlay.
    pub fn from_adjacency<A: AdjacencyView + ?Sized>(g: &A) -> Self {
        CsrOverlay::new(CsrGraph::from_adjacency(g))
    }
}

impl AdjacencyView for CsrDelta {
    fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn out_neighbors(&self, v: Vertex) -> &[Vertex] {
        self.list(v)
    }

    #[inline]
    fn in_neighbors(&self, v: Vertex) -> &[Vertex] {
        self.list(v)
    }
}

impl WeightedCsrDelta {
    /// Freeze a weighted graph with an empty overlay.
    pub fn from_weighted(g: &WeightedGraph) -> Self {
        CsrOverlay::new(WeightedCsrGraph::from_weighted(g))
    }

    /// Freeze one weighted batch: the touched endpoints re-read their
    /// `(neighbour, weight)` lists from `g`.
    pub fn absorb_from(
        &mut self,
        g: &WeightedGraph,
        touched: impl IntoIterator<Item = Vertex>,
    ) -> bool {
        self.absorb(g.num_vertices(), touched, |v| g.neighbors(v))
    }
}

impl WeightedAdjacencyView for WeightedCsrDelta {
    fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn weighted_neighbors(&self, v: Vertex) -> &[(Vertex, Weight)] {
        self.list(v)
    }
}

/// Directed CSR view: one overlay per direction. An arc `a → b` lives
/// in `out`'s list of `a` and `in`'s list of `b`; the two overlays
/// absorb and compact independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrDiDelta {
    out: CsrDelta,
    inn: CsrDelta,
}

impl CsrDiDelta {
    /// Freeze both directions of a directed [`AdjacencyView`].
    pub fn from_adjacency<A: AdjacencyView + ?Sized>(g: &A) -> Self {
        CsrDiDelta {
            out: CsrOverlay::new(Csr::build(g.num_vertices(), |v| g.out_neighbors(v))),
            inn: CsrOverlay::new(Csr::build(g.num_vertices(), |v| g.in_neighbors(v))),
        }
    }

    /// Freeze one batch of arcs `(tail, head)`: tails re-read their
    /// out-lists, heads their in-lists. Returns `true` if either
    /// direction compacted.
    pub fn absorb_arcs<A: AdjacencyView + ?Sized>(
        &mut self,
        g: &A,
        arcs: &[(Vertex, Vertex)],
    ) -> bool {
        let mut tails: Vec<Vertex> = arcs.iter().map(|&(a, _)| a).collect();
        let mut heads: Vec<Vertex> = arcs.iter().map(|&(_, b)| b).collect();
        tails.sort_unstable();
        tails.dedup();
        heads.sort_unstable();
        heads.dedup();
        let n = g.num_vertices();
        let c_out = self.out.absorb(n, tails, |v| g.out_neighbors(v));
        let c_in = self.inn.absorb(n, heads, |v| g.in_neighbors(v));
        c_out || c_in
    }

    pub fn set_compaction_fraction(&mut self, fraction: f32) {
        self.out.set_compaction_fraction(fraction);
        self.inn.set_compaction_fraction(fraction);
    }

    pub fn set_compaction_policy(&mut self, fraction: f32, min_entries: usize) {
        self.out.set_compaction_policy(fraction, min_entries);
        self.inn.set_compaction_policy(fraction, min_entries);
    }

    /// Apply a [`CompactionPolicy`] to both direction overlays.
    pub fn set_policy(&mut self, policy: CompactionPolicy) {
        self.out.set_policy(policy);
        self.inn.set_policy(policy);
    }

    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    pub fn overlay_entries(&self) -> usize {
        self.out.overlay_entries() + self.inn.overlay_entries()
    }

    /// Grow both direction overlays (new vertices start with empty
    /// adjacency in each direction).
    pub fn ensure_vertices(&mut self, n: usize) {
        self.out.ensure_vertices(n);
        self.inn.ensure_vertices(n);
    }

    /// Record the current out-adjacency of `v`, keeping the two
    /// directions' vertex counts in sync.
    pub fn set_vertex_out(&mut self, v: Vertex, list: &[Vertex]) {
        self.out.set_vertex(v, list);
        self.inn.ensure_vertices(self.out.num_vertices());
    }

    /// Record the current in-adjacency of `v`, keeping the two
    /// directions' vertex counts in sync.
    pub fn set_vertex_in(&mut self, v: Vertex, list: &[Vertex]) {
        self.inn.set_vertex(v, list);
        self.out.ensure_vertices(self.inn.num_vertices());
    }
}

impl AdjacencyView for CsrDiDelta {
    fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    #[inline]
    fn out_neighbors(&self, v: Vertex) -> &[Vertex] {
        self.out.list(v)
    }

    #[inline]
    fn in_neighbors(&self, v: Vertex) -> &[Vertex] {
        self.inn.list(v)
    }
}

/// A vertex renumbering and its inverse, for the degree-descending
/// relabeling pass: `new_to_old[new] = old`, `old_to_new[old] = new`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexRemap {
    old_to_new: Vec<Vertex>,
    new_to_old: Vec<Vertex>,
}

impl VertexRemap {
    /// Identity-checked construction from a permutation `new_to_old`.
    pub fn from_new_to_old(new_to_old: Vec<Vertex>) -> Self {
        let mut old_to_new = vec![0 as Vertex; new_to_old.len()];
        for (new, &old) in new_to_old.iter().enumerate() {
            old_to_new[old as usize] = new as Vertex;
        }
        VertexRemap {
            old_to_new,
            new_to_old,
        }
    }

    /// Rank vertices by decreasing degree (ties by id): the hubs of a
    /// complex network receive the smallest ids, packing the hottest
    /// adjacency lists into the front of the CSR arrays.
    pub fn degree_descending(g: &crate::DynamicGraph) -> Self {
        Self::from_new_to_old(g.vertices_by_degree())
    }

    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    #[inline]
    pub fn to_new(&self, old: Vertex) -> Vertex {
        self.old_to_new[old as usize]
    }

    #[inline]
    pub fn to_old(&self, new: Vertex) -> Vertex {
        self.new_to_old[new as usize]
    }

    /// Translate a batch expressed in original ids into relabeled ids.
    pub fn map_batch(&self, batch: &crate::Batch) -> crate::Batch {
        use crate::Update;
        crate::Batch::from_updates(
            batch
                .updates()
                .iter()
                .map(|u| match *u {
                    Update::Insert(a, b) => Update::Insert(self.to_new(a), self.to_new(b)),
                    Update::Delete(a, b) => Update::Delete(self.to_new(a), self.to_new(b)),
                })
                .collect(),
        )
    }
}

impl crate::DynamicGraph {
    /// The same graph with vertices renumbered by `remap`.
    pub fn relabeled(&self, remap: &VertexRemap) -> crate::DynamicGraph {
        let edges: Vec<(Vertex, Vertex)> = self
            .edges()
            .map(|(u, v)| (remap.to_new(u), remap.to_new(v)))
            .collect();
        crate::DynamicGraph::from_edges(self.num_vertices(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_distances;
    use crate::generators::barabasi_albert;
    use crate::{Batch, DynamicDiGraph, DynamicGraph};
    use batchhl_common::SplitMix64;

    #[test]
    fn csr_matches_dynamic_graph() {
        let g = barabasi_albert(200, 3, 7);
        let csr = CsrGraph::from_adjacency(&g);
        assert_eq!(csr.num_vertices(), g.num_vertices());
        assert_eq!(csr.num_entries(), 2 * g.num_edges());
        for v in 0..g.num_vertices() as Vertex {
            assert_eq!(csr.list(v), g.neighbors(v));
            assert_eq!(csr.degree(v), g.degree(v));
        }
        assert_eq!(bfs_distances(&csr, 0), bfs_distances(&g, 0));
    }

    #[test]
    fn overlay_tracks_batches_and_compacts() {
        let mut g = barabasi_albert(150, 2, 3);
        let mut view = CsrDelta::from_adjacency(&g);
        view.set_compaction_policy(0.05, 0);
        let base0 = Arc::clone(view.base());
        let mut rng = SplitMix64::new(11);
        let mut compacted_once = false;
        for _ in 0..40 {
            let mut batch = Batch::new();
            for _ in 0..6 {
                let a = rng.below(150) as Vertex;
                let b = rng.below(150) as Vertex;
                if a == b {
                    continue;
                }
                if g.has_edge(a, b) {
                    batch.delete(a, b);
                } else {
                    batch.insert(a, b);
                }
            }
            let norm = batch.normalize(&g);
            g.apply_batch(&norm);
            let compacted = view.absorb(g.num_vertices(), norm.touched_vertices(), |v| {
                g.neighbors(v)
            });
            if compacted {
                assert_eq!(view.overlay_entries(), 0, "compaction clears the overlay");
            }
            compacted_once |= compacted;
            for v in 0..g.num_vertices() as Vertex {
                assert_eq!(view.list(v), g.neighbors(v), "vertex {v}");
            }
        }
        assert!(compacted_once, "low threshold must force a compaction");
        assert!(
            !Arc::ptr_eq(&base0, view.base()),
            "compaction must install a fresh base"
        );
    }

    #[test]
    fn overlay_handles_vertex_growth() {
        let mut g = DynamicGraph::new(3);
        g.insert_edge(0, 1);
        let mut view = CsrDelta::from_adjacency(&g);
        assert_eq!(view.list(2), &[] as &[Vertex]);
        let mut batch = Batch::new();
        batch.insert(1, 6);
        g.apply_batch(&batch);
        view.absorb(g.num_vertices(), [1, 6], |v| g.neighbors(v));
        assert_eq!(view.num_vertices(), 7);
        assert_eq!(view.list(6), &[1]);
        assert_eq!(view.list(1), &[0, 6]);
        assert_eq!(view.list(5), &[] as &[Vertex], "grown vertices are empty");
    }

    #[test]
    fn overlay_semantic_equality() {
        let g = barabasi_albert(60, 2, 5);
        let a = CsrDelta::from_adjacency(&g);
        // Same adjacency, entirely different base/overlay split.
        let mut b = CsrDelta::new(CsrGraph::from_adjacency(&DynamicGraph::new(0)));
        b.absorb(g.num_vertices(), 0..g.num_vertices() as Vertex, |v| {
            g.neighbors(v)
        });
        assert_eq!(a, b);
        let mut c = a.clone();
        c.set_vertex(0, &[]);
        assert_ne!(a, c);
    }

    #[test]
    fn directed_delta_mirrors_digraph() {
        let mut g = DynamicDiGraph::from_edges(5, &[(0, 1), (1, 2), (3, 1)]);
        let mut view = CsrDiDelta::from_adjacency(&g);
        assert_eq!(view.out_neighbors(1), g.out_neighbors(1));
        assert_eq!(view.in_neighbors(1), g.in_neighbors(1));
        g.insert_edge(4, 1);
        g.remove_edge(0, 1);
        view.absorb_arcs(&g, &[(4, 1), (0, 1)]);
        for v in 0..5 {
            assert_eq!(view.out_neighbors(v), g.out_neighbors(v), "out {v}");
            assert_eq!(view.in_neighbors(v), g.in_neighbors(v), "in {v}");
        }
    }

    #[test]
    fn weighted_delta_mirrors_weighted_graph() {
        let mut g = WeightedGraph::from_edges(4, &[(0, 1, 3), (1, 2, 5)]);
        let mut view = WeightedCsrDelta::from_weighted(&g);
        assert_eq!(view.weighted_neighbors(1), g.neighbors(1));
        g.set_weight(0, 1, 9);
        g.insert_edge(2, 3, 1);
        view.absorb_from(&g, [0, 1, 2, 3]);
        for v in 0..4 {
            assert_eq!(view.weighted_neighbors(v), g.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn degree_descending_remap_roundtrips() {
        let g = barabasi_albert(100, 3, 13);
        let remap = VertexRemap::degree_descending(&g);
        for v in 0..100 {
            assert_eq!(remap.to_new(remap.to_old(v)), v);
            assert_eq!(remap.to_old(remap.to_new(v)), v);
        }
        let h = g.relabeled(&remap);
        assert_eq!(h.num_edges(), g.num_edges());
        // Degrees are preserved under relabeling and descend in id order.
        for v in 0..100u32 {
            assert_eq!(h.degree(remap.to_new(v)), g.degree(v));
        }
        for w in h.vertices_by_degree().windows(2) {
            assert!(h.degree(w[0]) >= h.degree(w[1]));
        }
        assert_eq!(h.vertices_by_degree()[0], 0, "hub gets id 0");
        // Distances are preserved modulo the remap.
        let d_old = bfs_distances(&g, remap.to_old(0));
        let d_new = bfs_distances(&h, 0);
        for v in 0..100u32 {
            assert_eq!(d_new[v as usize], d_old[remap.to_old(v) as usize]);
        }
    }

    #[test]
    fn remap_translates_batches() {
        let g = DynamicGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let remap = VertexRemap::degree_descending(&g);
        let mut batch = Batch::new();
        batch.insert(1, 2);
        batch.delete(0, 3);
        let mapped = remap.map_batch(&batch);
        assert_eq!(mapped.len(), 2);
        let (a, b) = mapped.updates()[0].endpoints();
        assert_eq!((remap.to_old(a), remap.to_old(b)), (1, 2));
    }
}
