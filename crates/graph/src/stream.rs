//! Evolving timestamped edge streams.
//!
//! Stand-in for the paper's two *real dynamic* networks (Italian and
//! French Wikipedia), whose topology evolves over time and whose batches
//! are taken "in the order of their timestamps, each containing 1,000
//! real-world inserted/deleted edges … applied in a streaming fashion"
//! (Section 7.1). The generator grows a preferential-attachment network
//! and then emits an interleaved stream of timestamped insertions (new
//! preferential edges) and deletions (of currently-live edges), from
//! which fixed-size batches are cut.

use crate::graph::DynamicGraph;
use crate::update::{Batch, Update};
use batchhl_common::Vertex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A timestamped update stream over an evolving base graph.
#[derive(Debug, Clone)]
pub struct EvolvingStream {
    /// Snapshot at stream start.
    pub initial: DynamicGraph,
    /// Updates in timestamp order. Timestamps are abstract ticks.
    pub events: Vec<(u64, Update)>,
}

impl EvolvingStream {
    /// Generate a stream: a BA base graph on `n` vertices (attachment
    /// `m`), then `num_events` interleaved updates of which roughly
    /// `delete_frac` are deletions of live edges.
    pub fn generate(n: usize, m: usize, num_events: usize, delete_frac: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&delete_frac));
        let mut rng = StdRng::seed_from_u64(seed);
        let initial = crate::generators::barabasi_albert(n, m, seed ^ 0x9E37);
        let mut live: Vec<(Vertex, Vertex)> = initial.edges().collect();
        // Degree-proportional endpoint pool for realistic insertions.
        let mut endpoints: Vec<Vertex> = Vec::with_capacity(2 * live.len());
        for &(u, v) in &live {
            endpoints.push(u);
            endpoints.push(v);
        }
        let mut shadow = initial.clone();
        let mut events = Vec::with_capacity(num_events);
        let mut ts = 0u64;
        while events.len() < num_events {
            ts += 1 + rng.gen_range(0..3u64); // irregular arrival times
            let delete = !live.is_empty() && rng.gen_bool(delete_frac);
            if delete {
                let i = rng.gen_range(0..live.len());
                let (u, v) = live.swap_remove(i);
                if shadow.remove_edge(u, v) {
                    events.push((ts, Update::Delete(u, v)));
                }
            } else {
                // Preferential insertion mirroring ongoing growth.
                let u = endpoints[rng.gen_range(0..endpoints.len())];
                let v = if rng.gen_bool(0.5) {
                    endpoints[rng.gen_range(0..endpoints.len())]
                } else {
                    rng.gen_range(0..n) as Vertex
                };
                if u != v && shadow.insert_edge(u, v) {
                    let (a, b) = if u < v { (u, v) } else { (v, u) };
                    live.push((a, b));
                    endpoints.push(u);
                    endpoints.push(v);
                    events.push((ts, Update::Insert(a, b)));
                }
            }
        }
        EvolvingStream { initial, events }
    }

    /// Cut the stream into consecutive batches of `size` updates
    /// (timestamp order preserved; a short final batch is kept).
    pub fn batches(&self, size: usize) -> Vec<Batch> {
        assert!(size > 0);
        self.events
            .chunks(size)
            .map(|chunk| chunk.iter().map(|&(_, u)| u).collect())
            .collect()
    }

    /// The graph state after applying the first `k` events to the
    /// initial snapshot.
    pub fn snapshot_after(&self, k: usize) -> DynamicGraph {
        let mut g = self.initial.clone();
        for &(_, u) in self.events.iter().take(k) {
            let (a, b) = u.endpoints();
            g.ensure_vertices(a.max(b) as usize + 1);
            match u {
                Update::Insert(..) => g.insert_edge(a, b),
                Update::Delete(..) => g.remove_edge(a, b),
            };
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_events_are_valid_in_sequence() {
        let s = EvolvingStream::generate(300, 3, 1000, 0.4, 17);
        assert_eq!(s.events.len(), 1000);
        // Replaying must never hit an invalid update.
        let mut g = s.initial.clone();
        for &(_, u) in &s.events {
            let (a, b) = u.endpoints();
            let ok = match u {
                Update::Insert(..) => g.insert_edge(a, b),
                Update::Delete(..) => g.remove_edge(a, b),
            };
            assert!(ok, "stream produced invalid update {u:?}");
        }
        g.validate().unwrap();
    }

    #[test]
    fn timestamps_are_nondecreasing() {
        let s = EvolvingStream::generate(100, 2, 500, 0.3, 5);
        assert!(s.events.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn batches_partition_events() {
        let s = EvolvingStream::generate(100, 2, 550, 0.3, 5);
        let batches = s.batches(100);
        assert_eq!(batches.len(), 6);
        assert_eq!(batches.last().unwrap().len(), 50);
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 550);
    }

    #[test]
    fn snapshot_matches_manual_replay() {
        let s = EvolvingStream::generate(120, 2, 400, 0.5, 9);
        let snap = s.snapshot_after(400);
        let mut g = s.initial.clone();
        for &(_, u) in &s.events {
            let (a, b) = u.endpoints();
            match u {
                Update::Insert(..) => g.insert_edge(a, b),
                Update::Delete(..) => g.remove_edge(a, b),
            };
        }
        assert_eq!(snap, g);
    }

    #[test]
    fn deterministic() {
        let a = EvolvingStream::generate(100, 2, 200, 0.3, 1);
        let b = EvolvingStream::generate(100, 2, 200, 0.3, 1);
        assert_eq!(a.events, b.events);
        assert_eq!(a.initial, b.initial);
    }

    #[test]
    fn snapshot_beyond_length_saturates() {
        let s = EvolvingStream::generate(80, 2, 100, 0.4, 2);
        assert_eq!(s.snapshot_after(100), s.snapshot_after(usize::MAX));
        assert_eq!(s.snapshot_after(0), s.initial);
    }

    #[test]
    fn insert_only_stream() {
        let s = EvolvingStream::generate(80, 2, 150, 0.0, 3);
        assert!(s.events.iter().all(|&(_, u)| u.is_insert()));
        assert_eq!(
            s.snapshot_after(150).num_edges(),
            s.initial.num_edges() + 150
        );
    }
}
