//! SNAP-style edge-list I/O.
//!
//! The paper's datasets ship as whitespace-separated edge lists with `#`
//! comment lines (SNAP), occasionally `%` (KONECT). The reader accepts
//! both, is buffered, and sizes the graph to the largest vertex id seen,
//! so real datasets can be dropped into the benchmark harness when
//! available (see DESIGN.md §4).

use crate::digraph::DynamicDiGraph;
use crate::graph::DynamicGraph;
use batchhl_common::Vertex;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Parse a whitespace-separated edge list. Lines starting with `#` or
/// `%` (or empty) are skipped. Extra columns (timestamps, weights) are
/// ignored.
pub fn parse_edge_list<R: BufRead>(reader: R) -> io::Result<Vec<(Vertex, Vertex)>> {
    let mut edges = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<Vertex> {
            tok.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: expected two vertex ids", lineno + 1),
                )
            })?
            .parse::<Vertex>()
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: {e}", lineno + 1),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        edges.push((u, v));
    }
    Ok(edges)
}

/// Read an undirected graph from an edge-list file.
pub fn read_graph<P: AsRef<Path>>(path: P) -> io::Result<DynamicGraph> {
    let file = std::fs::File::open(path)?;
    let edges = parse_edge_list(io::BufReader::new(file))?;
    Ok(DynamicGraph::from_edges_auto(&edges))
}

/// Read a directed graph from an edge-list file.
pub fn read_digraph<P: AsRef<Path>>(path: P) -> io::Result<DynamicDiGraph> {
    let file = std::fs::File::open(path)?;
    let edges = parse_edge_list(io::BufReader::new(file))?;
    let n = edges
        .iter()
        .map(|&(u, v)| u.max(v) as usize + 1)
        .max()
        .unwrap_or(0);
    Ok(DynamicDiGraph::from_edges(n, &edges))
}

/// Write an undirected graph as a canonical edge list (`u < v`, one edge
/// per line), buffered.
pub fn write_graph<W: Write>(g: &DynamicGraph, writer: W) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(
        out,
        "# undirected, {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(out, "{u}\t{v}")?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_extra_columns() {
        let text = "# SNAP header\n% konect header\n\n0 1\n1\t2\t1655000000\n 2 3 \n";
        let edges = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_edge_list("0 x\n".as_bytes()).is_err());
        assert!(parse_edge_list("42\n".as_bytes()).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let g = DynamicGraph::from_edges(5, &[(0, 4), (1, 2), (2, 3)]);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let edges = parse_edge_list(buf.as_slice()).unwrap();
        let g2 = DynamicGraph::from_edges(5, &edges);
        assert_eq!(g, g2);
    }
}
