//! Graph I/O: SNAP-style edge lists and binary CSR snapshot blocks.
//!
//! # Edge lists
//!
//! The paper's datasets ship as whitespace-separated edge lists with `#`
//! comment lines (SNAP), occasionally `%` (KONECT). The reader accepts
//! both, is buffered, and sizes the graph to the largest vertex id seen,
//! so real datasets can be dropped into the benchmark harness when
//! available (see DESIGN.md §4).
//!
//! # Binary CSR blocks (the `BHL2` graph sections)
//!
//! The full-oracle `BHL2` checkpoint format (`batchhl_core::persist`)
//! embeds one graph per index family, serialized here in CSR shape —
//! a degree array followed by the concatenated sorted adjacency — so a
//! load is a few bulk reads instead of `m` edge insertions. Layouts
//! (all integers little-endian):
//!
//! ```text
//! undirected "BGU2": magic | u64 n | u64 m | n × u32 degree
//!                    | 2m × u32 neighbours (per-vertex sorted runs)
//! directed   "BGD2": magic | u64 n | u64 m | n × u32 out-degree
//!                    | m × u32 out-neighbours (in-lists are rebuilt)
//! weighted   "BGW2": magic | u64 n | u64 m | n × u32 degree
//!                    | 2m × (u32 neighbour, u32 weight)
//! ```
//!
//! Readers treat the input as hostile: magic, degree sums and every
//! vertex id are validated with a typed [`BinGraphError`], bulk
//! payloads are read in bounded chunks (a corrupt `u64 n` fails with
//! [`BinGraphError::Truncated`] instead of a multi-GB allocation), and
//! the decoded lists pass the same structural validation the dynamic
//! graphs enforce on every mutation.

use crate::digraph::DynamicDiGraph;
use crate::graph::DynamicGraph;
use crate::weighted::{Weight, WeightedGraph};
use batchhl_common::{binio, Vertex};
use std::fmt;
use std::io::{self, BufRead, BufWriter, Read, Write};
use std::path::Path;

/// Parse a whitespace-separated edge list. Lines starting with `#` or
/// `%` (or empty) are skipped. Extra columns (timestamps, weights) are
/// ignored.
pub fn parse_edge_list<R: BufRead>(reader: R) -> io::Result<Vec<(Vertex, Vertex)>> {
    let mut edges = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<Vertex> {
            tok.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: expected two vertex ids", lineno + 1),
                )
            })?
            .parse::<Vertex>()
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: {e}", lineno + 1),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        edges.push((u, v));
    }
    Ok(edges)
}

/// Read an undirected graph from an edge-list file.
pub fn read_graph<P: AsRef<Path>>(path: P) -> io::Result<DynamicGraph> {
    let file = std::fs::File::open(path)?;
    let edges = parse_edge_list(io::BufReader::new(file))?;
    Ok(DynamicGraph::from_edges_auto(&edges))
}

/// Read a directed graph from an edge-list file.
pub fn read_digraph<P: AsRef<Path>>(path: P) -> io::Result<DynamicDiGraph> {
    let file = std::fs::File::open(path)?;
    let edges = parse_edge_list(io::BufReader::new(file))?;
    let n = edges
        .iter()
        .map(|&(u, v)| u.max(v) as usize + 1)
        .max()
        .unwrap_or(0);
    Ok(DynamicDiGraph::from_edges(n, &edges))
}

/// Write an undirected graph as a canonical edge list (`u < v`, one edge
/// per line), buffered.
pub fn write_graph<W: Write>(g: &DynamicGraph, writer: W) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(
        out,
        "# undirected, {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(out, "{u}\t{v}")?;
    }
    out.flush()
}

const MAGIC_UND: &[u8; 4] = b"BGU2";
const MAGIC_DIR: &[u8; 4] = b"BGD2";
const MAGIC_WTD: &[u8; 4] = b"BGW2";

use batchhl_common::binio::CHUNK_ENTRIES;

/// Why a binary CSR graph block could not be decoded.
#[derive(Debug)]
pub enum BinGraphError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The block does not start with the expected magic.
    BadMagic { expected: [u8; 4], found: [u8; 4] },
    /// The stream ended before the section the header promised.
    Truncated { section: &'static str },
    /// A header field is out of its documented range (e.g. degree sum
    /// disagreeing with the edge count).
    Header { reason: String },
    /// The decoded adjacency fails structural validation (unsorted,
    /// unmirrored, self-loop, dangling id…).
    Invalid { reason: String },
}

impl fmt::Display for BinGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinGraphError::Io(e) => write!(f, "graph block I/O error: {e}"),
            BinGraphError::BadMagic { expected, found } => write!(
                f,
                "bad graph magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found),
            ),
            BinGraphError::Truncated { section } => {
                write!(f, "graph block truncated while reading {section}")
            }
            BinGraphError::Header { reason } => write!(f, "invalid graph header: {reason}"),
            BinGraphError::Invalid { reason } => write!(f, "invalid graph structure: {reason}"),
        }
    }
}

impl std::error::Error for BinGraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BinGraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BinGraphError {
    fn from(e: io::Error) -> Self {
        BinGraphError::Io(e)
    }
}

fn bin_truncated(e: io::Error, section: &'static str) -> BinGraphError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        BinGraphError::Truncated { section }
    } else {
        BinGraphError::Io(e)
    }
}

fn read_bin_u64<R: Read>(r: &mut R, section: &'static str) -> Result<u64, BinGraphError> {
    binio::read_u64(r, |e| bin_truncated(e, section))
}

/// Read `count` little-endian `u32`s in bounded chunks ([`binio`]), so
/// a corrupt header cannot force a huge up-front allocation.
fn read_bin_u32s<R: Read>(
    r: &mut R,
    count: usize,
    section: &'static str,
) -> Result<Vec<u32>, BinGraphError> {
    binio::read_u32s(r, count, |e| bin_truncated(e, section))
}

/// Validate the CSR header triple shared by all three block kinds and
/// return the degree array.
fn read_degree_header<R: Read>(
    r: &mut R,
    half_edges_expected: impl Fn(u64) -> Option<u64>,
) -> Result<(usize, u64, Vec<u32>), BinGraphError> {
    let n = read_bin_u64(r, "header")?;
    let m = read_bin_u64(r, "header")?;
    if n > u32::MAX as u64 {
        return Err(BinGraphError::Header {
            reason: format!("vertex count {n} exceeds the u32 vertex-id space"),
        });
    }
    // Checked on the untrusted header value: an absurd m must be a
    // typed error, not a (debug-build) multiplication overflow.
    let want = half_edges_expected(m).ok_or_else(|| BinGraphError::Header {
        reason: format!("edge count {m} overflows the half-edge space"),
    })?;
    let degrees = read_bin_u32s(r, n as usize, "degree array")?;
    let sum: u64 = degrees.iter().map(|&d| d as u64).sum();
    if sum != want {
        return Err(BinGraphError::Header {
            reason: format!("degree sum {sum} disagrees with edge count {m} (expected {want})"),
        });
    }
    Ok((n as usize, m, degrees))
}

/// Write an undirected graph as a `BGU2` CSR block.
pub fn write_graph_bin<W: Write>(g: &DynamicGraph, mut out: W) -> io::Result<()> {
    out.write_all(MAGIC_UND)?;
    out.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    out.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for v in 0..g.num_vertices() as Vertex {
        out.write_all(&(g.degree(v) as u32).to_le_bytes())?;
    }
    for v in 0..g.num_vertices() as Vertex {
        for &w in g.neighbors(v) {
            out.write_all(&w.to_le_bytes())?;
        }
    }
    Ok(())
}

/// The number of bytes [`write_graph_bin`] emits for `g`.
pub fn graph_bin_len(g: &DynamicGraph) -> u64 {
    4 + 8 + 8 + 4 * g.num_vertices() as u64 + 8 * g.num_edges() as u64
}

/// Read a `BGU2` CSR block back into a [`DynamicGraph`].
pub fn read_graph_bin<R: Read>(mut r: R) -> Result<DynamicGraph, BinGraphError> {
    read_block_magic(&mut r, MAGIC_UND)?;
    let (n, _m, degrees) = read_degree_header(&mut r, |m| m.checked_mul(2))?;
    let mut adj = Vec::with_capacity(n.min(CHUNK_ENTRIES));
    for &d in &degrees {
        adj.push(read_bin_u32s(&mut r, d as usize, "adjacency")?);
    }
    DynamicGraph::try_from_adjacency(adj).map_err(|reason| BinGraphError::Invalid { reason })
}

/// Write a directed graph as a `BGD2` CSR block (out-direction only;
/// in-lists are rebuilt on load).
pub fn write_digraph_bin<W: Write>(g: &DynamicDiGraph, mut out: W) -> io::Result<()> {
    out.write_all(MAGIC_DIR)?;
    out.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    out.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for v in 0..g.num_vertices() as Vertex {
        out.write_all(&(g.out_degree(v) as u32).to_le_bytes())?;
    }
    for v in 0..g.num_vertices() as Vertex {
        for &w in g.out_neighbors(v) {
            out.write_all(&w.to_le_bytes())?;
        }
    }
    Ok(())
}

/// The number of bytes [`write_digraph_bin`] emits for `g`.
pub fn digraph_bin_len(g: &DynamicDiGraph) -> u64 {
    4 + 8 + 8 + 4 * g.num_vertices() as u64 + 4 * g.num_edges() as u64
}

/// Read a `BGD2` CSR block back into a [`DynamicDiGraph`].
pub fn read_digraph_bin<R: Read>(mut r: R) -> Result<DynamicDiGraph, BinGraphError> {
    read_block_magic(&mut r, MAGIC_DIR)?;
    let (n, _m, degrees) = read_degree_header(&mut r, Some)?;
    let mut out = Vec::with_capacity(n.min(CHUNK_ENTRIES));
    for &d in &degrees {
        out.push(read_bin_u32s(&mut r, d as usize, "adjacency")?);
    }
    DynamicDiGraph::try_from_out_adjacency(out).map_err(|reason| BinGraphError::Invalid { reason })
}

/// Write a weighted graph as a `BGW2` CSR block.
pub fn write_weighted_bin<W: Write>(g: &WeightedGraph, mut out: W) -> io::Result<()> {
    out.write_all(MAGIC_WTD)?;
    out.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    out.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for v in 0..g.num_vertices() as Vertex {
        out.write_all(&(g.degree(v) as u32).to_le_bytes())?;
    }
    for v in 0..g.num_vertices() as Vertex {
        for &(w, wt) in g.neighbors(v) {
            out.write_all(&w.to_le_bytes())?;
            out.write_all(&wt.to_le_bytes())?;
        }
    }
    Ok(())
}

/// The number of bytes [`write_weighted_bin`] emits for `g`.
pub fn weighted_bin_len(g: &WeightedGraph) -> u64 {
    4 + 8 + 8 + 4 * g.num_vertices() as u64 + 16 * g.num_edges() as u64
}

/// Read a `BGW2` CSR block back into a [`WeightedGraph`].
pub fn read_weighted_bin<R: Read>(mut r: R) -> Result<WeightedGraph, BinGraphError> {
    read_block_magic(&mut r, MAGIC_WTD)?;
    let (n, _m, degrees) = read_degree_header(&mut r, |m| m.checked_mul(2))?;
    let mut adj = Vec::with_capacity(n.min(CHUNK_ENTRIES));
    for &d in &degrees {
        let flat = read_bin_u32s(&mut r, d as usize * 2, "adjacency")?;
        adj.push(
            flat.chunks_exact(2)
                .map(|p| (p[0] as Vertex, p[1] as Weight))
                .collect::<Vec<_>>(),
        );
    }
    WeightedGraph::try_from_adjacency(adj).map_err(|reason| BinGraphError::Invalid { reason })
}

fn read_block_magic<R: Read>(r: &mut R, expected: &[u8; 4]) -> Result<(), BinGraphError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|e| bin_truncated(e, "magic"))?;
    if &magic != expected {
        return Err(BinGraphError::BadMagic {
            expected: *expected,
            found: magic,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_extra_columns() {
        let text = "# SNAP header\n% konect header\n\n0 1\n1\t2\t1655000000\n 2 3 \n";
        let edges = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_edge_list("0 x\n".as_bytes()).is_err());
        assert!(parse_edge_list("42\n".as_bytes()).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let g = DynamicGraph::from_edges(5, &[(0, 4), (1, 2), (2, 3)]);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let edges = parse_edge_list(buf.as_slice()).unwrap();
        let g2 = DynamicGraph::from_edges(5, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_blocks_roundtrip_all_families() {
        let und = DynamicGraph::from_edges(6, &[(0, 4), (1, 2), (2, 3), (0, 5)]);
        let mut buf = Vec::new();
        write_graph_bin(&und, &mut buf).unwrap();
        assert_eq!(buf.len() as u64, graph_bin_len(&und));
        assert_eq!(read_graph_bin(buf.as_slice()).unwrap(), und);

        let dir = DynamicDiGraph::from_edges(5, &[(0, 1), (1, 0), (3, 2), (4, 1)]);
        let mut buf = Vec::new();
        write_digraph_bin(&dir, &mut buf).unwrap();
        assert_eq!(buf.len() as u64, digraph_bin_len(&dir));
        assert_eq!(read_digraph_bin(buf.as_slice()).unwrap(), dir);

        let wtd = WeightedGraph::from_edges(5, &[(0, 1, 3), (1, 2, 1), (0, 4, 9)]);
        let mut buf = Vec::new();
        write_weighted_bin(&wtd, &mut buf).unwrap();
        assert_eq!(buf.len() as u64, weighted_bin_len(&wtd));
        assert_eq!(read_weighted_bin(buf.as_slice()).unwrap(), wtd);
    }

    #[test]
    fn binary_blocks_reject_corruption_with_typed_errors() {
        // Wrong magic.
        assert!(matches!(
            read_graph_bin(&b"XXXX"[..]),
            Err(BinGraphError::BadMagic { .. })
        ));
        // Truncated mid-header.
        assert!(matches!(
            read_graph_bin(&b"BGU2\x01\x02"[..]),
            Err(BinGraphError::Truncated { .. })
        ));
        // Huge n with a short stream must fail without a giant
        // allocation (chunked reads hit EOF first).
        let mut buf = Vec::new();
        buf.extend_from_slice(b"BGU2");
        buf.extend_from_slice(&(1u64 << 30).to_le_bytes()); // n = 2^30
        buf.extend_from_slice(&0u64.to_le_bytes()); // m
        buf.extend_from_slice(&[0u8; 256]);
        assert!(matches!(
            read_graph_bin(buf.as_slice()),
            Err(BinGraphError::Truncated { .. })
        ));
        // n beyond the u32 id space is rejected at the header.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"BGU2");
        buf.extend_from_slice(&(1u64 << 41).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            read_graph_bin(buf.as_slice()),
            Err(BinGraphError::Header { .. })
        ));
        // An edge count that would overflow the half-edge computation
        // is a typed header error, not an arithmetic panic.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"BGU2");
        buf.extend_from_slice(&0u64.to_le_bytes()); // n = 0
        buf.extend_from_slice(&(1u64 << 63).to_le_bytes()); // m = 2^63
        assert!(matches!(
            read_graph_bin(buf.as_slice()),
            Err(BinGraphError::Header { .. })
        ));
        // Degree sum contradicting the edge count.
        let g = DynamicGraph::from_edges(3, &[(0, 1)]);
        let mut buf = Vec::new();
        write_graph_bin(&g, &mut buf).unwrap();
        buf[12] = 9; // m = 9, degrees still sum to 2
        assert!(matches!(
            read_graph_bin(buf.as_slice()),
            Err(BinGraphError::Header { .. })
        ));
        // Unmirrored adjacency is caught by structural validation.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"BGU2");
        buf.extend_from_slice(&2u64.to_le_bytes()); // n = 2
        buf.extend_from_slice(&1u64.to_le_bytes()); // m = 1
        buf.extend_from_slice(&2u32.to_le_bytes()); // deg(0) = 2
        buf.extend_from_slice(&0u32.to_le_bytes()); // deg(1) = 0
        buf.extend_from_slice(&1u32.to_le_bytes()); // 0 → 1 …
        buf.extend_from_slice(&1u32.to_le_bytes()); // … twice, unsorted+unmirrored
        assert!(matches!(
            read_graph_bin(buf.as_slice()),
            Err(BinGraphError::Invalid { .. })
        ));
    }
}
