//! FulPLL: the fully dynamic 2-hop cover baseline.
//!
//! The paper's FulPLL "is composed of two separate dynamic algorithms"
//! — the incremental one of Akiba et al. 2014 and the decremental one
//! of D'Angelo et al. 2019 — applied **one update at a time** (the
//! single-update setting; FulPLL cannot batch). This wrapper owns the
//! graph and the labelling and dispatches each update accordingly.

use crate::dec_pll;
use crate::inc_pll;
use crate::pll::{PllIndex, TwoHopLabels};
use batchhl_common::{Dist, Vertex, INF};
use batchhl_graph::{Batch, DynamicGraph, Update};

/// Fully dynamic PLL index.
pub struct FulPll {
    graph: DynamicGraph,
    pub labels: TwoHopLabels,
}

impl FulPll {
    /// Static PLL construction (the expensive part — Table 4 CT).
    pub fn build(graph: DynamicGraph) -> Self {
        let labels = PllIndex::build(&graph).labels;
        FulPll { graph, labels }
    }

    /// Budgeted construction; `None` mirrors the paper's DNF entries.
    pub fn build_with_deadline(
        graph: DynamicGraph,
        deadline: Option<std::time::Instant>,
    ) -> Option<Self> {
        let labels = PllIndex::build_with_deadline(&graph, deadline)?.labels;
        Some(FulPll { graph, labels })
    }

    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    pub fn query(&self, s: Vertex, t: Vertex) -> Option<Dist> {
        let d = self.query_dist(s, t);
        (d != INF).then_some(d)
    }

    pub fn query_dist(&self, s: Vertex, t: Vertex) -> Dist {
        let n = self.graph.num_vertices();
        if (s as usize) >= n || (t as usize) >= n {
            return INF;
        }
        self.labels.query(s, t)
    }

    /// Apply one valid update (single-update setting).
    pub fn apply_update(&mut self, u: Update) -> bool {
        let (a, b) = u.endpoints();
        match u {
            Update::Insert(..) => {
                self.graph.ensure_vertices(a.max(b) as usize + 1);
                if !self.graph.insert_edge(a, b) {
                    return false;
                }
                inc_pll::insert_edge(&mut self.labels, &self.graph, a, b);
                true
            }
            Update::Delete(..) => {
                if (a.max(b) as usize) >= self.graph.num_vertices() || !self.graph.remove_edge(a, b)
                {
                    return false;
                }
                dec_pll::delete_edge(&mut self.labels, &self.graph, a, b);
                true
            }
        }
    }

    /// Apply a batch by looping over its updates one at a time.
    /// Returns the number of applied (valid) updates.
    pub fn apply_batch(&mut self, batch: &Batch) -> usize {
        batch
            .updates()
            .iter()
            .filter(|&&u| self.apply_update(u))
            .count()
    }

    pub fn size_entries(&self) -> usize {
        self.labels.size_entries()
    }

    pub fn size_bytes(&self) -> usize {
        self.labels.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_graph::generators::erdos_renyi_gnm;
    use batchhl_hcl::oracle::all_pairs_bfs;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_exact(idx: &FulPll) {
        let truth = all_pairs_bfs(idx.graph());
        let n = idx.graph().num_vertices() as Vertex;
        for s in 0..n {
            for t in 0..n {
                assert_eq!(idx.query_dist(s, t), truth[s as usize][t as usize]);
            }
        }
    }

    #[test]
    fn mixed_single_updates_stay_exact() {
        for seed in 0..4u64 {
            let g = erdos_renyi_gnm(35, 70, seed);
            let mut idx = FulPll::build(g);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF0F0);
            for _ in 0..20 {
                let a = rng.gen_range(0..35u32);
                let b = rng.gen_range(0..35u32);
                if a == b {
                    continue;
                }
                let u = if idx.graph().has_edge(a, b) {
                    Update::Delete(a, b)
                } else {
                    Update::Insert(a, b)
                };
                assert!(idx.apply_update(u));
            }
            assert_exact(&idx);
        }
    }

    #[test]
    fn invalid_updates_are_rejected() {
        let g = erdos_renyi_gnm(10, 15, 1);
        let mut idx = FulPll::build(g);
        let existing = idx.graph().edges().next().unwrap();
        assert!(!idx.apply_update(Update::Insert(existing.0, existing.1)));
        assert!(!idx.apply_update(Update::Delete(9, 9)));
    }

    #[test]
    fn batch_application_counts() {
        let g = erdos_renyi_gnm(20, 30, 2);
        let mut idx = FulPll::build(g);
        let mut b = Batch::new();
        let e = idx.graph().edges().next().unwrap();
        b.delete(e.0, e.1);
        b.delete(e.0, e.1); // second time invalid
        assert_eq!(idx.apply_batch(&b), 1);
        assert_exact(&idx);
    }
}
