//! Bit-parallel shortest-path-tree payload for FulFD.
//!
//! Hayashi et al.'s FulFD keeps, per root `r`, besides the exact
//! distances `d(r, v)`, two 64-bit masks per vertex over a set of up to
//! 64 *selected neighbours* `n_0 … n_63` of `r`:
//!
//! * `S⁻¹(v) = { i : d(n_i, v) = d(r, v) − 1 }`,
//! * `S⁰(v) = { i : d(n_i, v) = d(r, v) }`.
//!
//! (Adjacency to `r` pins `d(n_i, v)` to `d(r,v) ± 1` or `d(r,v)`.)
//! They tighten the query bound `d(r,s) + d(r,t)` by up to 2 hops:
//! a shared bit in `S⁻¹(s) ∩ S⁻¹(t)` certifies a path through that
//! neighbour of combined length `d − 2`, a mixed intersection `d − 1`.
//!
//! The masks obey level-local recurrences over the root's BFS levels
//! (`ℓ(v) = d(r, v)`), which both the construction and the dynamic
//! repair exploit:
//!
//! ```text
//! S⁻¹(v) = ∪ { S⁻¹(u) : u ∈ N(v), ℓ(u) = ℓ(v) − 1 }  ∪ {i : v = n_i}
//! S⁰(v)  = ∪ { S⁰(u) : u ∈ N(v), ℓ(u) = ℓ(v) − 1 }
//!        ∪ ∪ { S⁻¹(u) : u ∈ N(v), ℓ(u) = ℓ(v) }
//! ```
//!
//! Maintaining the masks is the expensive part of FulFD's updates —
//! shortest-path *multiplicity* changes ripple much further than
//! distance changes — which is exactly the cost structure the BatchHL
//! paper's Table 3 comparison exercises.

use batchhl_common::{DialQueue, Dist, SparseBitSet, Vertex, INF};
use batchhl_graph::DynamicGraph;

/// Per-root bit-parallel payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitParallelTree {
    /// Selected neighbours of the root (bit `i` ↔ `sources[i]`).
    pub sources: Vec<Vertex>,
    /// `S⁻¹` masks, one per vertex.
    pub sm1: Vec<u64>,
    /// `S⁰` masks, one per vertex.
    pub s0: Vec<u64>,
}

impl BitParallelTree {
    /// Select up to 64 highest-degree neighbours of `root` and compute
    /// the masks for the given (exact) distance array.
    pub fn build(g: &DynamicGraph, root: Vertex, dist: &[Dist]) -> Self {
        let mut nbrs: Vec<Vertex> = g.neighbors(root).to_vec();
        nbrs.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
        nbrs.truncate(64);
        let mut bp = BitParallelTree {
            sources: nbrs,
            sm1: vec![0; g.num_vertices()],
            s0: vec![0; g.num_vertices()],
        };
        bp.recompute_all(g, dist);
        bp
    }

    /// Bit of a source vertex, if it is one.
    fn source_bit(&self, v: Vertex) -> u64 {
        self.sources
            .iter()
            .position(|&s| s == v)
            .map(|i| 1u64 << i)
            .unwrap_or(0)
    }

    /// Evaluate the recurrence for one vertex from its neighbours.
    #[inline]
    fn eval(&self, g: &DynamicGraph, dist: &[Dist], v: Vertex) -> (u64, u64) {
        let lv = dist[v as usize];
        if lv == INF || lv == 0 {
            return (0, 0);
        }
        let mut sm1 = if lv == 1 { self.source_bit(v) } else { 0 };
        let mut s0 = 0u64;
        for &u in g.neighbors(v) {
            let lu = dist[u as usize];
            if lu.saturating_add(1) == lv {
                sm1 |= self.sm1[u as usize];
                s0 |= self.s0[u as usize];
            } else if lu == lv {
                s0 |= self.sm1[u as usize];
            }
        }
        // The union only pins d(n_i, v) to {ℓ−1, ℓ}; bits that belong
        // to S⁻¹ must not leak into S⁰.
        (sm1, s0 & !sm1)
    }

    /// Full recomputation in level order (construction / rebuild).
    pub fn recompute_all(&mut self, g: &DynamicGraph, dist: &[Dist]) {
        let n = g.num_vertices();
        self.sm1 = vec![0; n];
        self.s0 = vec![0; n];
        let mut order: Vec<Vertex> = (0..n as Vertex)
            .filter(|&v| dist[v as usize] != INF)
            .collect();
        order.sort_by_key(|&v| dist[v as usize]);
        // Two passes per level: S⁻¹ first (depends on the previous
        // level only), then S⁰ (same-level S⁻¹ must be final).
        let mut i = 0;
        while i < order.len() {
            let mut j = i;
            while j < order.len() && dist[order[j] as usize] == dist[order[i] as usize] {
                j += 1;
            }
            for &v in &order[i..j] {
                self.sm1[v as usize] = self.eval(g, dist, v).0;
            }
            for &v in &order[i..j] {
                self.s0[v as usize] = self.eval(g, dist, v).1;
            }
            i = j;
        }
    }

    /// Repair the masks after an update. `seeds` must contain every
    /// vertex whose recurrence *inputs* may have changed: the update's
    /// endpoints plus all vertices whose distance changed. Changes then
    /// propagate level-monotonically (chaotic iteration over the
    /// recurrence, driven by a Dial queue keyed by level).
    pub fn repair(
        &mut self,
        g: &DynamicGraph,
        dist: &[Dist],
        seeds: &[Vertex],
        queue: &mut DialQueue,
        queued: &mut SparseBitSet,
    ) {
        queue.clear();
        queued.clear();
        queued.grow(g.num_vertices());
        self.grow(g.num_vertices());
        for &v in seeds {
            let d = dist[v as usize];
            if d == INF {
                // Disconnected vertices zero out immediately.
                self.sm1[v as usize] = 0;
                self.s0[v as usize] = 0;
            } else if queued.insert(v) {
                queue.push(d, v);
            }
            // A level change at `v` can strip contributions from
            // *lower-level* former readers, which propagation (which
            // only walks level-upward) would miss — so every finite
            // neighbour of a seed is re-evaluated too.
            for &w in g.neighbors(v) {
                let dw = dist[w as usize];
                if dw != INF && queued.insert(w) {
                    queue.push(dw, w);
                }
            }
        }
        while let Some((_, v)) = queue.pop() {
            queued.remove(v);
            let (sm1, s0) = self.eval(g, dist, v);
            if sm1 == self.sm1[v as usize] && s0 == self.s0[v as usize] {
                continue;
            }
            self.sm1[v as usize] = sm1;
            self.s0[v as usize] = s0;
            // Readers of v's masks: same-level and next-level
            // neighbours (the recurrence never reads downward).
            let lv = dist[v as usize];
            for &w in g.neighbors(v) {
                let lw = dist[w as usize];
                if lw != INF && lw >= lv && queued.insert(w) {
                    queue.push(lw, w);
                }
            }
        }
    }

    /// Drop a source (bit `i`) — used when the root loses the edge to
    /// it, invalidating the `±1` level pinning. O(|V|).
    pub fn drop_source(&mut self, v: Vertex) {
        if let Some(i) = self.sources.iter().position(|&s| s == v) {
            let keep = !(1u64 << i);
            for m in &mut self.sm1 {
                *m &= keep;
            }
            for m in &mut self.s0 {
                *m &= keep;
            }
            // Keep bit positions stable: replace with a tombstone that
            // can never match a vertex.
            self.sources[i] = Vertex::MAX;
        }
    }

    /// Refine the two-hop bound `d(r,s) + d(r,t)` with the masks.
    #[inline]
    pub fn refine(&self, s: Vertex, t: Vertex, d: Dist) -> Dist {
        if d == INF || d < 2 {
            return d;
        }
        let (as1, a0) = (self.sm1[s as usize], self.s0[s as usize]);
        let (bs1, b0) = (self.sm1[t as usize], self.s0[t as usize]);
        if as1 & bs1 != 0 {
            d - 2
        } else if (as1 & b0) | (a0 & bs1) != 0 {
            d - 1
        } else {
            d
        }
    }

    pub fn grow(&mut self, n: usize) {
        if n > self.sm1.len() {
            self.sm1.resize(n, 0);
            self.s0.resize(n, 0);
        }
    }

    /// Bytes used by the masks (the `N = 64` factor of FulFD's space).
    pub fn size_bytes(&self) -> usize {
        self.sm1.len() * 16
    }
}

/// Reference implementation straight from the definition: one BFS per
/// source. Used by tests to validate construction and repair.
pub fn masks_from_definition(
    g: &DynamicGraph,
    dist: &[Dist],
    sources: &[Vertex],
) -> (Vec<u64>, Vec<u64>) {
    let n = g.num_vertices();
    let (mut sm1, mut s0) = (vec![0u64; n], vec![0u64; n]);
    for (i, &src) in sources.iter().enumerate() {
        if src == Vertex::MAX {
            continue; // tombstoned source
        }
        let ds = batchhl_graph::bfs::bfs_distances(g, src);
        for v in 0..n {
            if dist[v] == INF || dist[v] == 0 {
                continue;
            }
            if ds[v] != INF {
                if ds[v].saturating_add(1) == dist[v] {
                    sm1[v] |= 1 << i;
                } else if ds[v] == dist[v] {
                    s0[v] |= 1 << i;
                }
            }
        }
    }
    (sm1, s0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_graph::bfs::bfs_distances;
    use batchhl_graph::generators::{barabasi_albert, erdos_renyi_gnm, path, star};

    fn check_against_definition(g: &DynamicGraph, root: Vertex) {
        let dist = bfs_distances(g, root);
        let bp = BitParallelTree::build(g, root, &dist);
        let (sm1, s0) = masks_from_definition(g, &dist, &bp.sources);
        assert_eq!(bp.sm1, sm1, "S-1 masks for root {root}");
        assert_eq!(bp.s0, s0, "S0 masks for root {root}");
    }

    #[test]
    fn construction_matches_definition() {
        check_against_definition(&path(8), 0);
        check_against_definition(&star(10), 0);
        check_against_definition(&star(10), 3);
        for seed in 0..6 {
            let g = erdos_renyi_gnm(50, 120, seed);
            check_against_definition(&g, 0);
            check_against_definition(&g, 17);
        }
        let g = barabasi_albert(100, 3, 9);
        check_against_definition(&g, g.vertices_by_degree()[0]);
    }

    #[test]
    fn source_capping_at_64() {
        let g = star(100);
        let dist = bfs_distances(&g, 0);
        let bp = BitParallelTree::build(&g, 0, &dist);
        assert_eq!(bp.sources.len(), 64);
    }

    #[test]
    fn refine_bounds() {
        // Triangle fan: root 0 with sources 1, 2; vertices 3 (adjacent
        // to 1) and 4 (adjacent to 2 and 1).
        let g = DynamicGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 4), (1, 4)]);
        let dist = bfs_distances(&g, 0);
        let bp = BitParallelTree::build(&g, 0, &dist);
        // d(3) = d(4) = 2; both have source 1 at distance 1 ⇒ shared
        // S⁻¹ bit ⇒ bound 4 refines to 2.
        assert_eq!(bp.refine(3, 4, 4), 2);
        assert!(bp.refine(3, 4, 1) == 1, "small bounds pass through");
    }

    #[test]
    fn repair_tracks_random_updates() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..5u64 {
            let mut g = erdos_renyi_gnm(40, 90, seed);
            let root = 0;
            let mut dist = bfs_distances(&g, root);
            let mut bp = BitParallelTree::build(&g, root, &dist);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xB17);
            let mut queue = DialQueue::new();
            let mut queued = SparseBitSet::new(40);
            for _ in 0..25 {
                let a = rng.gen_range(0..40u32);
                let b = rng.gen_range(0..40u32);
                if a == b {
                    continue;
                }
                let existed = g.has_edge(a, b);
                if existed {
                    g.remove_edge(a, b);
                    if a == root || b == root {
                        bp.drop_source(if a == root { b } else { a });
                    }
                } else {
                    g.insert_edge(a, b);
                }
                let new_dist = bfs_distances(&g, root);
                let mut seeds: Vec<Vertex> = vec![a, b];
                for v in 0..40u32 {
                    if dist[v as usize] != new_dist[v as usize] {
                        seeds.push(v);
                    }
                }
                dist = new_dist;
                bp.repair(&g, &dist, &seeds, &mut queue, &mut queued);
                let (sm1, s0) = masks_from_definition(&g, &dist, &bp.sources);
                assert_eq!(bp.sm1, sm1, "seed {seed}: S-1 after update");
                assert_eq!(bp.s0, s0, "seed {seed}: S0 after update");
            }
        }
    }
}
