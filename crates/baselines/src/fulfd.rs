//! FulFD (Hayashi, Akiba & Kawarabayashi, CIKM 2016).
//!
//! The strongest dynamic baseline in the paper: pick a small set of
//! high-degree roots, maintain a **full shortest-path tree** (exact
//! distance array over *all* vertices) per root under every single
//! update, and answer queries by the bound `min_r d(r,s) + d(r,t)`
//! refined with a bounded bidirectional search on the root-sparsified
//! graph. Its `|R| · |V|` distance storage is what Table 4 contrasts
//! with the pruned highway-cover labels, and its per-single-update
//! maintenance cost (IncFD / DecFD below) is what Table 3 contrasts
//! with batch updates.
//!
//! Each root also carries the original's 64-neighbour **bit-parallel**
//! masks ([`crate::bit_parallel`]), maintained after every distance
//! repair — this mask propagation is the dominant update cost of the
//! real FulFD and the reason batch updates beat it in Table 3.
//!
//! * **IncFD** — edge `(a,b)` inserted: per root, a decrease-only BFS
//!   relaxation from the closer endpoint's far side.
//! * **DecFD** — edge deleted: per root, classic two-phase repair:
//!   identify the vertices whose current distance lost every support
//!   (level-order propagation), then recompute them from the unaffected
//!   boundary with a Dial sweep.

use crate::bit_parallel::BitParallelTree;
use batchhl_common::{DialQueue, Dist, SparseBitSet, Vertex, INF};
use batchhl_graph::bfs::{bfs_distances, BiBfs};
use batchhl_graph::{Batch, DynamicGraph, Update};

/// Fully dynamic distance oracle with full per-root bit-parallel SPTs.
pub struct FulFd {
    graph: DynamicGraph,
    roots: Vec<Vertex>,
    is_root: Vec<bool>,
    /// `dist[i][v]` — exact `d(roots[i], v)`, maintained dynamically.
    dist: Vec<Box<[Dist]>>,
    /// Bit-parallel masks per root.
    bp: Vec<BitParallelTree>,
    bibfs: BiBfs,
    queue: DialQueue,
    aff: SparseBitSet,
    /// Distance-changed vertices of the current root repair (seeds for
    /// the mask repair).
    changed: Vec<Vertex>,
}

impl Clone for FulFd {
    fn clone(&self) -> Self {
        let n = self.graph.num_vertices();
        FulFd {
            graph: self.graph.clone(),
            roots: self.roots.clone(),
            is_root: self.is_root.clone(),
            dist: self.dist.clone(),
            bp: self.bp.clone(),
            bibfs: BiBfs::new(n),
            queue: DialQueue::new(),
            aff: SparseBitSet::new(n),
            changed: Vec::new(),
        }
    }
}

impl FulFd {
    /// Build with the `num_roots` highest-degree vertices as roots
    /// (the same selection the paper uses for both FulFD and BatchHL).
    pub fn build(graph: DynamicGraph, num_roots: usize) -> Self {
        let mut roots = graph.vertices_by_degree();
        roots.truncate(num_roots.min(graph.num_vertices()));
        Self::build_with_roots(graph, roots)
    }

    pub fn build_with_roots(graph: DynamicGraph, roots: Vec<Vertex>) -> Self {
        let n = graph.num_vertices();
        let mut is_root = vec![false; n];
        for &r in &roots {
            is_root[r as usize] = true;
        }
        let dist: Vec<Box<[Dist]>> = roots
            .iter()
            .map(|&r| bfs_distances(&graph, r).into_boxed_slice())
            .collect();
        let bp = roots
            .iter()
            .zip(&dist)
            .map(|(&r, row)| BitParallelTree::build(&graph, r, row))
            .collect();
        FulFd {
            graph,
            roots,
            is_root,
            dist,
            bp,
            bibfs: BiBfs::new(n),
            queue: DialQueue::new(),
            aff: SparseBitSet::new(n),
            changed: Vec::new(),
        }
    }

    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    pub fn roots(&self) -> &[Vertex] {
        &self.roots
    }

    /// Storage of the distance arrays plus bit-parallel masks in bytes
    /// (the FulFD labelling size of Table 4: full trees, constant under
    /// updates).
    pub fn size_bytes(&self) -> usize {
        self.roots.len() * self.graph.num_vertices() * std::mem::size_of::<Dist>()
            + self
                .bp
                .iter()
                .map(BitParallelTree::size_bytes)
                .sum::<usize>()
    }

    pub fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        let d = self.query_dist(s, t);
        (d != INF).then_some(d)
    }

    pub fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        let n = self.graph.num_vertices();
        if (s as usize) >= n || (t as usize) >= n {
            return INF;
        }
        if s == t {
            return 0;
        }
        if let Some(i) = self.root_index(s) {
            return self.dist[i][t as usize];
        }
        if let Some(j) = self.root_index(t) {
            return self.dist[j][s as usize];
        }
        let mut bound = INF;
        for (row, bp) in self.dist.iter().zip(&self.bp) {
            let (ds, dt) = (row[s as usize], row[t as usize]);
            if ds == INF || dt == INF {
                continue;
            }
            bound = bound.min(bp.refine(s, t, ds + dt));
        }
        let is_root = &self.is_root;
        let found = self
            .bibfs
            .run(&self.graph, s, t, bound, |v| !is_root[v as usize]);
        found.unwrap_or(bound)
    }

    fn root_index(&self, v: Vertex) -> Option<usize> {
        self.is_root[v as usize].then(|| self.roots.iter().position(|&r| r == v).expect("root map"))
    }

    /// Apply one update (FulFD's native granularity). Returns `false`
    /// for invalid updates.
    pub fn apply_update(&mut self, u: Update) -> bool {
        let (a, b) = u.endpoints();
        match u {
            Update::Insert(..) => {
                if (a.max(b) as usize) >= self.graph.num_vertices() {
                    self.grow(a.max(b) as usize + 1);
                }
                if !self.graph.insert_edge(a, b) {
                    return false;
                }
                for i in 0..self.roots.len() {
                    self.changed.clear();
                    self.inc_root(i, a, b);
                    self.repair_masks(i, a, b);
                }
                true
            }
            Update::Delete(..) => {
                if (a.max(b) as usize) >= self.graph.num_vertices() || !self.graph.remove_edge(a, b)
                {
                    return false;
                }
                for i in 0..self.roots.len() {
                    self.changed.clear();
                    self.dec_root(i, a, b);
                    // Losing the edge to a selected neighbour breaks
                    // its level pinning: retire that mask bit.
                    if a == self.roots[i] {
                        self.bp[i].drop_source(b);
                    } else if b == self.roots[i] {
                        self.bp[i].drop_source(a);
                    }
                    self.repair_masks(i, a, b);
                }
                true
            }
        }
    }

    /// Propagate mask changes for root `i` after its distance repair
    /// (`self.changed` holds the distance-changed vertices).
    fn repair_masks(&mut self, i: usize, a: Vertex, b: Vertex) {
        self.changed.push(a);
        self.changed.push(b);
        self.bp[i].repair(
            &self.graph,
            &self.dist[i],
            &self.changed,
            &mut self.queue,
            &mut self.aff,
        );
    }

    /// Apply a batch one update at a time (the single-update setting the
    /// paper evaluates FulFD in). Returns applied count.
    pub fn apply_batch(&mut self, batch: &Batch) -> usize {
        batch
            .updates()
            .iter()
            .filter(|&&u| self.apply_update(u))
            .count()
    }

    fn grow(&mut self, n: usize) {
        self.graph.ensure_vertices(n);
        self.is_root.resize(n, false);
        for row in &mut self.dist {
            let mut v = std::mem::take(row).into_vec();
            v.resize(n, INF);
            *row = v.into_boxed_slice();
        }
        for bp in &mut self.bp {
            bp.grow(n);
        }
        self.aff.grow(n);
    }

    /// IncFD: decrease-only relaxation after inserting `(a, b)`.
    fn inc_root(&mut self, i: usize, a: Vertex, b: Vertex) {
        let row = &mut self.dist[i];
        let (da, db) = (row[a as usize], row[b as usize]);
        let (start, d0) = if da.saturating_add(1) < db {
            (b, da + 1)
        } else if db.saturating_add(1) < da {
            (a, db + 1)
        } else {
            return;
        };
        self.queue.clear();
        self.queue.push(d0, start);
        while let Some((d, v)) = self.queue.pop() {
            if d >= row[v as usize] {
                continue;
            }
            row[v as usize] = d;
            self.changed.push(v);
            for &w in self.graph.neighbors(v) {
                if d + 1 < row[w as usize] {
                    self.queue.push(d + 1, w);
                }
            }
        }
    }

    /// DecFD: two-phase repair after deleting `(a, b)`.
    fn dec_root(&mut self, i: usize, a: Vertex, b: Vertex) {
        let n = self.graph.num_vertices();
        let row = &mut self.dist[i];
        let (da, db) = (row[a as usize], row[b as usize]);
        let far = if da != INF && da + 1 == db {
            b
        } else if db != INF && db + 1 == da {
            a
        } else {
            return; // edge on no shortest path from this root
        };
        // Phase 1: level-order loss-of-support propagation.
        self.aff.clear();
        self.queue.clear();
        let root = self.roots[i];
        if far != root && !has_support(&self.graph, row, &self.aff, far) {
            self.aff.insert(far);
            self.queue.push(row[far as usize], far);
        }
        // Drain in distance order; children at dist+1 are re-checked
        // whenever a parent joins the affected set.
        let mut pending: Vec<Vertex> = Vec::new();
        while let Some((_, v)) = self.queue.pop() {
            for &u in self.graph.neighbors(v) {
                if row[u as usize] == row[v as usize].saturating_add(1)
                    && !self.aff.contains(u)
                    && u != root
                    && !has_support(&self.graph, row, &self.aff, u)
                {
                    self.aff.insert(u);
                    pending.push(u);
                }
            }
            for u in pending.drain(..) {
                self.queue.push(row[u as usize], u);
            }
        }
        if self.aff.inserted().is_empty() {
            return;
        }
        // Phase 2: boundary recompute (Dial sweep).
        self.queue.clear();
        let mut bound = vec![INF; 0];
        bound.resize(n, INF);
        for &v in self.aff.inserted() {
            let mut best = INF;
            for &w in self.graph.neighbors(v) {
                if !self.aff.contains(w) {
                    best = best.min(row[w as usize].saturating_add(1));
                }
            }
            bound[v as usize] = best;
            if best != INF {
                self.queue.push(best, v);
            }
        }
        while let Some((d, v)) = self.queue.pop() {
            if !self.aff.contains(v) || bound[v as usize] != d {
                continue;
            }
            self.aff.remove(v);
            row[v as usize] = d;
            self.changed.push(v);
            for &w in self.graph.neighbors(v) {
                if self.aff.contains(w) && d + 1 < bound[w as usize] {
                    bound[w as usize] = d + 1;
                    self.queue.push(d + 1, w);
                }
            }
        }
        // Anything still affected is now unreachable.
        for idx in 0..self.aff.inserted().len() {
            let v = self.aff.inserted()[idx];
            if self.aff.contains(v) {
                self.aff.remove(v);
                row[v as usize] = INF;
                self.changed.push(v);
            }
        }
    }
}

/// A vertex keeps its distance iff some neighbour outside the affected
/// set supports it at `dist - 1`.
#[inline]
fn has_support(g: &DynamicGraph, row: &[Dist], aff: &SparseBitSet, v: Vertex) -> bool {
    let dv = row[v as usize];
    if dv == INF || dv == 0 {
        return true;
    }
    g.neighbors(v)
        .iter()
        .any(|&w| !aff.contains(w) && row[w as usize].saturating_add(1) == dv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_graph::generators::{barabasi_albert, erdos_renyi_gnm, path};
    use batchhl_hcl::oracle::all_pairs_bfs;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_trees_exact(idx: &FulFd) {
        for (i, &r) in idx.roots.iter().enumerate() {
            let want = bfs_distances(idx.graph(), r);
            assert_eq!(&idx.dist[i][..], &want[..], "tree of root {r}");
            let (sm1, s0) = crate::bit_parallel::masks_from_definition(
                idx.graph(),
                &idx.dist[i],
                &idx.bp[i].sources,
            );
            assert_eq!(idx.bp[i].sm1, sm1, "S-1 masks of root {r}");
            assert_eq!(idx.bp[i].s0, s0, "S0 masks of root {r}");
        }
    }

    fn assert_queries_exact(idx: &mut FulFd) {
        let truth = all_pairs_bfs(idx.graph());
        let n = idx.graph().num_vertices() as Vertex;
        for s in 0..n {
            for t in 0..n {
                assert_eq!(
                    idx.query_dist(s, t),
                    truth[s as usize][t as usize],
                    "query({s},{t})"
                );
            }
        }
    }

    #[test]
    fn construction_and_query() {
        let g = erdos_renyi_gnm(50, 110, 3);
        let mut idx = FulFd::build(g, 5);
        assert_trees_exact(&idx);
        assert_queries_exact(&mut idx);
    }

    #[test]
    fn mixed_updates_keep_trees_exact() {
        for seed in 0..6u64 {
            let g = erdos_renyi_gnm(45, 90, seed);
            let mut idx = FulFd::build(g, 4);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xFD);
            for _ in 0..25 {
                let a = rng.gen_range(0..45u32);
                let b = rng.gen_range(0..45u32);
                if a == b {
                    continue;
                }
                let u = if idx.graph().has_edge(a, b) {
                    Update::Delete(a, b)
                } else {
                    Update::Insert(a, b)
                };
                idx.apply_update(u);
                assert_trees_exact(&idx);
            }
            assert_queries_exact(&mut idx);
        }
    }

    #[test]
    fn disconnection_and_reconnection() {
        let g = path(8);
        let mut idx = FulFd::build(g, 2);
        idx.apply_update(Update::Delete(3, 4));
        assert_trees_exact(&idx);
        assert_eq!(idx.query(0, 7), None);
        idx.apply_update(Update::Insert(0, 7));
        assert_trees_exact(&idx);
        assert_eq!(idx.query(2, 5), Some(5)); // 2-1-0-7-6-5
    }

    #[test]
    fn size_is_full_trees_plus_masks() {
        let g = barabasi_albert(200, 3, 1);
        let idx = FulFd::build(g, 10);
        assert_eq!(idx.size_bytes(), 10 * 200 * 4 + 10 * 200 * 16);
    }

    #[test]
    fn batch_is_single_update_loop() {
        let g = erdos_renyi_gnm(30, 60, 9);
        let mut idx = FulFd::build(g, 3);
        let mut b = Batch::new();
        b.insert(0, 29);
        b.insert(0, 29); // duplicate: invalid on second application
        b.delete(5, 5); // self-loop: invalid
        assert_eq!(idx.apply_batch(&b), 1);
        assert_trees_exact(&idx);
    }
}
