//! Baselines the BatchHL paper compares against (Section 7.1).
//!
//! All of them are implemented from scratch on the same graph substrate
//! so the comparison measures algorithms, not plumbing:
//!
//! * [`bibfs`] — the online bidirectional-BFS baseline (no index),
//! * [`pll`] — static pruned landmark labelling (Akiba et al. 2013),
//!   the 2-hop-cover foundation of the FulPLL family,
//! * [`psl`] — PSL\*-style level-synchronous parallel PLL construction
//!   (Li et al. 2019),
//! * [`inc_pll`] — incremental PLL (Akiba et al. 2014): resumed pruned
//!   BFSs on insertion, outdated entries deliberately kept,
//! * [`dec_pll`] — decremental PLL in the style of D'Angelo et al.
//!   2019: detect affected hub/vertex pairs, remove their entries,
//!   rebuild by boundary-seeded partial BFSs in rank order,
//! * [`full_pll`] — FulPLL: the fully dynamic combination of the two,
//! * [`fulfd`] — FulFD (Hayashi et al. 2016): full shortest-path trees
//!   per landmark maintained per single update + bounded online search
//!   (see DESIGN.md §4 for the bit-parallel substitution note).

pub mod bibfs;
pub mod bit_parallel;
pub mod dec_pll;
pub mod fulfd;
pub mod full_pll;
pub mod inc_pll;
pub mod pll;
pub mod psl;

pub use bibfs::OnlineBiBfs;
pub use fulfd::FulFd;
pub use full_pll::FulPll;
pub use pll::{PllIndex, TwoHopLabels};
pub use psl::{build_psl, build_psl_with_deadline};
