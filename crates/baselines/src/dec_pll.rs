//! Decremental PLL in the style of D'Angelo, D'Emidio & Frigioni (JEA
//! 2019): detect affected hub–vertex pairs, remove their entries, and
//! rebuild by boundary-seeded partial searches in rank order.
//!
//! Deleting `(a, b)` can only change `d(h, v)` (or the set of shortest
//! `h`–`v` paths, which governs covers) for hubs `h` with
//! `|d(h, a) − d(h, b)| = 1` — a shortest path through the edge must
//! enter it at consecutive levels. The three phases:
//!
//! 1. **Detect** (on pristine pre-deletion labels): for every candidate
//!    hub, an anchor search over the post-deletion graph collects the
//!    vertices whose shortest-path set w.r.t. that hub changed (the same
//!    unified pattern as BatchHL's basic search), and snapshots each
//!    affected vertex's *boundary bound* — best unaffected-neighbour
//!    distance + 1 — before any label is touched.
//! 2. **Remove** the `(hub, vertex)` entries of every affected pair.
//! 3. **Rebuild** hubs in rank order: a Dial-queue sweep from the
//!    boundary bounds recomputes exact new distances inside each
//!    affected region; an entry is re-added unless hubs of strictly
//!    higher rank already cover the pair (their entries are exact at
//!    this point — rebuilt earlier or untouched).
//!
//! The candidate-hub scan costs `O(|V|)` *queries* per deletion — this
//! baseline is expensive by design; the paper reports minutes-per-
//! deletion for its original implementation and DNFs on 8 of 12
//! datasets, which the harness mirrors with a time budget.

use crate::pll::TwoHopLabels;
use batchhl_common::{DialQueue, Dist, SparseBitSet, Vertex, INF};
use batchhl_graph::DynamicGraph;

/// Affected region of one hub: the vertices plus their boundary seeds.
struct HubRegion {
    hub_rank: u32,
    /// `(vertex, boundary bound)`; bound `INF` when fully interior.
    vertices: Vec<(Vertex, Dist)>,
}

/// Restore the 2-hop cover after deleting edge `(a, b)`.
/// `g` must already have the edge removed.
pub fn delete_edge(labels: &mut TwoHopLabels, g: &DynamicGraph, a: Vertex, b: Vertex) {
    debug_assert!(!g.has_edge(a, b));
    labels.ensure_vertices(g.num_vertices());
    let n = g.num_vertices();
    let mut aff = SparseBitSet::new(n);
    let mut queue = DialQueue::new();
    let mut regions: Vec<HubRegion> = Vec::new();

    // Phase 1: detection on pristine labels.
    for k in 0..n as u32 {
        let hub = labels.order[k as usize];
        let (dha, dhb) = (labels.query(hub, a), labels.query(hub, b));
        // The edge lies on a shortest path from `hub` only if the hub
        // reaches its endpoints at consecutive finite levels.
        let (far, dnear) = if dha != INF && dha + 1 == dhb {
            (b, dha)
        } else if dhb != INF && dhb + 1 == dha {
            (a, dhb)
        } else {
            continue;
        };
        // Anchor search on G′ (post-deletion) with old-distance pruning.
        aff.clear();
        queue.clear();
        queue.push(dnear + 1, far);
        while let Some((d, v)) = queue.pop() {
            if !aff.insert(v) {
                continue;
            }
            for &w in g.neighbors(v) {
                if d < labels.query(hub, w) {
                    queue.push(d + 1, w);
                }
            }
        }
        if aff.inserted().is_empty() {
            continue;
        }
        // Snapshot boundary bounds before any labels change.
        let mut vertices = Vec::with_capacity(aff.inserted().len());
        for &v in aff.inserted() {
            let mut bound = INF;
            for &w in g.neighbors(v) {
                if !aff.contains(w) {
                    bound = bound.min(labels.query(hub, w).saturating_add(1));
                }
            }
            vertices.push((v, bound));
        }
        regions.push(HubRegion {
            hub_rank: k,
            vertices,
        });
    }

    // Phase 2: remove entries of every affected pair.
    for region in &regions {
        for &(v, _) in &region.vertices {
            labels.remove(v, region.hub_rank);
        }
    }

    // Phase 3: rebuild in rank order (regions are already rank-sorted).
    let mut new_dist = vec![INF; n];
    for region in &regions {
        let hub = labels.order[region.hub_rank as usize];
        aff.clear();
        queue.clear();
        for &(v, bound) in &region.vertices {
            aff.insert(v);
            new_dist[v as usize] = bound;
            if bound != INF {
                queue.push(bound, v);
            }
        }
        // Dial sweep: the minimum bound is exact (cf. Lemma 5.20).
        while let Some((d, v)) = queue.pop() {
            if !aff.contains(v) || new_dist[v as usize] != d {
                continue;
            }
            aff.remove(v);
            for &w in g.neighbors(v) {
                if aff.contains(w) && d + 1 < new_dist[w as usize] {
                    new_dist[w as usize] = d + 1;
                    queue.push(d + 1, w);
                }
            }
        }
        for &(v, _) in &region.vertices {
            let d = new_dist[v as usize];
            new_dist[v as usize] = INF; // reset scratch
            if d == INF || v == hub {
                continue;
            }
            // Canonical re-add: skip iff strictly higher-ranked hubs
            // already cover the pair at the new distance.
            if labels.query_rank_bounded(hub, v, region.hub_rank) <= d {
                continue;
            }
            labels.upsert(v, region.hub_rank, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pll::PllIndex;
    use batchhl_graph::generators::{cycle, erdos_renyi_gnm, path};
    use batchhl_hcl::oracle::all_pairs_bfs;
    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, SeedableRng};

    fn assert_exact(labels: &TwoHopLabels, g: &DynamicGraph) {
        let truth = all_pairs_bfs(g);
        for s in 0..g.num_vertices() as Vertex {
            for t in 0..g.num_vertices() as Vertex {
                assert_eq!(
                    labels.query(s, t),
                    truth[s as usize][t as usize],
                    "query({s},{t})"
                );
            }
        }
    }

    #[test]
    fn deletion_on_cycle_stays_exact() {
        let mut g = cycle(8);
        let mut idx = PllIndex::build(&g);
        g.remove_edge(0, 7);
        delete_edge(&mut idx.labels, &g, 0, 7);
        assert_exact(&idx.labels, &g);
    }

    #[test]
    fn disconnecting_deletion_stays_exact() {
        let mut g = path(6);
        let mut idx = PllIndex::build(&g);
        g.remove_edge(2, 3);
        delete_edge(&mut idx.labels, &g, 2, 3);
        assert_exact(&idx.labels, &g);
        assert_eq!(idx.labels.query(0, 5), INF);
    }

    #[test]
    fn random_deletion_sequences_stay_exact() {
        for seed in 0..5u64 {
            let mut g = erdos_renyi_gnm(35, 70, seed);
            let mut idx = PllIndex::build(&g);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D);
            let mut edges: Vec<_> = g.edges().collect();
            edges.shuffle(&mut rng);
            for &(x, y) in edges.iter().take(12) {
                g.remove_edge(x, y);
                delete_edge(&mut idx.labels, &g, x, y);
            }
            assert_exact(&idx.labels, &g);
        }
    }

    #[test]
    fn cover_restoration_across_hubs() {
        // The example from the module analysis: h-x, x-v, h-y, y-v with
        // rank(x) highest; deleting (x, v) must restore the (h, v)
        // entry even though d(h, v) is unchanged.
        let mut g = DynamicGraph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        // Degrees are all 2: ranking is by id — 0, 1, 2, 3.
        let mut idx = PllIndex::build(&g);
        g.remove_edge(1, 3);
        delete_edge(&mut idx.labels, &g, 1, 3);
        assert_exact(&idx.labels, &g);
    }
}
