//! PSL\*-style parallel PLL construction (Li et al., SIGMOD 2019).
//!
//! PLL's sequential pruned BFSs are hard to parallelize; PSL instead
//! builds the labelling **level-synchronously**: round `d` proposes, for
//! every vertex in parallel, the candidate hubs that reached a
//! neighbour in round `d − 1`, prunes them against the round-`d−1`
//! labelling snapshot, and commits all surviving `(hub, d)` entries at
//! once. Rounds proceed until no entry is added (≤ diameter rounds on
//! the small-world graphs the paper targets).
//!
//! Pruning against the frozen snapshot is slightly weaker than PLL's
//! sequential pruning, so the labelling can contain a few extra (always
//! exact) entries — queries remain exact, sizes remain PLL-scale, which
//! is what Table 4 compares.

use crate::pll::TwoHopLabels;
use batchhl_common::{Dist, Vertex};
use batchhl_graph::DynamicGraph;

/// Build a 2-hop cover labelling with `threads` workers.
pub fn build_psl(g: &DynamicGraph, threads: usize) -> TwoHopLabels {
    build_psl_with_deadline(g, threads, None).expect("no deadline given")
}

/// As [`build_psl`] but aborting (`None`) once the deadline passes.
pub fn build_psl_with_deadline(
    g: &DynamicGraph,
    threads: usize,
    deadline: Option<std::time::Instant>,
) -> Option<TwoHopLabels> {
    let threads = threads.max(1);
    let n = g.num_vertices();
    let mut labels = TwoHopLabels::empty(g);
    // Round 0: every vertex is its own hub at distance 0.
    let mut added_prev: Vec<Vec<u32>> = (0..n).map(|v| vec![labels.rank[v]]).collect();
    for v in 0..n as Vertex {
        let r = labels.rank[v as usize];
        labels.upsert(v, r, 0);
    }

    let mut d: Dist = 1;
    loop {
        if let Some(dl) = deadline {
            if std::time::Instant::now() > dl {
                return None;
            }
        }
        // Propose-and-prune phase against the frozen snapshot.
        let snapshot = &labels;
        let added_prev_ref = &added_prev;
        let mut added_next: Vec<Vec<u32>> = Vec::with_capacity(n);
        if threads == 1 || n < 256 {
            added_next = (0..n as Vertex)
                .map(|v| propose(g, snapshot, added_prev_ref, v, d))
                .collect();
        } else {
            let chunk = n.div_ceil(threads);
            let mut parts: Vec<Vec<Vec<u32>>> = Vec::new();
            std::thread::scope(|s| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    if lo >= hi {
                        break;
                    }
                    handles.push(s.spawn(move || {
                        (lo as Vertex..hi as Vertex)
                            .map(|v| propose(g, snapshot, added_prev_ref, v, d))
                            .collect::<Vec<_>>()
                    }));
                }
                for h in handles {
                    parts.push(h.join().expect("psl worker panicked"));
                }
            });
            for part in parts {
                added_next.extend(part);
            }
        }
        // Commit phase.
        let mut any = false;
        for (v, hubs) in added_next.iter().enumerate() {
            for &h in hubs {
                labels.upsert(v as Vertex, h, d);
                any = true;
            }
        }
        if !any {
            break;
        }
        added_prev = added_next;
        d += 1;
    }
    Some(labels)
}

/// Candidates for `v` at round `d`: hubs newly settled on a neighbour at
/// round `d − 1`, restricted to higher rank, pruned via the snapshot.
fn propose(
    g: &DynamicGraph,
    snapshot: &TwoHopLabels,
    added_prev: &[Vec<u32>],
    v: Vertex,
    d: Dist,
) -> Vec<u32> {
    let rv = snapshot.rank[v as usize];
    let mut cands: Vec<u32> = Vec::new();
    for &u in g.neighbors(v) {
        for &h in &added_prev[u as usize] {
            if h < rv {
                cands.push(h);
            }
        }
    }
    if cands.is_empty() {
        return cands;
    }
    cands.sort_unstable();
    cands.dedup();
    cands.retain(|&h| {
        let hub = snapshot.order[h as usize];
        snapshot.query(hub, v) > d
    });
    cands
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_graph::generators::{barabasi_albert, erdos_renyi_gnm, grid, path};
    use batchhl_hcl::oracle::all_pairs_bfs;

    fn assert_exact(g: &DynamicGraph, threads: usize) {
        let labels = build_psl(g, threads);
        let truth = all_pairs_bfs(g);
        for s in 0..g.num_vertices() as Vertex {
            for t in 0..g.num_vertices() as Vertex {
                assert_eq!(
                    labels.query(s, t),
                    truth[s as usize][t as usize],
                    "({s},{t}) threads={threads}"
                );
            }
        }
    }

    #[test]
    fn exact_sequential_and_parallel() {
        for g in [
            path(12),
            grid(4, 5),
            erdos_renyi_gnm(60, 130, 2),
            barabasi_albert(80, 3, 5),
        ] {
            assert_exact(&g, 1);
            assert_exact(&g, 4);
        }
    }

    #[test]
    fn label_size_is_pll_scale() {
        let g = barabasi_albert(150, 3, 7);
        let psl = build_psl(&g, 2);
        let pll = crate::pll::PllIndex::build(&g);
        let (a, b) = (psl.size_entries(), pll.labels.size_entries());
        // Snapshot pruning may add a few extra entries but must stay in
        // the same ballpark.
        assert!(a >= b, "PSL {a} cannot be smaller than canonical PLL {b}");
        assert!(a <= b * 2, "PSL {a} vs PLL {b}: too many extras");
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = DynamicGraph::from_edges(6, &[(0, 1), (2, 3)]);
        let labels = build_psl(&g, 2);
        assert_eq!(labels.query(0, 1), 1);
        assert_eq!(labels.query(0, 2), batchhl_common::INF);
        assert_eq!(labels.query(4, 5), batchhl_common::INF);
    }
}
