//! Online bidirectional BFS baseline.
//!
//! No index at all: every query is answered by the frontier-volume
//! optimized bidirectional BFS (the paper's BiBFS baseline, credited to
//! \[21]'s optimized expansion strategy). Updates are therefore free —
//! the trade-off Figure 6 explores.

use batchhl_common::{Dist, Vertex, INF};
use batchhl_graph::bfs::BiBfs;
use batchhl_graph::{Batch, DynamicGraph};

/// Index-free distance oracle.
pub struct OnlineBiBfs {
    graph: DynamicGraph,
    ws: BiBfs,
}

impl OnlineBiBfs {
    pub fn new(graph: DynamicGraph) -> Self {
        let n = graph.num_vertices();
        OnlineBiBfs {
            graph,
            ws: BiBfs::new(n),
        }
    }

    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Updates only touch the graph.
    pub fn apply_batch(&mut self, batch: &Batch) -> usize {
        let norm = batch.normalize(&self.graph);
        self.graph.apply_batch(&norm)
    }

    pub fn query(&mut self, s: Vertex, t: Vertex) -> Option<Dist> {
        let n = self.graph.num_vertices();
        if (s as usize) >= n || (t as usize) >= n {
            return None;
        }
        self.ws.run(&self.graph, s, t, INF, |_| true)
    }

    pub fn query_dist(&mut self, s: Vertex, t: Vertex) -> Dist {
        self.query(s, t).unwrap_or(INF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_graph::generators::erdos_renyi_gnm;
    use batchhl_hcl::oracle::all_pairs_bfs;

    #[test]
    fn matches_bfs_and_tracks_updates() {
        let g = erdos_renyi_gnm(60, 120, 5);
        let mut idx = OnlineBiBfs::new(g);
        let truth = all_pairs_bfs(idx.graph());
        for s in (0..60u32).step_by(3) {
            for t in (0..60u32).step_by(4) {
                assert_eq!(idx.query_dist(s, t), truth[s as usize][t as usize]);
            }
        }
        let mut b = Batch::new();
        b.insert(0, 59);
        b.delete(
            idx.graph().edges().next().unwrap().0,
            idx.graph().edges().next().unwrap().1,
        );
        idx.apply_batch(&b);
        let truth = all_pairs_bfs(idx.graph());
        for s in (0..60u32).step_by(5) {
            for t in (0..60u32).step_by(6) {
                assert_eq!(idx.query_dist(s, t), truth[s as usize][t as usize]);
            }
        }
    }
}
