//! Pruned landmark labelling (Akiba, Iwata & Yoshida, SIGMOD 2013).
//!
//! The full 2-hop-cover labelling: vertices are ranked by degree, and a
//! *pruned BFS* runs from each vertex in rank order — a visit to `u` at
//! distance `d` is pruned when the labels built so far already certify
//! `d(root, u) ≤ d`. Every vertex is a potential hub, so labels answer
//! *any* pair exactly by meeting at a common hub; the price is labelling
//! size and construction time that grow far beyond the highway cover
//! labelling's (Table 4's comparison).
//!
//! [`TwoHopLabels`] is shared by the static builder, the PSL-style
//! parallel builder and the dynamic maintenance baselines.

use batchhl_common::{Dist, Vertex, INF};
use batchhl_graph::DynamicGraph;
use std::collections::VecDeque;

/// A 2-hop-cover labelling. Hubs are identified by *rank* (position in
/// the degree-descending order), so label lists sorted by rank support
/// merge-join queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoHopLabels {
    /// `order[k]` = vertex of rank `k`.
    pub order: Vec<Vertex>,
    /// `rank[v]` = rank of vertex `v`.
    pub rank: Vec<u32>,
    /// Per vertex: `(hub rank, dist)`, strictly increasing by rank.
    pub labels: Vec<Vec<(u32, Dist)>>,
}

impl TwoHopLabels {
    /// Empty labelling over the degree ranking of `g`.
    pub fn empty(g: &DynamicGraph) -> Self {
        let order = g.vertices_by_degree();
        let mut rank = vec![0u32; g.num_vertices()];
        for (k, &v) in order.iter().enumerate() {
            rank[v as usize] = k as u32;
        }
        TwoHopLabels {
            order,
            rank,
            labels: vec![Vec::new(); g.num_vertices()],
        }
    }

    /// Exact distance via the 2-hop cover property (Definition 3.1).
    pub fn query(&self, s: Vertex, t: Vertex) -> Dist {
        if s == t {
            return 0;
        }
        self.query_rank_bounded(s, t, u32::MAX)
    }

    /// Distance using only hubs of rank `< max_rank` — the pruning
    /// query of PLL construction and of the decremental rebuild.
    pub fn query_rank_bounded(&self, s: Vertex, t: Vertex, max_rank: u32) -> Dist {
        let (la, lb) = (&self.labels[s as usize], &self.labels[t as usize]);
        let mut best = u64::from(INF);
        let (mut i, mut j) = (0usize, 0usize);
        while i < la.len() && j < lb.len() {
            let (ha, da) = la[i];
            let (hb, db) = lb[j];
            if ha >= max_rank || hb >= max_rank {
                break;
            }
            match ha.cmp(&hb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    best = best.min(da as u64 + db as u64);
                    i += 1;
                    j += 1;
                }
            }
        }
        best.min(u64::from(INF)) as Dist
    }

    /// Insert or overwrite the entry `(hub_rank, d)` in `L(v)`, keeping
    /// the list sorted by rank.
    pub fn upsert(&mut self, v: Vertex, hub_rank: u32, d: Dist) {
        let list = &mut self.labels[v as usize];
        match list.binary_search_by_key(&hub_rank, |&(h, _)| h) {
            Ok(i) => list[i].1 = d,
            Err(i) => list.insert(i, (hub_rank, d)),
        }
    }

    /// Remove the entry for `hub_rank` from `L(v)` if present.
    pub fn remove(&mut self, v: Vertex, hub_rank: u32) -> bool {
        let list = &mut self.labels[v as usize];
        match list.binary_search_by_key(&hub_rank, |&(h, _)| h) {
            Ok(i) => {
                list.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Stored entry for `(hub_rank, v)` if any.
    pub fn get(&self, v: Vertex, hub_rank: u32) -> Option<Dist> {
        let list = &self.labels[v as usize];
        list.binary_search_by_key(&hub_rank, |&(h, _)| h)
            .ok()
            .map(|i| list[i].1)
    }

    /// Total number of label entries.
    pub fn size_entries(&self) -> usize {
        self.labels.iter().map(Vec::len).sum()
    }

    /// Logical size in bytes (`(u32 rank, u32 dist)` pairs).
    pub fn size_bytes(&self) -> usize {
        self.size_entries() * 8
    }

    pub fn avg_label_size(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.size_entries() as f64 / self.labels.len() as f64
        }
    }

    /// Grow to `n` vertices: new vertices rank *below* all existing ones
    /// (appended to the order) and start with empty labels.
    pub fn ensure_vertices(&mut self, n: usize) {
        while self.labels.len() < n {
            let v = self.labels.len() as Vertex;
            self.rank.push(self.order.len() as u32);
            self.order.push(v);
            self.labels.push(Vec::new());
        }
    }
}

/// Static PLL index: the labelling plus the construction routine.
pub struct PllIndex {
    pub labels: TwoHopLabels,
}

impl PllIndex {
    /// Pruned-BFS construction in rank order. `O(Σ label sizes · …)`;
    /// practical up to mid-sized graphs, which is exactly the paper's
    /// observation about (Ful)PLL scalability.
    pub fn build(g: &DynamicGraph) -> Self {
        Self::build_with_deadline(g, None).expect("no deadline given")
    }

    /// As [`PllIndex::build`] but giving up (returning `None`) once the
    /// deadline passes — the harness uses this to mirror the paper's
    /// DNF entries for PLL-family methods on larger datasets.
    pub fn build_with_deadline(
        g: &DynamicGraph,
        deadline: Option<std::time::Instant>,
    ) -> Option<Self> {
        let mut labels = TwoHopLabels::empty(g);
        let n = g.num_vertices();
        let mut dist = vec![INF; n];
        let mut queue: VecDeque<Vertex> = VecDeque::new();
        let mut touched: Vec<Vertex> = Vec::new();
        for k in 0..n as u32 {
            if k % 64 == 0 {
                if let Some(d) = deadline {
                    if std::time::Instant::now() > d {
                        return None;
                    }
                }
            }
            let root = labels.order[k as usize];
            // Pruned BFS from `root`.
            dist[root as usize] = 0;
            queue.push_back(root);
            touched.push(root);
            while let Some(u) = queue.pop_front() {
                let du = dist[u as usize];
                // Prune: already covered by higher-ranked hubs.
                if labels.query_rank_bounded(root, u, k) <= du {
                    continue;
                }
                labels.upsert(u, k, du);
                for &w in g.neighbors(u) {
                    if dist[w as usize] == INF {
                        dist[w as usize] = du + 1;
                        queue.push_back(w);
                        touched.push(w);
                    }
                }
            }
            for &v in &touched {
                dist[v as usize] = INF;
            }
            touched.clear();
        }
        Some(PllIndex { labels })
    }

    pub fn query(&self, s: Vertex, t: Vertex) -> Dist {
        self.labels.query(s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_graph::generators::{barabasi_albert, erdos_renyi_gnm, path, star};
    use batchhl_hcl::oracle::all_pairs_bfs;

    fn assert_exact(g: &DynamicGraph) {
        let idx = PllIndex::build(g);
        let truth = all_pairs_bfs(g);
        for s in 0..g.num_vertices() as Vertex {
            for t in 0..g.num_vertices() as Vertex {
                assert_eq!(idx.query(s, t), truth[s as usize][t as usize], "({s},{t})");
            }
        }
    }

    #[test]
    fn exact_on_classics_and_random() {
        assert_exact(&path(10));
        assert_exact(&star(10));
        for seed in 0..4 {
            assert_exact(&erdos_renyi_gnm(50, 100, seed));
        }
        assert_exact(&barabasi_albert(70, 2, 1));
    }

    #[test]
    fn self_label_present_highest_rank_hub() {
        let g = star(5);
        let idx = PllIndex::build(&g);
        // The centre has rank 0 and the single label (0, 0).
        let centre_labels = &idx.labels.labels[0];
        assert_eq!(centre_labels.as_slice(), &[(0, 0)]);
        // Leaves carry (0, 1) plus their own self entry.
        for v in 1..5u32 {
            assert!(idx.labels.labels[v as usize].contains(&(0, 1)));
        }
    }

    #[test]
    fn disconnected_pairs_are_inf() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (2, 3)]);
        let idx = PllIndex::build(&g);
        assert_eq!(idx.query(0, 2), INF);
        assert_eq!(idx.query(1, 4), INF);
        assert_eq!(idx.query(0, 1), 1);
    }

    #[test]
    fn upsert_remove_get_roundtrip() {
        let g = path(4);
        let mut l = TwoHopLabels::empty(&g);
        l.upsert(2, 5, 7);
        l.upsert(2, 3, 1);
        l.upsert(2, 5, 6); // overwrite
        assert_eq!(l.get(2, 5), Some(6));
        assert_eq!(l.get(2, 3), Some(1));
        assert_eq!(l.labels[2], vec![(3, 1), (5, 6)]);
        assert!(l.remove(2, 3));
        assert!(!l.remove(2, 3));
        assert_eq!(l.get(2, 3), None);
    }

    #[test]
    fn pll_is_larger_than_hcl() {
        // The headline size comparison of Table 4 in miniature.
        let g = barabasi_albert(300, 3, 4);
        let pll = PllIndex::build(&g);
        let lms = batchhl_hcl::LandmarkSelection::TopDegree(20).select(&g);
        let hcl = batchhl_hcl::build_labelling(&g, lms).unwrap();
        assert!(
            pll.labels.size_entries() > 2 * hcl.size_entries(),
            "PLL {} vs HCL {}",
            pll.labels.size_entries(),
            hcl.size_entries()
        );
    }
}
