//! Incremental PLL (Akiba, Iwata & Yoshida, WWW 2014).
//!
//! On inserting `(a, b)`, the 2-hop cover is restored by *resuming*
//! pruned BFSs: for every hub in `L(a)`, a partial BFS continues from
//! `b` at distance `label + 1` (and symmetrically from `a` for hubs of
//! `L(b)`), adding or improving entries unless the current labels
//! already certify an equal-or-better distance. Akiba et al. showed
//! resuming from exactly these hubs restores the cover.
//!
//! Faithful to the original, **outdated entries are not removed** ("this
//! work does not remove outdated entries because the authors considered
//! it too costly") — entries only ever over-estimate, which preserves
//! exactness (the covering hub's entries are exact) while the labelling
//! grows monotonically. Table 4's labelling-size comparison shows the
//! consequence.

use crate::pll::TwoHopLabels;
use batchhl_common::{Dist, Vertex, INF};
use batchhl_graph::DynamicGraph;
use std::collections::VecDeque;

/// Restore the 2-hop cover after inserting edge `(a, b)`.
/// `g` must already contain the edge.
pub fn insert_edge(labels: &mut TwoHopLabels, g: &DynamicGraph, a: Vertex, b: Vertex) {
    debug_assert!(g.has_edge(a, b));
    labels.ensure_vertices(g.num_vertices());
    // Snapshot: upserts during the resumed BFSs must not extend the
    // iteration. Merge both endpoints' hubs in rank order so higher
    // hubs re-establish their regions before lower ones prune on them.
    let mut seeds: Vec<(u32, Dist, Vertex)> = Vec::new();
    for &(h, d) in &labels.labels[a as usize] {
        seeds.push((h, d, b));
    }
    for &(h, d) in &labels.labels[b as usize] {
        seeds.push((h, d, a));
    }
    seeds.sort_unstable();

    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    let mut touched: Vec<Vertex> = Vec::new();
    let mut queue: VecDeque<Vertex> = VecDeque::new();
    for (h, d_hub_to_anchor, start) in seeds {
        let root = labels.order[h as usize];
        if root == start {
            continue;
        }
        // Resumed pruned BFS from `start` at distance d + 1.
        let d0 = d_hub_to_anchor + 1;
        dist[start as usize] = d0;
        touched.push(start);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            if labels.query(root, u) <= du {
                continue; // already covered at this distance
            }
            labels.upsert(u, h, du);
            for &w in g.neighbors(u) {
                if dist[w as usize] == INF {
                    dist[w as usize] = du + 1;
                    touched.push(w);
                    queue.push_back(w);
                }
            }
        }
        for &v in &touched {
            dist[v as usize] = INF;
        }
        touched.clear();
        queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pll::PllIndex;
    use batchhl_graph::generators::{erdos_renyi_gnm, path};
    use batchhl_hcl::oracle::all_pairs_bfs;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_exact(labels: &TwoHopLabels, g: &DynamicGraph) {
        let truth = all_pairs_bfs(g);
        for s in 0..g.num_vertices() as Vertex {
            for t in 0..g.num_vertices() as Vertex {
                assert_eq!(
                    labels.query(s, t),
                    truth[s as usize][t as usize],
                    "query({s},{t})"
                );
            }
        }
    }

    #[test]
    fn shortcut_insertion_stays_exact() {
        let mut g = path(8);
        let mut idx = PllIndex::build(&g);
        g.insert_edge(0, 6);
        insert_edge(&mut idx.labels, &g, 0, 6);
        assert_exact(&idx.labels, &g);
    }

    #[test]
    fn component_merge_stays_exact() {
        let mut g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let mut idx = PllIndex::build(&g);
        g.insert_edge(2, 3);
        insert_edge(&mut idx.labels, &g, 2, 3);
        assert_exact(&idx.labels, &g);
    }

    #[test]
    fn random_insertion_sequences_stay_exact() {
        for seed in 0..5u64 {
            let mut g = erdos_renyi_gnm(40, 60, seed);
            let mut idx = PllIndex::build(&g);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
            for _ in 0..15 {
                let a = rng.gen_range(0..40u32);
                let b = rng.gen_range(0..40u32);
                if a != b && g.insert_edge(a, b) {
                    insert_edge(&mut idx.labels, &g, a, b);
                }
            }
            assert_exact(&idx.labels, &g);
        }
    }

    #[test]
    fn labels_grow_monotonically() {
        // Outdated entries are kept: size never shrinks.
        let mut g = path(10);
        let mut idx = PllIndex::build(&g);
        let mut last = idx.labels.size_entries();
        for k in 2..8u32 {
            if g.insert_edge(0, k) {
                insert_edge(&mut idx.labels, &g, 0, k);
                assert!(idx.labels.size_entries() >= last);
                last = idx.labels.size_entries();
            }
        }
    }
}
