//! Landmark selection.
//!
//! The paper selects the highest-degree vertices (20 by default, "in the
//! same way as FulFD"); degree is the standard centrality proxy on
//! complex networks, where hubs cover a large fraction of shortest
//! paths. Random selection and explicit lists are provided for
//! experiments and tests.

use batchhl_common::SplitMix64;
use batchhl_graph::weighted::WeightedGraph;
use batchhl_graph::{DynamicDiGraph, DynamicGraph, Vertex};

/// Strategy for choosing the landmark set `R`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LandmarkSelection {
    /// The `k` highest-degree vertices (ties by vertex id) — the
    /// paper's choice.
    TopDegree(usize),
    /// `k` uniform random vertices (seeded).
    Random { count: usize, seed: u64 },
    /// An explicit landmark list.
    Explicit(Vec<Vertex>),
}

impl LandmarkSelection {
    /// Default configuration used throughout the paper's experiments.
    pub fn paper_default() -> Self {
        LandmarkSelection::TopDegree(20)
    }

    /// Materialize the landmark set for an undirected graph.
    pub fn select(&self, g: &DynamicGraph) -> Vec<Vertex> {
        match self {
            LandmarkSelection::TopDegree(k) => {
                let mut order = g.vertices_by_degree();
                order.truncate((*k).min(g.num_vertices()));
                order
            }
            LandmarkSelection::Random { count, seed } => {
                let mut rng = SplitMix64::new(*seed);
                let mut all: Vec<Vertex> = (0..g.num_vertices() as Vertex).collect();
                rng.shuffle(&mut all);
                all.truncate((*count).min(g.num_vertices()));
                all
            }
            LandmarkSelection::Explicit(list) => list.clone(),
        }
    }

    /// Materialize the landmark set for a weighted graph (degree
    /// ignores weights — hub coverage is structural).
    pub fn select_weighted(&self, g: &WeightedGraph) -> Vec<Vertex> {
        match self {
            LandmarkSelection::TopDegree(k) => {
                let mut order = g.vertices_by_degree();
                order.truncate((*k).min(g.num_vertices()));
                order
            }
            LandmarkSelection::Random { count, seed } => {
                let mut rng = SplitMix64::new(*seed);
                let mut all: Vec<Vertex> = (0..g.num_vertices() as Vertex).collect();
                rng.shuffle(&mut all);
                all.truncate((*count).min(g.num_vertices()));
                all
            }
            LandmarkSelection::Explicit(list) => list.clone(),
        }
    }

    /// Materialize the landmark set for a directed graph (total degree).
    pub fn select_directed(&self, g: &DynamicDiGraph) -> Vec<Vertex> {
        match self {
            LandmarkSelection::TopDegree(k) => {
                let mut order = g.vertices_by_degree();
                order.truncate((*k).min(g.num_vertices()));
                order
            }
            LandmarkSelection::Random { count, seed } => {
                let mut rng = SplitMix64::new(*seed);
                let mut all: Vec<Vertex> = (0..g.num_vertices() as Vertex).collect();
                rng.shuffle(&mut all);
                all.truncate((*count).min(g.num_vertices()));
                all
            }
            LandmarkSelection::Explicit(list) => list.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchhl_graph::generators::star;

    #[test]
    fn top_degree_picks_hub_first() {
        let g = star(10);
        let lms = LandmarkSelection::TopDegree(3).select(&g);
        assert_eq!(lms.len(), 3);
        assert_eq!(lms[0], 0, "star centre has max degree");
    }

    #[test]
    fn top_degree_caps_at_n() {
        let g = star(3);
        let lms = LandmarkSelection::TopDegree(10).select(&g);
        assert_eq!(lms.len(), 3);
    }

    #[test]
    fn random_is_seeded_and_distinct() {
        let g = star(50);
        let a = LandmarkSelection::Random { count: 10, seed: 3 }.select(&g);
        let b = LandmarkSelection::Random { count: 10, seed: 3 }.select(&g);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "landmarks must be distinct");
    }

    #[test]
    fn explicit_passthrough() {
        let g = star(5);
        let lms = LandmarkSelection::Explicit(vec![4, 2]).select(&g);
        assert_eq!(lms, vec![4, 2]);
    }

    #[test]
    fn directed_uses_total_degree() {
        let g = DynamicDiGraph::from_edges(4, &[(0, 1), (2, 1), (3, 1)]);
        let lms = LandmarkSelection::TopDegree(1).select_directed(&g);
        assert_eq!(lms, vec![1]);
    }
}
