//! Query processing (Section 4).
//!
//! `Q(s, t) = min(d_{G[V\R]}(s, t), d⊤_{st})`: compute the highway upper
//! bound from the labelling (Eq. 3), then run a distance-bounded
//! bidirectional BFS on the landmark-sparsified graph. Landmark
//! endpoints are answered from the labelling alone via the highway cover
//! property (Eq. 2) — for them the bound is already exact.

use crate::labelling::Labelling;
use batchhl_common::{Dist, Vertex, INF};
use batchhl_graph::bfs::BiBfs;
use batchhl_graph::AdjacencyView;

/// Reusable query engine for undirected graphs: owns the bidirectional
/// search workspace so back-to-back queries allocate nothing.
#[derive(Debug, Default)]
pub struct QueryEngine {
    bibfs: BiBfs,
}

impl QueryEngine {
    pub fn new(n: usize) -> Self {
        QueryEngine {
            bibfs: BiBfs::new(n),
        }
    }

    /// Exact distance between `s` and `t` on the graph `g` that `lab`
    /// currently describes; `None` if disconnected.
    pub fn query<A: AdjacencyView>(
        &mut self,
        lab: &Labelling,
        g: &A,
        s: Vertex,
        t: Vertex,
    ) -> Option<Dist> {
        let d = self.query_dist(lab, g, s, t);
        (d != INF).then_some(d)
    }

    /// As [`QueryEngine::query`] but returning `INF` for disconnected.
    pub fn query_dist<A: AdjacencyView>(
        &mut self,
        lab: &Labelling,
        g: &A,
        s: Vertex,
        t: Vertex,
    ) -> Dist {
        if s == t {
            return 0;
        }
        match (lab.landmark_index(s), lab.landmark_index(t)) {
            (Some(i), Some(j)) => lab.highway(i, j),
            // Landmark–vertex distances are exact by the highway cover
            // property (Eq. 2).
            (Some(i), None) => lab.landmark_to_vertex(i, t),
            (None, Some(j)) => lab.landmark_to_vertex(j, s),
            (None, None) => {
                let bound = lab.upper_bound(s, t);
                let found = self.bibfs.run(g, s, t, bound, |v| !lab.is_landmark(v));
                found.unwrap_or(bound)
            }
        }
    }

    /// The labelling-only upper bound (for diagnostics / benches).
    pub fn upper_bound(&self, lab: &Labelling, s: Vertex, t: Vertex) -> Dist {
        lab.upper_bound(s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_labelling;
    use crate::oracle::all_pairs_bfs;
    use crate::LandmarkSelection;
    use batchhl_graph::generators::{barabasi_albert, cycle, erdos_renyi_gnm, grid, path, star};
    use batchhl_graph::DynamicGraph;

    fn assert_all_pairs_exact(g: &DynamicGraph, k: usize) {
        let lms = LandmarkSelection::TopDegree(k).select(g);
        let lab = build_labelling(g, lms).unwrap();
        let truth = all_pairs_bfs(g);
        let mut engine = QueryEngine::new(g.num_vertices());
        for s in 0..g.num_vertices() as Vertex {
            for t in 0..g.num_vertices() as Vertex {
                assert_eq!(
                    engine.query_dist(&lab, g, s, t),
                    truth[s as usize][t as usize],
                    "query({s},{t}) with {k} landmarks"
                );
            }
        }
    }

    #[test]
    fn exact_on_classics() {
        for k in [1, 2, 4] {
            assert_all_pairs_exact(&path(9), k);
            assert_all_pairs_exact(&cycle(9), k);
            assert_all_pairs_exact(&star(9), k);
            assert_all_pairs_exact(&grid(4, 3), k);
        }
    }

    #[test]
    fn exact_on_random_graphs() {
        for seed in 0..6 {
            let g = erdos_renyi_gnm(50, 90, seed);
            assert_all_pairs_exact(&g, 4);
        }
        let g = barabasi_albert(80, 2, 3);
        assert_all_pairs_exact(&g, 6);
    }

    #[test]
    fn exact_on_disconnected_graph() {
        // Two components; landmark in one of them.
        let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        assert_all_pairs_exact(&g, 2);
        let lab = build_labelling(&g, vec![0]).unwrap();
        let mut engine = QueryEngine::new(6);
        assert_eq!(engine.query(&lab, &g, 0, 4), None);
        assert_eq!(engine.query(&lab, &g, 3, 4), Some(1));
        assert_eq!(engine.query(&lab, &g, 5, 5), Some(0));
        assert_eq!(engine.query(&lab, &g, 5, 0), None);
    }

    #[test]
    fn landmark_endpoint_cases() {
        let g = path(6);
        let lab = build_labelling(&g, vec![1, 4]).unwrap();
        let mut engine = QueryEngine::new(6);
        // landmark–landmark via highway
        assert_eq!(engine.query(&lab, &g, 1, 4), Some(3));
        // landmark–vertex via Eq. 2
        assert_eq!(engine.query(&lab, &g, 1, 5), Some(4));
        assert_eq!(engine.query(&lab, &g, 0, 4), Some(4));
        // same landmark
        assert_eq!(engine.query(&lab, &g, 4, 4), Some(0));
    }

    #[test]
    fn search_beats_bound_when_paths_avoid_landmarks() {
        // Square 0-1-2-3-0 plus a hub 4 connected to 0 and 2; landmark
        // at the hub. d(1, 3) = 2 around the square, but the highway
        // route via the hub also gives 1 + 0 + 1... make the hub farther.
        // Path 0-1, 1-2; hub 3 adjacent to 0 and 2 only.
        let g = DynamicGraph::from_edges(4, &[(0, 1), (1, 2), (3, 0), (3, 2)]);
        let lab = build_labelling(&g, vec![3]).unwrap();
        let mut engine = QueryEngine::new(4);
        // Upper bound through landmark 3: d(0,3)+d(3,2) = 2; the direct
        // path 0-1-2 also has length 2 — equal here. For (1, 1)? Use
        // (0, 2): both routes length 2.
        assert_eq!(engine.query(&lab, &g, 0, 2), Some(2));
        // (1, 3) is landmark query.
        assert_eq!(engine.query(&lab, &g, 1, 3), Some(2));
        // (0, 1): bound via landmark = 1 + 2... actual edge = 1.
        assert_eq!(engine.query(&lab, &g, 0, 1), Some(1));
    }

    #[test]
    fn upper_bound_is_admissible_and_often_tight() {
        let g = barabasi_albert(120, 3, 11);
        let lab = build_labelling(&g, LandmarkSelection::TopDegree(8).select(&g)).unwrap();
        let truth = all_pairs_bfs(&g);
        let engine = QueryEngine::new(g.num_vertices());
        for s in (0..120u32).step_by(7) {
            for t in (0..120u32).step_by(11) {
                let ub = engine.upper_bound(&lab, s, t);
                let d = truth[s as usize][t as usize];
                if !lab.is_landmark(s) && !lab.is_landmark(t) && s != t {
                    assert!(ub as u64 >= d as u64, "bound must be admissible");
                }
            }
        }
    }
}
